"""Profile a CQ-C training step and write a JSONL run log.

Demonstrates the telemetry subsystem end to end:

1. wrap one Contrastive Quant (CQ-C) training step in
   ``telemetry.profile()`` and print the top-5 autograd ops by
   wall-clock (conv vs matmul vs elementwise breakdown);
2. run a short pre-training with ``JsonlLogger`` + ``ThroughputMeter``
   + ``ConsoleProgress`` callbacks, appending the op-profile summary to
   the run log;
3. summarize the log with the same helpers behind
   ``python -m repro.telemetry.report runs/``.

Run with::

    python examples/telemetry_profiling.py
"""

import numpy as np

from repro import telemetry
from repro.contrastive import ContrastiveQuantTrainer, SimCLRModel
from repro.data import DataLoader, TwoViewTransform, simclr_augmentations
from repro.data.synthetic import make_cifar100_like
from repro.models import resnet18
from repro.nn.optim import Adam
from repro.telemetry import ConsoleProgress, JsonlLogger, ThroughputMeter
from repro.telemetry.report import format_summary, summarize


def build_trainer(seed: int = 0) -> ContrastiveQuantTrainer:
    rng = np.random.default_rng(seed)
    encoder = resnet18(width_multiplier=0.0625, rng=rng)
    model = SimCLRModel(encoder, projection_dim=16, rng=rng)
    optimizer = Adam(list(model.parameters()), lr=1e-3)
    return ContrastiveQuantTrainer(
        model, "C", "6-16", optimizer, rng=np.random.default_rng(seed + 7)
    )


def main() -> int:
    data = make_cifar100_like(
        num_classes=4, image_size=12, train_per_class=16, seed=0
    )
    loader = DataLoader(
        data.train,
        batch_size=16,
        shuffle=True,
        drop_last=True,
        transform=TwoViewTransform(simclr_augmentations(0.5)),
        rng=np.random.default_rng(13),
    )
    trainer = build_trainer()

    # -- 1. op-level profile of a single CQ-C step -------------------------
    view1, view2, _ = next(iter(loader))
    with telemetry.profile() as prof:
        trainer.train_step(view1, view2)
    print("top-5 ops by wall-clock for one CQ-C step:")
    print(prof.format_table(n=5))
    print()

    # -- 2. short telemetry-instrumented pre-training ----------------------
    logger = JsonlLogger("runs", run_name="telemetry-profiling-demo")
    trainer.fit(
        loader,
        epochs=2,
        callbacks=(logger, ThroughputMeter(), ConsoleProgress()),
    )
    trainer.finalize()
    logger.log("profile", prof.summary())
    print(f"\nrun log written to {logger.path}")

    # -- 3. machine-readable summary (what the report CLI prints) ---------
    print()
    records = list(telemetry.iter_records(logger.path))
    print(format_summary(logger.path, summarize(records)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
