"""Scenario: negative-free pre-training (BYOL) with quantization augmentation.

BYOL needs no negative pairs, which matters when batch sizes are small.
This example applies the CQ-C pipeline on top of BYOL (paper Sec. 3.4 /
Table 6): online-branch predictions at two sampled precisions regress onto
the full-precision EMA target.

    python examples/byol_contrastive_quant.py
"""

import numpy as np

from repro.contrastive import BYOL, BYOLTrainer, ContrastiveQuantTrainer
from repro.data import (
    DataLoader,
    TwoViewTransform,
    make_cifar100_like,
    simclr_augmentations,
)
from repro.eval import linear_evaluation
from repro.models import mobilenet_v2
from repro.nn.optim import Adam


def build_loader(data, seed):
    return DataLoader(
        data.train,
        batch_size=32,
        shuffle=True,
        drop_last=True,
        transform=TwoViewTransform(simclr_augmentations(1.0)),
        rng=np.random.default_rng(seed),
    )


def main() -> None:
    data = make_cifar100_like(num_classes=8, image_size=12,
                              train_per_class=32, test_per_class=12)

    results = {}
    for name in ("BYOL", "CQ-C (BYOL)"):
        rng = np.random.default_rng(0)
        model = BYOL(
            mobilenet_v2(width_multiplier=0.125, rng=rng),
            projection_dim=16,
            momentum=0.99,
            rng=rng,
        )
        optimizer = Adam(list(model.trainable_parameters()), lr=2e-3)
        if name == "BYOL":
            trainer = BYOLTrainer(model, optimizer)
        else:
            trainer = ContrastiveQuantTrainer(
                model, variant="C", precision_set="2-8",
                optimizer=optimizer, rng=np.random.default_rng(1),
            )
        print(f"pre-training {name} ...")
        loader = build_loader(data, seed=2)
        for epoch in range(8):
            loss = trainer.train_epoch(loader)
            print(f"  epoch {epoch + 1}: loss {loss:.4f}")
        if isinstance(trainer, ContrastiveQuantTrainer):
            trainer.finalize()
        accuracy = linear_evaluation(
            model.online_encoder, data.train, data.test,
            epochs=20, rng=np.random.default_rng(3),
        )
        results[name] = 100.0 * accuracy

    print("\nlinear evaluation accuracy:")
    for name, acc in results.items():
        print(f"  {name:<14} {acc:.1f}%")


if __name__ == "__main__":
    main()
