"""Quickstart: pretrain with Contrastive Quant, then fine-tune with 10% labels.

Runs in ~1 minute on a laptop CPU.

    python examples/quickstart.py
"""

import numpy as np

from repro.contrastive import ContrastiveQuantTrainer, SimCLRModel
from repro.data import (
    DataLoader,
    TwoViewTransform,
    make_cifar100_like,
    simclr_augmentations,
)
from repro.eval import finetune
from repro.models import resnet18
from repro.nn.optim import Adam


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Data: a small procedurally generated image classification dataset
    #    (stands in for CIFAR-100; see DESIGN.md).
    data = make_cifar100_like(num_classes=8, image_size=12,
                              train_per_class=32, test_per_class=12)

    # 2. Model: a width-reduced ResNet-18 encoder + projection head.
    encoder = resnet18(width_multiplier=0.0625, rng=rng)
    model = SimCLRModel(encoder, projection_dim=16, rng=rng)

    # 3. Pre-train with Contrastive Quant (CQ-C pipeline, Eq. 9):
    #    each batch is encoded at two randomly sampled precisions and the
    #    loss enforces consistency across views AND across precisions.
    trainer = ContrastiveQuantTrainer(
        model,
        variant="C",
        precision_set="2-8",
        optimizer=Adam(list(model.parameters()), lr=2e-3),
        rng=np.random.default_rng(1),
    )
    loader = DataLoader(
        data.train,
        batch_size=32,
        shuffle=True,
        drop_last=True,
        transform=TwoViewTransform(simclr_augmentations(1.0)),
        rng=np.random.default_rng(2),
    )
    print("pre-training with CQ-C ...")
    for epoch in range(8):
        loss = trainer.train_epoch(loader)
        print(f"  epoch {epoch + 1}: contrastive loss {loss:.3f}")
    trainer.finalize()  # restore full precision

    # 4. Fine-tune with only 10% of the labels (the paper's semi-supervised
    #    protocol) and report test accuracy.
    result = finetune(
        encoder, data.train, data.test,
        label_fraction=0.1, epochs=10, lr=0.02,
        rng=np.random.default_rng(3),
    )
    print(f"\nfine-tuned with 10% labels -> "
          f"test accuracy {result.test_accuracy_percent:.1f}%")

    # 5. The same encoder can also be deployed quantized: fine-tune again
    #    with the encoder fixed at 4-bit.
    from repro.quant import quantize_model

    encoder4 = resnet18(width_multiplier=0.0625,
                        rng=np.random.default_rng(0))
    encoder4.load_state_dict(encoder.state_dict())
    quantize_model(encoder4)
    result4 = finetune(
        encoder4, data.train, data.test,
        label_fraction=0.1, precision=4, epochs=10, lr=0.02,
        rng=np.random.default_rng(3),
    )
    print(f"fine-tuned at 4-bit          -> "
          f"test accuracy {result4.test_accuracy_percent:.1f}%")


if __name__ == "__main__":
    main()
