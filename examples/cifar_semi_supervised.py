"""Scenario: semi-supervised image classification with scarce labels.

The paper's motivating use case — plenty of unlabeled images, very few
labels.  Pre-trains SimCLR and CQ-C on the same unlabeled pool, then
fine-tunes both with 10% and 1% labels at full precision and 4-bit, and
prints a Table-4-style comparison.

    python examples/cifar_semi_supervised.py
"""

from repro.data import make_cifar100_like
from repro.experiments import (
    EvalProtocol,
    MethodSpec,
    PretrainConfig,
    finetune_grid,
    format_table,
    pretrain,
)


def main() -> None:
    data = make_cifar100_like(num_classes=8, image_size=12,
                              train_per_class=40, test_per_class=16)
    config = PretrainConfig(
        encoder="resnet34",
        width_multiplier=0.0625,
        epochs=12,
        batch_size=32,
        augmentation_strength=1.0,
    )
    protocol = EvalProtocol(
        label_fractions=(0.1, 0.01),
        precisions=(None, 4),
        finetune_epochs=10,
        finetune_lr=0.02,
    )

    methods = [
        MethodSpec("SimCLR"),
        MethodSpec("CQ-C", variant="C", precision_set="2-8"),
    ]

    rows = []
    for method in methods:
        print(f"pre-training {method.name} ...")
        outcome = pretrain(method, data.train, config)
        grid = finetune_grid(outcome, data.train, data.test, protocol)
        rows.append([
            method.name,
            grid[(None, 0.1)], grid[(None, 0.01)],
            grid[(4, 0.1)], grid[(4, 0.01)],
        ])

    print()
    print(format_table(
        ["Method", "FP 10%", "FP 1%", "4-bit 10%", "4-bit 1%"],
        rows,
        title="Semi-supervised fine-tuning accuracy (%), ResNet-34",
    ))
    print("\nExpected shape (paper Table 4): CQ-C >= SimCLR, with the "
          "largest margins at 1% labels and 4-bit deployment.")


if __name__ == "__main__":
    main()
