"""Scenario: transfer a CQ-pretrained backbone to object detection.

Mirrors the paper's Pascal-VOC transfer (Table 3): pre-train an encoder
without labels, bolt a YOLO-lite head onto its spatial features, fine-tune
on detection scenes, and report AP / AP50 / AP75.

    python examples/detection_transfer.py
"""

import numpy as np

from repro.data import SyntheticConfig, SyntheticImages
from repro.data.detection import SyntheticDetection
from repro.eval import evaluate_detection, train_detector
from repro.experiments import MethodSpec, PretrainConfig, format_table, pretrain


def main() -> None:
    # Unlabeled pre-training pool (classification-style images).
    pool = SyntheticImages(SyntheticConfig(
        num_classes=10, image_size=12, train_per_class=32,
        test_per_class=4, nuisance=1.0, seed=0,
    ))
    config = PretrainConfig(
        encoder="resnet18", width_multiplier=0.0625,
        epochs=10, batch_size=32, augmentation_strength=1.0,
    )

    # Detection scenes (train and held-out test).
    train_scenes = SyntheticDetection(num_scenes=72, num_classes=3,
                                      image_size=32, max_objects=2, seed=3)
    test_scenes = SyntheticDetection(num_scenes=32, num_classes=3,
                                     image_size=32, max_objects=2, seed=4)

    rows = []
    for method in (
        MethodSpec("SimCLR"),
        MethodSpec("CQ-C", variant="C", precision_set="2-8"),
    ):
        print(f"pre-training {method.name} ...")
        outcome = pretrain(method, pool.train, config)
        backbone = outcome.make_encoder(quantized=False)
        print("  transferring to detection ...")
        model = train_detector(backbone, train_scenes, epochs=30,
                               batch_size=8, rng=np.random.default_rng(0))
        metrics = evaluate_detection(model, test_scenes)
        rows.append([method.name, metrics["AP"], metrics["AP50"],
                     metrics["AP75"]])

    print()
    print(format_table(
        ["Method", "AP", "AP50", "AP75"],
        rows,
        title="Detection transfer (YOLO-lite on pretrained ResNet-18)",
    ))


if __name__ == "__main__":
    main()
