"""Scenario: quantization augmentation across four SSL frameworks.

The paper demonstrates Contrastive Quant on SimCLR and BYOL; this repo
also ships MoCo (the paper's motivating related work) and SimSiam (its
ref [12]).  This example pre-trains all four vanilla frameworks plus their
CQ-augmented versions on the same data and compares by k-NN evaluation —
no probe training, so differences are purely representational.

    python examples/framework_zoo.py
"""

import numpy as np

from repro.contrastive import (
    BYOL,
    BYOLTrainer,
    ContrastiveQuantTrainer,
    MoCo,
    MoCoTrainer,
    SimCLRModel,
    SimCLRTrainer,
    SimSiam,
    SimSiamTrainer,
)
from repro.data import (
    DataLoader,
    TwoViewTransform,
    make_cifar100_like,
    simclr_augmentations,
)
from repro.eval import knn_evaluation
from repro.experiments import format_table
from repro.models import resnet18
from repro.nn.optim import Adam

EPOCHS = 6
PRECISIONS = "2-8"


def loader_for(data, seed):
    return DataLoader(
        data.train, batch_size=32, shuffle=True, drop_last=True,
        transform=TwoViewTransform(simclr_augmentations(0.75)),
        rng=np.random.default_rng(seed),
    )


def fresh_encoder():
    return resnet18(width_multiplier=0.0625, rng=np.random.default_rng(1))


def build(framework, with_cq):
    """Return (trainer, encoder) for one framework, optionally CQ-augmented."""
    rng = np.random.default_rng(2)
    encoder = fresh_encoder()
    if framework == "SimCLR":
        model = SimCLRModel(encoder, projection_dim=16, rng=rng)
        opt = Adam(list(model.parameters()), lr=2e-3)
        if with_cq:
            trainer = ContrastiveQuantTrainer(
                model, "C", PRECISIONS, opt, rng=np.random.default_rng(3))
        else:
            trainer = SimCLRTrainer(model, opt)
    elif framework == "BYOL":
        model = BYOL(encoder, projection_dim=16, rng=rng)
        opt = Adam(list(model.trainable_parameters()), lr=2e-3)
        if with_cq:
            trainer = ContrastiveQuantTrainer(
                model, "C", PRECISIONS, opt, rng=np.random.default_rng(3))
        else:
            trainer = BYOLTrainer(model, opt)
    elif framework == "MoCo":
        model = MoCo(encoder, projection_dim=16, queue_size=128, rng=rng)
        opt = Adam(list(model.trainable_parameters()), lr=2e-3)
        trainer = MoCoTrainer(
            model, opt,
            precision_set=PRECISIONS if with_cq else None,
            rng=np.random.default_rng(3),
        )
    else:  # SimSiam
        model = SimSiam(encoder, projection_dim=16, rng=rng)
        opt = Adam(list(model.parameters()), lr=2e-3)
        trainer = SimSiamTrainer(
            model, opt,
            precision_set=PRECISIONS if with_cq else None,
            rng=np.random.default_rng(3),
        )
    return trainer, encoder


def main() -> None:
    data = make_cifar100_like(num_classes=8, image_size=12,
                              train_per_class=24, test_per_class=8)
    rows = []
    for framework in ("SimCLR", "MoCo", "BYOL", "SimSiam"):
        scores = {}
        for with_cq in (False, True):
            label = "CQ" if with_cq else "vanilla"
            print(f"pre-training {framework} ({label}) ...", flush=True)
            trainer, encoder = build(framework, with_cq)
            trainer.fit(loader_for(data, seed=4), epochs=EPOCHS)
            if hasattr(trainer, "finalize"):
                trainer.finalize()
            scores[label] = 100.0 * knn_evaluation(
                encoder, data.train, data.test, k=5,
            )
        rows.append([framework, scores["vanilla"], scores["CQ"],
                     scores["CQ"] - scores["vanilla"]])

    print()
    print(format_table(
        ["Framework", "Vanilla", "+ CQ", "Delta"],
        rows,
        title=f"k-NN accuracy (%) after {EPOCHS}-epoch pre-training",
    ))


if __name__ == "__main__":
    main()
