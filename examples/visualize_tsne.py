"""Scenario: inspect learned representations with t-SNE (paper Fig. 2).

Pre-trains SimCLR and CQ-C, embeds the test-set features with the
from-scratch t-SNE implementation, prints an ASCII scatter of each
embedding, and reports the linear-separability score.

    python examples/visualize_tsne.py
"""

import numpy as np

from repro.data import make_cifar100_like
from repro.eval import extract_features, linear_separability, tsne
from repro.experiments import MethodSpec, PretrainConfig, pretrain


def ascii_scatter(embedding: np.ndarray, labels: np.ndarray,
                  width: int = 60, height: int = 22) -> str:
    """Render a 2-D embedding as character art, one glyph per class."""
    glyphs = "ox+*#@%&$"
    grid = [[" "] * width for _ in range(height)]
    mins = embedding.min(axis=0)
    spans = embedding.max(axis=0) - mins + 1e-9
    for point, label in zip(embedding, labels):
        col = int((point[0] - mins[0]) / spans[0] * (width - 1))
        row = int((point[1] - mins[1]) / spans[1] * (height - 1))
        grid[row][col] = glyphs[int(label) % len(glyphs)]
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(r) + "|" for r in grid]
                     + [border])


def main() -> None:
    data = make_cifar100_like(num_classes=5, image_size=12,
                              train_per_class=32, test_per_class=14)
    config = PretrainConfig(encoder="resnet34", width_multiplier=0.0625,
                            epochs=10, batch_size=32,
                            augmentation_strength=1.0)

    for method in (
        MethodSpec("SimCLR"),
        MethodSpec("CQ-C", variant="C", precision_set="2-8"),
    ):
        print(f"\npre-training {method.name} ...")
        outcome = pretrain(method, data.train, config)
        encoder = outcome.make_encoder(quantized=False)
        features, labels = extract_features(encoder, data.test)
        embedding = tsne(features, perplexity=8.0, iterations=250,
                         rng=np.random.default_rng(0))
        score = 100.0 * linear_separability(embedding, labels)
        print(f"{method.name}: t-SNE embedding "
              f"(linear separability {score:.1f}%)")
        print(ascii_scatter(embedding, labels))


if __name__ == "__main__":
    main()
