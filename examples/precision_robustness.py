"""Scenario: choose a deployment bit-width with a robustness curve.

A practitioner wants to deploy a self-supervised encoder quantized to save
energy, but must pick the bit-width.  This example pre-trains SimCLR and
CQ-C, sweeps linear-probe accuracy over deployment precisions, and prints
both curves — showing where each method's accuracy cliff sits.

    python examples/precision_robustness.py
"""

import numpy as np

from repro.data import make_cifar100_like
from repro.eval import area_under_precision_curve, precision_sweep
from repro.experiments import MethodSpec, PretrainConfig, format_table, pretrain

BITS = (2, 3, 4, 6, 8, 16)


def main() -> None:
    data = make_cifar100_like(num_classes=8, image_size=12,
                              train_per_class=32, test_per_class=12)
    config = PretrainConfig(encoder="resnet18", width_multiplier=0.0625,
                            epochs=10, batch_size=32)

    rows = []
    for method in (
        MethodSpec("SimCLR"),
        MethodSpec("CQ-C", variant="C", precision_set="2-8"),
    ):
        print(f"pre-training {method.name} ...")
        outcome = pretrain(method, data.train, config)
        encoder = outcome.make_encoder(quantized=True)
        curve = precision_sweep(encoder, data.train, data.test,
                                bit_widths=BITS, epochs=15,
                                rng=np.random.default_rng(0))
        rows.append([method.name] + [curve[b] for b in BITS]
                    + [area_under_precision_curve(curve)])

    print()
    print(format_table(
        ["Method"] + [f"{b}-bit" for b in BITS] + ["mean"],
        rows,
        title="Linear-probe accuracy (%) vs deployment precision",
    ))
    print("\nReading the curve: the 'mean' column is a single robustness "
          "score; the low-bit columns show where accuracy falls off.")


if __name__ == "__main__":
    main()
