"""Encoder architectures used by the paper's experiments.

- ResNet-18/34 (ImageNet-style stem) — Tables 1-3.
- ResNet-18/34/74/110/152 (CIFAR-style stem, the 6n+2 family for the deep
  variants) — Tables 4-8.
- MobileNetV2 — Tables 4-7.
- Projection / prediction MLP heads — SimCLR and BYOL.

All constructors take ``width_multiplier`` so the benchmark harness can run
faithfully-shaped but CPU-sized models, and an explicit ``rng`` for
deterministic initialization.
"""

from .heads import PredictionHead, ProjectionHead
from .mobilenetv2 import MobileNetV2, mobilenet_v2
from .registry import available_encoders, create_encoder
from .resnet import (
    ResNet,
    resnet18,
    resnet34,
    resnet74,
    resnet110,
    resnet152,
)

__all__ = [
    "ResNet",
    "resnet18",
    "resnet34",
    "resnet74",
    "resnet110",
    "resnet152",
    "MobileNetV2",
    "mobilenet_v2",
    "ProjectionHead",
    "PredictionHead",
    "create_encoder",
    "available_encoders",
]
