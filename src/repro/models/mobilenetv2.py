"""MobileNetV2 encoder (inverted residual bottlenecks, depthwise convs)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.rng import ensure_rng

__all__ = ["InvertedResidual", "MobileNetV2", "mobilenet_v2"]

#: (expansion t, output channels c, repeats n, stride s) — Table 2 of the
#: MobileNetV2 paper.
_DEFAULT_CONFIG: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _make_divisible(value: float, divisor: int = 4) -> int:
    """Round channel counts to a multiple of ``divisor`` (min ``divisor``)."""
    return max(divisor, int(value + divisor / 2) // divisor * divisor)


class _ConvBNReLU(nn.Module):
    def __init__(self, inp, outp, kernel, stride, groups, rng):
        super().__init__()
        self.conv = nn.Conv2d(
            inp, outp, kernel, stride=stride, padding=kernel // 2,
            groups=groups, bias=False, rng=rng,
        )
        self.bn = nn.BatchNorm2d(outp)

    def forward(self, x):
        return F.relu6(self.bn(self.conv(x)))


class InvertedResidual(nn.Module):
    """Expand (1x1) -> depthwise (3x3) -> project (1x1, linear)."""

    def __init__(self, inp: int, outp: int, stride: int, expand_ratio: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        if stride not in (1, 2):
            raise ValueError(f"stride must be 1 or 2, got {stride}")
        hidden = int(round(inp * expand_ratio))
        self.use_residual = stride == 1 and inp == outp

        layers: List[nn.Module] = []
        if expand_ratio != 1:
            layers.append(_ConvBNReLU(inp, hidden, 1, 1, 1, rng))
        layers.append(_ConvBNReLU(hidden, hidden, 3, stride, hidden, rng))
        self.body = nn.Sequential(*layers)
        self.project = nn.Conv2d(hidden, outp, 1, bias=False, rng=rng)
        self.project_bn = nn.BatchNorm2d(outp)

    def forward(self, x):
        out = self.project_bn(self.project(self.body(x)))
        if self.use_residual:
            out = out + x
        return out


class MobileNetV2(nn.Module):
    """MobileNetV2 feature extractor.

    ``small_input=True`` (CIFAR-scale images) uses a stride-1 stem and
    drops the first stage-stride, following common CIFAR adaptations.
    """

    def __init__(
        self,
        width_multiplier: float = 1.0,
        config: Sequence[Tuple[int, int, int, int]] = _DEFAULT_CONFIG,
        small_input: bool = True,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        stem_width = _make_divisible(32 * width_multiplier)
        last_width = _make_divisible(1280 * min(1.0, width_multiplier * 4))

        stem_stride = 1 if small_input else 2
        self.stem = _ConvBNReLU(in_channels, stem_width, 3, stem_stride, 1, rng)

        blocks: List[nn.Module] = []
        current = stem_width
        for i, (t, c, n, s) in enumerate(config):
            outp = _make_divisible(c * width_multiplier)
            for j in range(n):
                stride = s if j == 0 else 1
                if small_input and i == 1 and j == 0:
                    stride = 1  # keep early resolution on small images
                blocks.append(InvertedResidual(current, outp, stride, t, rng))
                current = outp
        self.blocks = nn.Sequential(*blocks)
        self.head = _ConvBNReLU(current, last_width, 1, 1, 1, rng)
        self.feature_dim = last_width

    def forward(self, x):
        return F.global_avg_pool2d(self.forward_spatial(x))

    def forward_spatial(self, x):
        """Feature map before pooling — used by the detection head."""
        return self.head(self.blocks(self.stem(x)))


def mobilenet_v2(
    width_multiplier: float = 1.0,
    small_input: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> MobileNetV2:
    """Standard MobileNetV2 configuration."""
    return MobileNetV2(width_multiplier=width_multiplier,
                       small_input=small_input, rng=rng)
