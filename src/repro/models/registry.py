"""Name-based encoder construction for experiment configs."""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .mobilenetv2 import mobilenet_v2
from .resnet import resnet18, resnet34, resnet74, resnet110, resnet152

__all__ = ["create_encoder", "available_encoders"]

_BUILDERS: Dict[str, Callable] = {
    "resnet18": resnet18,
    "resnet34": resnet34,
    "resnet74": resnet74,
    "resnet110": resnet110,
    "resnet152": resnet152,
    "mobilenetv2": mobilenet_v2,
}

#: Encoders that accept a ``stem`` argument (ImageNet vs CIFAR stems).
_HAS_STEM = {"resnet18", "resnet34"}


def available_encoders():
    """Names accepted by :func:`create_encoder`."""
    return sorted(_BUILDERS)


def create_encoder(
    name: str,
    width_multiplier: float = 1.0,
    stem: str = "cifar",
    rng: Optional[np.random.Generator] = None,
):
    """Build an encoder by name.

    Returns a model exposing ``feature_dim`` and ``forward(x) -> (N, D)``.
    ``stem`` only applies to resnet18/34 (others are inherently small-input).
    """
    key = name.lower().replace("-", "").replace("_", "")
    if key not in _BUILDERS:
        raise ValueError(
            f"unknown encoder {name!r}; available: {available_encoders()}"
        )
    if key in _HAS_STEM:
        return _BUILDERS[key](stem=stem, width_multiplier=width_multiplier,
                              rng=rng)
    return _BUILDERS[key](width_multiplier=width_multiplier, rng=rng)
