"""Projection and prediction heads for contrastive learning.

SimCLR attaches a projection head (2-layer MLP) after the encoder; BYOL
additionally attaches a prediction head on the online branch.  Both follow
the Linear -> BN -> ReLU -> Linear shape of the reference implementations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.rng import ensure_rng

__all__ = ["ProjectionHead", "PredictionHead"]


def _head_norm(kind: str, dim: int) -> nn.Module:
    """Hidden-layer normalization for the MLP heads.

    ``"batch"`` is the reference SimCLR/BYOL choice; ``"layer"`` and
    ``"none"`` are per-sample alternatives that keep the head free of
    batch statistics, which is what allows fused multi-view forwards to
    stay bit-identical to per-view ones (see ``fuse_views``).
    """
    if kind == "batch":
        return nn.BatchNorm1d(dim)
    if kind == "layer":
        return nn.LayerNorm(dim)
    if kind == "none":
        return nn.Identity()
    raise ValueError(
        f"unknown head norm {kind!r}; expected 'batch', 'layer', or 'none'"
    )


class ProjectionHead(nn.Module):
    """2-layer MLP projection head (SimCLR's ``g(.)``)."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: Optional[int] = None,
        out_dim: int = 64,
        rng: Optional[np.random.Generator] = None,
        norm: str = "batch",
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        hidden_dim = hidden_dim or in_dim
        self.fc1 = nn.Linear(in_dim, hidden_dim, rng=rng)
        # Attribute stays "bn" whatever the norm kind so checkpoint
        # parameter names are independent of the norm choice.
        self.bn = _head_norm(norm, hidden_dim)
        self.fc2 = nn.Linear(hidden_dim, out_dim, bias=False, rng=rng)
        self.out_dim = out_dim

    def forward(self, x):
        return self.fc2(F.relu(self.bn(self.fc1(x))))


class PredictionHead(ProjectionHead):
    """BYOL's online-branch predictor ``q(.)`` — same MLP shape.

    A distinct class keeps checkpoint names and intent explicit even though
    the architecture matches the projection head.
    """
