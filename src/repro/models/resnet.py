"""ResNet encoders.

Two families, matching the paper's evaluation:

- **ImageNet-style** ResNet-18/34: 7x7 stride-2 stem + max-pool, four
  stages of BasicBlocks with channel widths (64, 128, 256, 512) x width
  multiplier.  Used for the ImageNet-like experiments (Tables 1-3).
- **CIFAR-style** ResNet-18/34/74/110/152: 3x3 stride-1 stem.  For depths
  18/34 the four-stage BasicBlock layout is kept (stem swapped); for the
  deep 6n+2 family (74 = 6*12+2, 110 = 6*18+2, 152 = 6*25+2) the classic
  three-stage CIFAR layout with widths (16, 32, 64) is used.

The forward pass returns pooled features (N, feature_dim); classification
heads are attached by the evaluation harnesses, and projection heads by the
contrastive trainers.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.rng import ensure_rng

__all__ = [
    "BasicBlock",
    "ResNet",
    "resnet18",
    "resnet34",
    "resnet74",
    "resnet110",
    "resnet152",
]


def _scaled(width: int, multiplier: float) -> int:
    """Scale a channel width, keeping at least 4 channels."""
    return max(4, int(round(width * multiplier)))


def _norm2d(kind: str, channels: int) -> nn.Module:
    """2-D normalization layer factory.

    ``"batch"`` is the reference choice; ``"group"`` (GroupNorm with up to
    8 groups, degrading gracefully for narrow widths) normalizes per
    sample, making the encoder safe for fused multi-view batching.
    """
    if kind == "batch":
        return nn.BatchNorm2d(channels)
    if kind == "group":
        return nn.GroupNorm(math.gcd(8, channels), channels)
    raise ValueError(f"unknown norm {kind!r}; expected 'batch' or 'group'")


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with an identity (or projected) shortcut."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        rng: np.random.Generator,
        norm: str = "batch",
    ) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1,
            bias=False, rng=rng,
        )
        self.bn1 = _norm2d(norm, out_channels)
        self.conv2 = nn.Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1,
            bias=False, rng=rng,
        )
        self.bn2 = _norm2d(norm, out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride,
                          bias=False, rng=rng),
                _norm2d(norm, out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return F.relu(out + self.shortcut(x))


class ResNet(nn.Module):
    """Generic ResNet over BasicBlocks.

    Parameters
    ----------
    stage_blocks:
        Blocks per stage, e.g. (2, 2, 2, 2) for ResNet-18.
    stage_widths:
        Output channels per stage (before the width multiplier).
    stem:
        "imagenet" (7x7/2 conv + 3x3/2 max-pool) or "cifar" (3x3/1 conv).
    width_multiplier:
        Uniform channel scaling — the benchmark harness uses < 1 values to
        keep CPU runtimes sane while preserving the architecture shape.
    """

    def __init__(
        self,
        stage_blocks: Sequence[int],
        stage_widths: Sequence[int],
        stem: str = "cifar",
        width_multiplier: float = 1.0,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
        norm: str = "batch",
    ) -> None:
        super().__init__()
        if len(stage_blocks) != len(stage_widths):
            raise ValueError(
                f"{len(stage_blocks)} stages but {len(stage_widths)} widths"
            )
        if stem not in ("imagenet", "cifar"):
            raise ValueError(f"unknown stem {stem!r}")
        rng = ensure_rng(rng)
        widths = [_scaled(w, width_multiplier) for w in stage_widths]
        stem_width = widths[0]

        self.stem_kind = stem
        if stem == "imagenet":
            self.stem_conv = nn.Conv2d(
                in_channels, stem_width, 7, stride=2, padding=3,
                bias=False, rng=rng,
            )
        else:
            self.stem_conv = nn.Conv2d(
                in_channels, stem_width, 3, stride=1, padding=1,
                bias=False, rng=rng,
            )
        # Attribute stays "stem_bn" whatever the norm kind so checkpoint
        # parameter names are independent of the norm choice.
        self.stem_bn = _norm2d(norm, stem_width)

        stages: List[nn.Sequential] = []
        current = stem_width
        for stage_index, (blocks, width) in enumerate(zip(stage_blocks, widths)):
            stride = 1 if stage_index == 0 else 2
            layers = []
            for block_index in range(blocks):
                layers.append(
                    BasicBlock(
                        current,
                        width,
                        stride if block_index == 0 else 1,
                        rng,
                        norm=norm,
                    )
                )
                current = width
            stages.append(nn.Sequential(*layers))
        self.stages = nn.ModuleList(stages)
        self.feature_dim = current

    def forward(self, x):
        out = F.relu(self.stem_bn(self.stem_conv(x)))
        if self.stem_kind == "imagenet":
            out = F.max_pool2d(out, 3, stride=2, padding=1)
        for stage in self.stages:
            out = stage(out)
        return F.global_avg_pool2d(out)

    def forward_spatial(self, x):
        """Feature map before pooling — used by the detection head."""
        out = F.relu(self.stem_bn(self.stem_conv(x)))
        if self.stem_kind == "imagenet":
            out = F.max_pool2d(out, 3, stride=2, padding=1)
        for stage in self.stages:
            out = stage(out)
        return out


def resnet18(
    stem: str = "cifar",
    width_multiplier: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    norm: str = "batch",
) -> ResNet:
    """ResNet-18: four stages of (2, 2, 2, 2) BasicBlocks."""
    return ResNet((2, 2, 2, 2), (64, 128, 256, 512), stem, width_multiplier,
                  rng=rng, norm=norm)


def resnet34(
    stem: str = "cifar",
    width_multiplier: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    norm: str = "batch",
) -> ResNet:
    """ResNet-34: four stages of (3, 4, 6, 3) BasicBlocks."""
    return ResNet((3, 4, 6, 3), (64, 128, 256, 512), stem, width_multiplier,
                  rng=rng, norm=norm)


def _cifar_deep(depth: int, width_multiplier: float,
                rng: Optional[np.random.Generator],
                norm: str = "batch") -> ResNet:
    if (depth - 2) % 6 != 0:
        raise ValueError(f"CIFAR ResNet depth must be 6n+2, got {depth}")
    n = (depth - 2) // 6
    return ResNet((n, n, n), (16, 32, 64), "cifar", width_multiplier, rng=rng,
                  norm=norm)


def resnet74(width_multiplier: float = 1.0,
             rng: Optional[np.random.Generator] = None,
             norm: str = "batch") -> ResNet:
    """CIFAR-style ResNet-74 (6n+2 with n=12)."""
    return _cifar_deep(74, width_multiplier, rng, norm)


def resnet110(width_multiplier: float = 1.0,
              rng: Optional[np.random.Generator] = None,
              norm: str = "batch") -> ResNet:
    """CIFAR-style ResNet-110 (6n+2 with n=18)."""
    return _cifar_deep(110, width_multiplier, rng, norm)


def resnet152(width_multiplier: float = 1.0,
              rng: Optional[np.random.Generator] = None,
              norm: str = "batch") -> ResNet:
    """CIFAR-style ResNet-152 (6n+2 with n=25)."""
    return _cifar_deep(152, width_multiplier, rng, norm)
