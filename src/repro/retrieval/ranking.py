"""Exact, deterministic top-k selection shared by every index.

All retrieval structures in this package — :class:`~repro.retrieval.BinaryIndex`,
:class:`~repro.retrieval.PQIndex`, and the float oracle
:func:`~repro.retrieval.exact_search` — rank candidates with the *same*
total order: ascending ``(distance, item id)``.  Hamming distances over
short codes produce massive tie groups (a 64-bit code has only 65
distinct distances over a million items), so a plain ``argpartition``
would return an arbitrary member of the boundary tie group and
approximate indexes could never be compared id-for-id against the
brute-force oracle.  Resolving ties by item id makes every search result
a pure function of the stored vectors, which is what the property tests
assert.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["topk_smallest", "topk_largest"]


def topk_smallest(values: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row top-k by ascending ``(value, column index)``.

    Parameters
    ----------
    values:
        ``(Q, N)`` matrix of distances, one row per query.
    k:
        Number of neighbours requested; clamped to ``N`` when the row is
        shorter, so callers always get ``min(k, N)`` columns back.

    Returns
    -------
    ``(indices, values)`` — both ``(Q, min(k, N))``, row ``i`` sorted
    ascending by distance with ties broken by the smaller column index.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"expected a (queries, items) matrix, got "
                         f"shape {values.shape}")
    n = values.shape[1]
    if n == 0:
        raise ValueError("cannot select top-k from an empty candidate set")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(int(k), n)

    # Narrow unsigned distances (Hamming over packed words) admit a
    # counting-sort selection: two O(N) scans and a 65536-bin histogram
    # instead of argpartition's full-size index array per row.
    counting = values.dtype.kind == "u" and values.itemsize <= 2

    rows = []
    for row in values:
        if k >= n:
            ids = np.arange(n)
            order = np.lexsort((ids, row))[:k]
            rows.append(ids[order])
            continue
        if counting:
            cum = np.cumsum(np.bincount(row))
            kth = row.dtype.type(np.searchsorted(cum, k))
        else:
            # Preselect the k smallest; every index with a value strictly
            # below the k-th order statistic is necessarily inside the
            # partition, so only the boundary tie group needs widening.
            part = np.argpartition(row, k - 1)[:k]
            kth = row[part].max()
        strict = np.nonzero(row < kth)[0]
        order = np.lexsort((strict, row[strict]))
        strict = strict[order]
        # Boundary ties all share the value `kth`: the id tie-break just
        # wants the smallest ids, which partition finds in O(ties)
        # instead of sorting the (potentially huge) tie group.
        need = k - strict.size
        border = np.nonzero(row == kth)[0]
        if need < border.size:
            border = np.partition(border, need - 1)[:need] if need else \
                border[:0]
        rows.append(np.concatenate([strict, np.sort(border)]))
    indices = np.stack(rows)
    return indices, np.take_along_axis(values, indices, axis=1)


def topk_largest(values: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row top-k by *descending* ``(value, ascending column index)``."""
    values = np.asarray(values)
    if values.dtype.kind == "u":  # unsigned negation would wrap
        values = values.astype(np.int64)
    indices, negated = topk_smallest(-values, k)
    return indices, -negated
