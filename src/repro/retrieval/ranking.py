"""Exact, deterministic top-k selection shared by every index.

All retrieval structures in this package — :class:`~repro.retrieval.BinaryIndex`,
:class:`~repro.retrieval.PQIndex`, and the float oracle
:func:`~repro.retrieval.exact_search` — rank candidates with the *same*
total order: ascending ``(distance, item id)``.  Hamming distances over
short codes produce massive tie groups (a 64-bit code has only 65
distinct distances over a million items), so a plain ``argpartition``
would return an arbitrary member of the boundary tie group and
approximate indexes could never be compared id-for-id against the
brute-force oracle.  Resolving ties by item id makes every search result
a pure function of the stored vectors, which is what the property tests
assert.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["topk_smallest", "topk_largest", "merge_topk", "rowwise_topk"]


def topk_smallest(values: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row top-k by ascending ``(value, column index)``.

    Parameters
    ----------
    values:
        ``(Q, N)`` matrix of distances, one row per query.
    k:
        Number of neighbours requested; clamped to ``N`` when the row is
        shorter, so callers always get ``min(k, N)`` columns back.

    Returns
    -------
    ``(indices, values)`` — both ``(Q, min(k, N))``, row ``i`` sorted
    ascending by distance with ties broken by the smaller column index.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"expected a (queries, items) matrix, got "
                         f"shape {values.shape}")
    n = values.shape[1]
    if n == 0:
        raise ValueError("cannot select top-k from an empty candidate set")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(int(k), n)

    # Narrow unsigned distances (Hamming over packed words) admit a
    # counting-sort selection: two O(N) scans and a 65536-bin histogram
    # instead of argpartition's full-size index array per row.
    counting = values.dtype.kind == "u" and values.itemsize <= 2

    rows = []
    for row in values:
        if k >= n:
            ids = np.arange(n)
            order = np.lexsort((ids, row))[:k]
            rows.append(ids[order])
            continue
        if counting:
            cum = np.cumsum(np.bincount(row))
            kth = row.dtype.type(np.searchsorted(cum, k))
        else:
            # Preselect the k smallest; every index with a value strictly
            # below the k-th order statistic is necessarily inside the
            # partition, so only the boundary tie group needs widening.
            part = np.argpartition(row, k - 1)[:k]
            kth = row[part].max()
        strict = np.nonzero(row < kth)[0]
        order = np.lexsort((strict, row[strict]))
        strict = strict[order]
        # Boundary ties all share the value `kth`: the id tie-break just
        # wants the smallest ids, which partition finds in O(ties)
        # instead of sorting the (potentially huge) tie group.
        need = k - strict.size
        border = np.nonzero(row == kth)[0]
        if need < border.size:
            border = np.partition(border, need - 1)[:need] if need else \
                border[:0]
        rows.append(np.concatenate([strict, np.sort(border)]))
    indices = np.stack(rows)
    return indices, np.take_along_axis(values, indices, axis=1)


def topk_largest(values: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row top-k by *descending* ``(value, ascending column index)``."""
    values = np.asarray(values)
    if values.dtype.kind == "u":  # unsigned negation would wrap
        values = values.astype(np.int64)
    indices, negated = topk_smallest(-values, k)
    return indices, -negated


def rowwise_topk(ids: np.ndarray, values: np.ndarray,
                 k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k per row by ascending ``(value, id)`` for *explicit* id arrays.

    Unlike :func:`topk_smallest`, whose ties resolve by column position,
    the candidates here carry arbitrary item ids (a blocked scan's global
    offsets, an IVF index's per-cell id lists), so the tie-break must use
    the ids themselves to preserve the package-wide ``(distance, id)``
    total order.  Both inputs are ``(Q, C)``; returns ``(ids, values)``
    of shape ``(Q, min(k, C))``.
    """
    ids = np.asarray(ids)
    values = np.asarray(values)
    if ids.shape != values.shape or ids.ndim != 2:
        raise ValueError(
            f"ids and values must share a (Q, C) shape, got {ids.shape} "
            f"and {values.shape}"
        )
    if ids.shape[1] == 0:
        raise ValueError("cannot select top-k from an empty candidate set")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(int(k), ids.shape[1])
    out_ids = np.empty((ids.shape[0], k), dtype=ids.dtype)
    out_values = np.empty((ids.shape[0], k), dtype=values.dtype)
    for row, (row_ids, row_values) in enumerate(zip(ids, values)):
        order = np.lexsort((row_ids, row_values))[:k]
        out_ids[row] = row_ids[order]
        out_values[row] = row_values[order]
    return out_ids, out_values


def merge_topk(ids_a: np.ndarray, values_a: np.ndarray,
               ids_b: np.ndarray, values_b: np.ndarray,
               k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two per-row candidate sets into one ``(value, id)`` top-k.

    The running-merge primitive of the blocked scans: a scan keeps its
    current best ``(ids, values)`` and folds in each item block's local
    top-k without ever materializing a full ``(Q, N)`` distance matrix.
    Candidate sets must be disjoint per row (blocked scans guarantee it);
    widths may differ.  Returns ``(ids, values)`` of shape
    ``(Q, min(k, total))``.
    """
    ids = np.concatenate([np.asarray(ids_a), np.asarray(ids_b)], axis=1)
    values = np.concatenate([np.asarray(values_a), np.asarray(values_b)],
                            axis=1)
    return rowwise_topk(ids, values, k)
