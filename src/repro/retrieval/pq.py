"""Product-quantized index with asymmetric-distance (ADC) search.

Stored items are compact per-subspace code ids from a trained
:class:`repro.retrieval.ProductQuantizer`; queries stay *float*.  Search
builds one lookup table per subspace — the distance from each query
slice to every codebook entry — and accumulates per-item distances by
gathering table entries at the stored codes, so a scan over N items
costs ``O(Q * num_codes * dim)`` table work plus ``O(Q * N *
num_subspaces)`` gathers and never touches a float reconstruction.

Supported metrics: ``"l2"`` (squared Euclidean to the reconstruction)
and ``"ip"`` (negated inner product, so smaller is still better).
Results are ranked by ascending ``(distance, id)`` like every index in
this package, making them directly comparable to the float oracle.
"""

from __future__ import annotations

import threading
from typing import Tuple

import numpy as np

from .ranking import topk_smallest
from .vq import ProductQuantizer

__all__ = ["PQIndex"]

_METRICS = ("l2", "ip")


class PQIndex:
    """ADC lookup-table search over product-quantized codes.

    Item ids are assignment order.  ``add()`` is thread-safe; ``search``
    snapshots the current size, so concurrent adds never tear a query.
    """

    def __init__(self, quantizer: ProductQuantizer, *, metric: str = "l2",
                 query_block: int = 32) -> None:
        if not isinstance(quantizer, ProductQuantizer):
            raise TypeError(
                f"quantizer must be a ProductQuantizer, got "
                f"{type(quantizer).__name__}"
            )
        if metric not in _METRICS:
            raise ValueError(
                f"metric must be one of {_METRICS}, got {metric!r}"
            )
        if query_block < 1:
            raise ValueError(f"query_block must be >= 1, got {query_block}")
        self.quantizer = quantizer
        self.metric = metric
        self.query_block = int(query_block)
        self._lock = threading.Lock()
        self._codes = np.zeros((0, quantizer.num_subspaces),
                               dtype=quantizer.code_dtype)
        self._size = 0

    @property
    def dim(self) -> int:
        return self.quantizer.dim

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def codes(self) -> np.ndarray:
        """Copy of the stored per-subspace codes (in id order)."""
        # Lock pairs _codes with _size: a concurrent add_codes could
        # otherwise publish a new size against the old storage.
        with self._lock:
            return self._codes[:self._size].copy()

    def _grow_to(self, size: int) -> None:
        if size <= self._codes.shape[0]:
            return
        capacity = max(1024, self._codes.shape[0] * 2, size)
        grown = np.zeros((capacity, self.quantizer.num_subspaces),
                         dtype=self.quantizer.code_dtype)
        grown[:self._size] = self._codes[:self._size]
        self._codes = grown

    def add(self, embeddings: np.ndarray) -> np.ndarray:
        """Encode and store embeddings; returns their assigned ids."""
        return self.add_codes(self.quantizer.encode(embeddings))

    def add_codes(self, codes: np.ndarray) -> np.ndarray:
        """Store pre-encoded codes; returns their assigned ids."""
        codes = np.asarray(codes)
        if (codes.ndim != 2
                or codes.shape[1] != self.quantizer.num_subspaces):
            raise ValueError(
                f"codes must have shape (N, "
                f"{self.quantizer.num_subspaces}), got {codes.shape}"
            )
        if codes.size and (int(codes.min()) < 0
                           or int(codes.max()) >= self.quantizer.num_codes):
            raise ValueError(
                f"code ids must be in [0, {self.quantizer.num_codes})"
            )
        codes = codes.astype(self.quantizer.code_dtype, copy=False)
        with self._lock:
            start = self._size
            self._grow_to(start + codes.shape[0])
            self._codes[start:start + codes.shape[0]] = codes
            self._size += codes.shape[0]
            return np.arange(start, self._size, dtype=np.int64)

    def _lookup_tables(self, queries: np.ndarray) -> np.ndarray:
        """``(M, Q, num_codes)`` per-subspace query-to-code distances."""
        q = self.quantizer
        tables = np.empty(
            (q.num_subspaces, queries.shape[0], q.num_codes),
            dtype=np.float64,
        )
        for m, sub in enumerate(q.quantizers):
            part = queries[:, m * q.subdim:(m + 1) * q.subdim]
            codebook = sub.codebook.data
            inner = part @ codebook.T
            if self.metric == "l2":
                tables[m] = (np.sum(part ** 2, axis=1)[:, None]
                             - 2.0 * inner
                             + np.sum(codebook ** 2, axis=1)[None, :])
            else:
                tables[m] = -inner
        return tables

    def search(self, queries: np.ndarray,
               k: int = 10) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k by asymmetric distance for ``(Q, dim)`` float queries.

        Returns ``(ids, distances)``, both ``(Q, min(k, len(self)))``;
        for ``metric="ip"`` the distances are negated inner products.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries must have shape (Q, {self.dim}), got "
                f"{queries.shape}"
            )
        with self._lock:
            size = self._size
            codes = self._codes  # snapshot; rows < size are frozen
        if size == 0:
            raise ValueError("search on an empty PQIndex; add() items first")
        stored = codes[:size].astype(np.int64, copy=False)
        id_blocks = []
        dist_blocks = []
        for start in range(0, queries.shape[0], self.query_block):
            block = queries[start:start + self.query_block]
            tables = self._lookup_tables(block)
            dists = np.zeros((block.shape[0], size), dtype=np.float64)
            for m in range(self.quantizer.num_subspaces):
                dists += tables[m][:, stored[:, m]]
            ids, top = topk_smallest(dists, k)
            id_blocks.append(ids)
            dist_blocks.append(top)
        return np.concatenate(id_blocks), np.concatenate(dist_blocks)
