"""Product-quantized index with memory-bounded asymmetric-distance search.

Stored items are compact per-subspace code ids from a trained
:class:`repro.retrieval.ProductQuantizer`; queries stay *float*.  Search
builds one float32 lookup table per subspace — the distance from each
query slice to every codebook entry — and accumulates per-item distances
by gathering table entries at the stored codes.

The scan is blocked along both axes: ``query_block`` queries at a time
against ``item_block`` items at a time, accumulating into one reused
float32 scratch pair (``np.take(..., out=..., mode="clip")`` gathers, no
per-block allocation) and folding each block's local top-k into a
running ``(distance, id)`` merge.  Peak memory is
``O(query_block * item_block)`` regardless of corpus size — the dense
``(Q, N)`` float64 matrix this replaces cost ~2 GB at the committed
million-item bench shape.

Supported metrics: ``"l2"`` (squared Euclidean to the reconstruction)
and ``"ip"`` (negated inner product, so smaller is still better).
Results are ranked by ascending ``(distance, id)`` like every index in
this package, making them directly comparable to the float oracle.
With ``store_embeddings=True`` the index retains float32 rows and
``search(..., rerank=R)`` re-scores the top-``R`` ADC shortlist exactly
before returning top-k (distances are then true float distances).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from .ranking import merge_topk, topk_smallest
from .rerank import FloatStore, rerank_exact
from .vq import ProductQuantizer

__all__ = ["PQIndex"]

_METRICS = ("l2", "ip")


class PQIndex:
    """Blocked ADC lookup-table search over product-quantized codes.

    Item ids are assignment order.  ``add()`` is thread-safe; ``search``
    snapshots the current size, so concurrent adds never tear a query.
    """

    def __init__(self, quantizer: ProductQuantizer, *, metric: str = "l2",
                 query_block: int = 32, item_block: int = 32_768,
                 store_embeddings: bool = False) -> None:
        if not isinstance(quantizer, ProductQuantizer):
            raise TypeError(
                f"quantizer must be a ProductQuantizer, got "
                f"{type(quantizer).__name__}"
            )
        if metric not in _METRICS:
            raise ValueError(
                f"metric must be one of {_METRICS}, got {metric!r}"
            )
        if query_block < 1:
            raise ValueError(f"query_block must be >= 1, got {query_block}")
        if item_block < 1:
            raise ValueError(f"item_block must be >= 1, got {item_block}")
        self.quantizer = quantizer
        self.metric = metric
        self.query_block = int(query_block)
        self.item_block = int(item_block)
        self._lock = threading.Lock()
        self._codes = np.zeros((0, quantizer.num_subspaces),
                               dtype=quantizer.code_dtype)
        self._size = 0
        self._store = FloatStore(quantizer.dim) if store_embeddings else None

    @property
    def dim(self) -> int:
        return self.quantizer.dim

    @property
    def store(self) -> Optional[FloatStore]:
        """The float32 rerank store, or None when not retained."""
        return self._store

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def codes(self) -> np.ndarray:
        """Copy of the stored per-subspace codes (in id order)."""
        # Lock pairs _codes with _size: a concurrent add_codes could
        # otherwise publish a new size against the old storage.
        with self._lock:
            return self._codes[:self._size].copy()

    def _grow_to(self, size: int) -> None:
        if size <= self._codes.shape[0]:
            return
        capacity = max(1024, self._codes.shape[0] * 2, size)
        grown = np.zeros((capacity, self.quantizer.num_subspaces),
                         dtype=self.quantizer.code_dtype)
        grown[:self._size] = self._codes[:self._size]
        self._codes = grown

    def _check_codes(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        if (codes.ndim != 2
                or codes.shape[1] != self.quantizer.num_subspaces):
            raise ValueError(
                f"codes must have shape (N, "
                f"{self.quantizer.num_subspaces}), got {codes.shape}"
            )
        if codes.size and (int(codes.min()) < 0
                           or int(codes.max()) >= self.quantizer.num_codes):
            raise ValueError(
                f"code ids must be in [0, {self.quantizer.num_codes})"
            )
        return codes.astype(self.quantizer.code_dtype, copy=False)

    def _append_locked(self, codes: np.ndarray) -> np.ndarray:
        start = self._size
        self._grow_to(start + codes.shape[0])
        self._codes[start:start + codes.shape[0]] = codes
        self._size += codes.shape[0]
        return np.arange(start, self._size, dtype=np.int64)

    def add(self, embeddings: np.ndarray) -> np.ndarray:
        """Encode and store embeddings; returns their assigned ids."""
        embeddings = np.asarray(embeddings)
        codes = self._check_codes(self.quantizer.encode(embeddings))
        with self._lock:
            ids = self._append_locked(codes)
            if self._store is not None:
                # Under the index lock so code ids and float rows can
                # never interleave across concurrent add() calls.
                self._store.append(embeddings.astype(np.float32,
                                                     copy=False))
        return ids

    def add_codes(self, codes: np.ndarray) -> np.ndarray:
        """Store pre-encoded codes; returns their assigned ids."""
        if self._store is not None:
            raise ValueError(
                "add_codes() carries no float rows; an index built with "
                "store_embeddings=True must add() raw embeddings"
            )
        codes = self._check_codes(codes)
        with self._lock:
            return self._append_locked(codes)

    def _lookup_tables(self, queries: np.ndarray,
                       out: np.ndarray) -> np.ndarray:
        """``(M, Q, num_codes)`` float32 per-subspace query-to-code tables."""
        q = self.quantizer
        tables = out[:, :queries.shape[0]]
        for m, sub in enumerate(q.quantizers):
            # Tables are tiny next to the scan, so compute them in
            # float64 before the float32 cast: float32 gemm rounding
            # depends on the batch shape, which would make results vary
            # with query_block by one ulp.
            part = queries[:, m * q.subdim:(m + 1) * q.subdim].astype(
                np.float64)
            codebook = sub.codebook.data.astype(np.float64)
            inner = part @ codebook.T
            if self.metric == "l2":
                tables[m] = (np.sum(part ** 2, axis=1)[:, None]
                             - 2.0 * inner
                             + np.sum(codebook ** 2, axis=1)[None, :])
            else:
                np.negative(inner, out=tables[m])
        return tables

    def search(self, queries: np.ndarray, k: int = 10, *,
               rerank: Optional[int] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k by asymmetric distance for ``(Q, dim)`` float queries.

        Returns ``(ids, distances)``, both ``(Q, min(k, len(self)))``;
        for ``metric="ip"`` the distances are negated inner products.
        ``rerank=R`` re-scores the top-``R`` ADC shortlist exactly
        against the float store (requires ``store_embeddings=True``) and
        returns true float distances instead of ADC approximations.
        """
        ids, dists, _ = self._search(queries, k, rerank)
        return ids, dists

    def search_stats(self, queries: np.ndarray, k: int = 10, *,
                     rerank: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray, Dict[str, float]]:
        """Like :meth:`search`, plus scan/rerank timing + shortlist stats."""
        return self._search(queries, k, rerank)

    def _check_rerank(self, k: int, rerank: Optional[int]) -> Optional[int]:
        if rerank is None:
            return None
        rerank = int(rerank)
        if rerank < k:
            raise ValueError(
                f"rerank shortlist must be >= k, got rerank={rerank} "
                f"< k={k}"
            )
        if self._store is None:
            raise ValueError(
                "rerank requires an index built with store_embeddings=True"
            )
        return rerank

    def _search(self, queries: np.ndarray, k: int,
                rerank: Optional[int]
                ) -> Tuple[np.ndarray, np.ndarray, Dict[str, float]]:
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries must have shape (Q, {self.dim}), got "
                f"{queries.shape}"
            )
        rerank = self._check_rerank(k, rerank)
        with self._lock:
            size = self._size
            codes = self._codes  # snapshot; rows < size are frozen
        if size == 0:
            raise ValueError("search on an empty PQIndex; add() items first")
        stored = codes[:size]
        shortlist_k = rerank if rerank is not None else k

        num_subspaces = self.quantizer.num_subspaces
        qb = min(self.query_block, queries.shape[0])
        ib = min(self.item_block, size)
        # One scratch set per search call (search stays re-entrant),
        # reused across every (query block, item block) pair.
        tables_buf = np.empty((num_subspaces, qb, self.quantizer.num_codes),
                              dtype=np.float32)
        acc = np.empty((qb, ib), dtype=np.float32)
        gather = np.empty((qb, ib), dtype=np.float32)
        idx_buf = np.empty(ib, dtype=np.intp)

        started = time.perf_counter()
        id_blocks = []
        dist_blocks = []
        for qstart in range(0, queries.shape[0], qb):
            block = queries[qstart:qstart + qb]
            b = block.shape[0]
            tables = self._lookup_tables(block, tables_buf)
            best_ids: Optional[np.ndarray] = None
            best_dists: Optional[np.ndarray] = None
            for istart in range(0, size, ib):
                chunk = stored[istart:istart + ib]
                count = chunk.shape[0]
                acc_view = acc[:b, :count]
                gather_view = gather[:b, :count]
                idx = idx_buf[:count]
                # mode="clip" skips numpy's bounds-check temp copy; code
                # ids were validated < num_codes on the add() path.
                idx[:] = chunk[:, 0]
                np.take(tables[0], idx, axis=1, out=acc_view, mode="clip")
                for m in range(1, num_subspaces):
                    idx[:] = chunk[:, m]
                    np.take(tables[m], idx, axis=1, out=gather_view,
                            mode="clip")
                    np.add(acc_view, gather_view, out=acc_view)
                cols, dists = topk_smallest(acc_view, shortlist_k)
                ids = cols.astype(np.int64) + istart
                if best_ids is None:
                    best_ids, best_dists = ids, dists
                else:
                    best_ids, best_dists = merge_topk(
                        best_ids, best_dists, ids, dists, shortlist_k)
            id_blocks.append(best_ids)
            dist_blocks.append(best_dists)
        scan_ids = np.concatenate(id_blocks)
        scan_dists = np.concatenate(dist_blocks)
        scan_s = time.perf_counter() - started

        stats: Dict[str, float] = {
            "scan_s": scan_s,
            "rerank_s": 0.0,
            "shortlist": float(scan_ids.shape[1]),
        }
        if rerank is None:
            return scan_ids, scan_dists, stats
        started = time.perf_counter()
        ids, dists = rerank_exact(self._store, queries, scan_ids, k,
                                  metric=self.metric,
                                  query_block=self.query_block)
        stats["rerank_s"] = time.perf_counter() - started
        return ids, dists, stats
