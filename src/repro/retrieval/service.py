"""End-to-end retrieval over the serving layer: embed → quantize → search.

:class:`RetrievalService` composes an
:class:`~repro.serving.EmbeddingService` (registry-resolved model,
request micro-batching) with one of this package's quantized indexes.
``add()`` embeds raw samples and stores their codes; ``search()`` embeds
raw queries and runs quantized top-k — the full production path the
ROADMAP's million-item workload describes.

The failure mode this layer exists to catch: the registry hot-swaps the
embedding model (a new ``publish()`` under the served name) while the
index still holds codes from the *old* model's embedding space — every
search result would be silently garbage.  The service binds the index to
the model version that filled it and re-checks the resolved version both
*before and after* the embedding round trip (the swap can land mid-query
while requests sit in the micro-batch queue), raising
:class:`StaleIndexError` instead of returning cross-space neighbours.
In-place edits to the published model (fingerprint drift) are caught the
same way via ``ModelVersion.is_stale()``.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..serving.service import EmbeddingService
from .binary import BinaryIndex
from .ivf import IVFIndex
from .pq import PQIndex
from .trainer import l2_normalize

__all__ = ["RetrievalService", "StaleIndexError"]

Index = Union[BinaryIndex, PQIndex, IVFIndex]
_INDEX_TYPES = (BinaryIndex, PQIndex, IVFIndex)


class StaleIndexError(RuntimeError):
    """The index was built against a different model than is now served."""


class RetrievalService:
    """Quantized retrieval behind a micro-batching embedding service.

    Parameters
    ----------
    embedder:
        A (started or startable) :class:`EmbeddingService`; its registry
        and model name define the embedding space.
    index:
        A :class:`BinaryIndex`, :class:`PQIndex`, or :class:`IVFIndex`
        receiving the codes.
    normalize:
        L2-normalize embeddings before indexing/searching (the paper's
        embeddings are unit-norm; quantizer thresholds assume it).
    """

    def __init__(self, embedder: EmbeddingService, index: Index, *,
                 normalize: bool = True) -> None:
        if not isinstance(embedder, EmbeddingService):
            raise TypeError(
                f"embedder must be an EmbeddingService, got "
                f"{type(embedder).__name__}"
            )
        if not isinstance(index, _INDEX_TYPES):
            raise TypeError(
                f"index must be a BinaryIndex, PQIndex, or IVFIndex, got "
                f"{type(index).__name__}"
            )
        self.embedder = embedder
        self.normalize = bool(normalize)
        # RLock: swap_index() may be called from a callback that already
        # holds the lock through search()'s consistency window.
        self._lock = threading.RLock()
        self._index = index
        self._model_key: Optional[Tuple[str, int]] = None
        metrics = embedder.metrics
        labels = {"model": embedder.model_name}
        self._m_adds = metrics.counter("retrieval.items_indexed", **labels)
        self._m_searches = metrics.counter("retrieval.searches", **labels)
        self._m_stale = metrics.counter("retrieval.stale_rejections",
                                        **labels)
        self._m_cells = metrics.counter("retrieval.cells_probed", **labels)
        self._h_scan = metrics.histogram("retrieval.scan_seconds", **labels)
        self._h_rerank = metrics.histogram("retrieval.rerank_seconds",
                                           **labels)
        self._h_shortlist = metrics.histogram("retrieval.shortlist_size",
                                              **labels)

    # -- lifecycle (delegates to the embedder) -----------------------------

    def start(self) -> "RetrievalService":
        self.embedder.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self.embedder.stop(timeout)

    def __enter__(self) -> "RetrievalService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -----------------------------------------------------

    @property
    def index(self) -> Index:
        with self._lock:
            return self._index

    @property
    def model_key(self) -> Optional[Tuple[str, int]]:
        """``(name, version)`` the index is bound to; None until first add."""
        with self._lock:
            return self._model_key

    def __len__(self) -> int:
        return len(self.index)

    # -- consistency checks ------------------------------------------------

    def _resolve_entry(self):
        return self.embedder.registry.get(self.embedder.model_name)

    def _check_entry(self, when: str):
        """Resolve the served model and verify it matches the index."""
        entry = self._resolve_entry()
        with self._lock:
            bound = self._model_key
        if bound is not None and entry.key != bound:
            self._m_stale.inc()
            raise StaleIndexError(
                f"served model is now {entry.key} but the index holds "
                f"embeddings from {bound} ({when}); rebuild via "
                f"swap_index() before serving queries"
            )
        if entry.is_stale():
            self._m_stale.inc()
            raise StaleIndexError(
                f"published model {entry.key} was modified in place "
                f"(fingerprint drift, {when}); re-publish and rebuild "
                f"the index"
            )
        return entry

    def _embed(self, samples: Sequence[np.ndarray],
               timeout: Optional[float]) -> np.ndarray:
        rows = self.embedder.embed_many(list(samples), timeout)
        embeddings = np.stack([np.asarray(r, dtype=np.float64)
                               for r in rows])
        if embeddings.ndim != 2:
            raise ValueError(
                f"embedder produced {embeddings.ndim - 1}-D embeddings; "
                f"retrieval needs 1-D vectors per sample"
            )
        return l2_normalize(embeddings) if self.normalize else embeddings

    # -- indexing / search -------------------------------------------------

    def add(self, samples: Sequence[np.ndarray],
            timeout: Optional[float] = 30.0) -> np.ndarray:
        """Embed raw samples and append them to the index; returns ids.

        The first ``add`` binds the index to the currently served model
        version; later calls (and every search) must still resolve that
        version or they raise :class:`StaleIndexError`.
        """
        if len(samples) == 0:
            raise ValueError("add() needs at least one sample")
        entry = self._check_entry("while adding")
        embeddings = self._embed(samples, timeout)
        with self._lock:
            if self._model_key is None:
                self._model_key = entry.key
        # The swap may have landed while the embed round-tripped through
        # the micro-batch queue; never index cross-space vectors.
        self._check_entry("after embedding the added samples")
        ids = self.index.add(embeddings)
        self._m_adds.inc(len(ids))
        return ids

    def _run_search(self, index: Index, queries: np.ndarray, k: int,
                    nprobe: Optional[int], rerank: Optional[int]
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dispatch to the index's instrumented search and record stats."""
        kwargs = {}
        if rerank is not None:
            kwargs["rerank"] = rerank
        if nprobe is not None:
            if not isinstance(index, IVFIndex):
                raise ValueError(
                    f"nprobe only applies to an IVFIndex; the service "
                    f"holds a {type(index).__name__}"
                )
            kwargs["nprobe"] = nprobe
        ids, dists, stats = index.search_stats(queries, k, **kwargs)
        self._h_scan.observe(stats["scan_s"])
        self._h_shortlist.observe(stats["shortlist"])
        if rerank is not None:
            self._h_rerank.observe(stats["rerank_s"])
        if "cells_probed" in stats:
            self._m_cells.inc(int(stats["cells_probed"]))
        return ids, dists

    def search(self, samples: Sequence[np.ndarray], k: int = 10,
               timeout: Optional[float] = 30.0, *,
               nprobe: Optional[int] = None,
               rerank: Optional[int] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Embed raw queries and return quantized top-k ``(ids, distances)``.

        ``nprobe`` overrides an :class:`IVFIndex`'s probe width for this
        call (rejected for exhaustive indexes); ``rerank=R`` re-scores
        the top-``R`` shortlist exactly when the index retains a float
        store.  Scan/rerank latency, shortlist width, and cells probed
        land in the ``retrieval.*`` metrics.
        """
        if len(samples) == 0:
            raise ValueError("search() needs at least one query sample")
        index = self.index
        if len(index) == 0:
            raise ValueError(
                "search on an empty retrieval index; add() items first"
            )
        self._check_entry("before embedding the queries")
        queries = self._embed(samples, timeout)
        self._check_entry("after embedding the queries")
        self._m_searches.inc(queries.shape[0])
        return self._run_search(index, queries, k, nprobe, rerank)

    def search_embeddings(self, embeddings: np.ndarray, k: int = 10, *,
                          nprobe: Optional[int] = None,
                          rerank: Optional[int] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Search with precomputed embeddings, skipping the embedder."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2:
            raise ValueError(
                f"expected (Q, dim) embeddings, got shape {embeddings.shape}"
            )
        index = self.index
        if embeddings.shape[1] != index.dim:
            raise ValueError(
                f"query embeddings have {embeddings.shape[1]} coordinates "
                f"but the index stores {index.dim}-dimensional items"
            )
        if self.normalize:
            embeddings = l2_normalize(embeddings)
        self._m_searches.inc(embeddings.shape[0])
        return self._run_search(index, embeddings, k, nprobe, rerank)

    # -- maintenance -------------------------------------------------------

    def swap_index(self, index: Index,
                   model_key: Optional[Tuple[str, int]] = None) -> Index:
        """Install a rebuilt index; returns the replaced one.

        ``model_key`` pins the new index to a specific published version;
        omit it to re-bind on the next ``add()``.
        """
        if not isinstance(index, _INDEX_TYPES):
            raise TypeError(
                f"index must be a BinaryIndex, PQIndex, or IVFIndex, got "
                f"{type(index).__name__}"
            )
        with self._lock:
            previous = self._index
            self._index = index
            self._model_key = (tuple(model_key) if model_key is not None
                               else None)
            return previous
