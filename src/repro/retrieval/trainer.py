"""Contrastive codebook training with a code-memory queue (MeCoQ-style).

:class:`VQTrainer` plugs the EMA quantizers into the repo's unified
:class:`repro.contrastive.TrainerBase` contract: each ``train_step``
takes the usual two augmented views, runs one EMA codebook update on
view 1, and scores an InfoNCE loss where the *quantized reconstruction*
of view 1 is the positive for view 2 — so the codebook is pulled toward
assignments that survive the contrastive task, the MeCoQ objective.
Negatives are the other in-batch reconstructions plus the contents of a
:class:`repro.retrieval.CodeMemory` FIFO of reconstructions from earlier
steps, decoupling the negative count from the batch size.

Determinism: the only randomness is dead-code restart inside the EMA
update, drawn from ``derive_rng(seed, 3, global_step)`` — a pure
function of the seed and the step counter, both checkpointed by
``TrainerBase`` — so ``fit(resume_from=...)`` is bit-exact with an
uninterrupted run (pinned by ``tests/retrieval/test_vq.py``).
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from ..contrastive.base import TrainerBase
from ..nn.module import Module
from ..nn.rng import derive_rng
from .vq import CodeMemory, ProductQuantizer, VectorQuantizer

__all__ = ["VQTrainer", "l2_normalize"]


def l2_normalize(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Row-wise L2 normalization with a zero-vector guard."""
    x = np.asarray(x, dtype=np.float64)
    norms = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norms, eps)


class _VQModel(Module):
    """Container so quantizer + code memory checkpoint as one tree."""

    def __init__(self, quantizer: Module, memory: CodeMemory) -> None:
        super().__init__()
        self.quantizer = quantizer
        self.memory = memory

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.quantizer(x)


class VQTrainer(TrainerBase):
    """Contrastive EMA-codebook trainer with a code-memory queue.

    Parameters
    ----------
    quantizer:
        A :class:`VectorQuantizer` or :class:`ProductQuantizer` whose
        codebooks the trainer updates in place.
    memory_size:
        Capacity of the code-memory negative queue (0 disables it).
    temperature:
        InfoNCE softmax temperature.
    seed:
        Root seed for the dead-code-restart RNG stream.
    """

    def __init__(
        self,
        quantizer: Union[VectorQuantizer, ProductQuantizer],
        *,
        memory_size: int = 1024,
        temperature: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not isinstance(quantizer, (VectorQuantizer, ProductQuantizer)):
            raise TypeError(
                f"quantizer must be a VectorQuantizer or ProductQuantizer, "
                f"got {type(quantizer).__name__}"
            )
        if memory_size < 0:
            raise ValueError(
                f"memory_size must be >= 0, got {memory_size}"
            )
        if temperature <= 0.0:
            raise ValueError(
                f"temperature must be > 0, got {temperature}"
            )
        if seed < 0:
            raise ValueError(f"seed must be >= 0, got {seed}")
        self.quantizer = quantizer
        # A capacity-1 never-pushed memory stands in for "disabled" so the
        # checkpoint tree shape does not depend on the setting.
        self.memory = CodeMemory(max(memory_size, 1), quantizer.dim)
        self.memory_size = int(memory_size)
        self.model = _VQModel(quantizer, self.memory)
        self.temperature = float(temperature)
        self.seed = int(seed)
        self._init_telemetry()

    # -- TrainerBase hooks -------------------------------------------------
    def _training_module(self) -> Module:
        return self.model

    def _aux_state(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "temperature": self.temperature,
            "memory_size": self.memory_size,
        }

    def _load_aux_state(self, aux: Dict[str, object]) -> None:
        if "seed" in aux:
            self.seed = int(aux["seed"])
        if "temperature" in aux:
            self.temperature = float(aux["temperature"])
        if "memory_size" in aux:
            self.memory_size = int(aux["memory_size"])

    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        """One EMA codebook update + InfoNCE against reconstructions."""
        x1 = l2_normalize(view1)
        x2 = l2_normalize(view2)
        if x1.shape != x2.shape:
            raise ValueError(
                f"view shapes differ: {x1.shape} vs {x2.shape}"
            )
        # Restart randomness is a pure function of (seed, step): resume-
        # safe because TrainerBase checkpoints the step counter.
        step_rng = derive_rng(self.seed, 3, self._global_step)
        self.quantizer.update(x1, rng=step_rng)
        recon = l2_normalize(self.quantizer(x1))

        negatives = (self.memory.negatives()
                     if self.memory_size > 0 and len(self.memory) > 0
                     else np.zeros((0, x1.shape[1])))
        candidates = np.concatenate([recon, negatives], axis=0)
        logits = (x2 @ candidates.T) / self.temperature
        # InfoNCE: row i's positive is its own quantized view-1.
        row_max = logits.max(axis=1, keepdims=True)
        log_denom = (np.log(np.exp(logits - row_max).sum(axis=1))
                     + row_max[:, 0])
        positives = np.diagonal(logits[:, :x1.shape[0]])
        loss = float(np.mean(log_denom - positives))

        if self.memory_size > 0:
            self.memory.push(recon)
        return loss
