"""Quantized-embedding retrieval: binary/PQ indexes, training, serving.

The production workload for the paper's contrastive-quant embeddings
(ROADMAP open item 1): million-item similarity search over compressed
codes.  Two compression families, one deterministic ranking contract:

- **Binary** — per-coordinate thresholds → packed ``uint64`` words →
  popcount Hamming search (:class:`BinaryQuantizer`,
  :class:`BinaryIndex`; PAPERS.md covariance-structure analysis).
- **Learned codebooks** — EMA :class:`VectorQuantizer` /
  :class:`ProductQuantizer` with dead-code restart, trained
  contrastively with a :class:`CodeMemory` queue (:class:`VQTrainer`,
  MeCoQ) and searched via ADC lookup tables (:class:`PQIndex`).

Either family scales past exhaustive scans through the IVF layer
(:class:`IVFIndex`): coarse cells from a :class:`VectorQuantizer`,
``nprobe``-bounded probing, residual PQ or raw binary cell codes, and an
optional exact rerank stage over a retained :class:`FloatStore`
(``rerank_exact``), which every index exposes via ``store_embeddings``.

Every index ranks by ascending ``(distance, id)`` and the float oracle
:func:`exact_search` by descending ``(similarity, ascending id)``, so
:func:`recall_at_k` / :func:`mean_average_precision` comparisons are
reproducible bit for bit.  :class:`RetrievalService` runs the whole
embed → quantize → search path on :mod:`repro.serving`'s registry and
micro-batching, refusing cross-model-version queries with
:class:`StaleIndexError`.
"""

from .binary import (
    BinaryIndex,
    BinaryQuantizer,
    hamming_dtype,
    pack_bits,
    packed_hamming,
    packed_words,
    unpack_bits,
)
from .ivf import IVFIndex
from .metrics import exact_search, mean_average_precision, recall_at_k
from .pq import PQIndex
from .ranking import merge_topk, rowwise_topk, topk_largest, topk_smallest
from .rerank import FloatStore, rerank_exact
from .service import RetrievalService, StaleIndexError
from .trainer import VQTrainer, l2_normalize
from .vq import CodeMemory, ProductQuantizer, VectorQuantizer

__all__ = [
    "BinaryIndex",
    "BinaryQuantizer",
    "CodeMemory",
    "FloatStore",
    "IVFIndex",
    "PQIndex",
    "ProductQuantizer",
    "RetrievalService",
    "StaleIndexError",
    "VQTrainer",
    "VectorQuantizer",
    "exact_search",
    "hamming_dtype",
    "l2_normalize",
    "mean_average_precision",
    "merge_topk",
    "pack_bits",
    "packed_hamming",
    "packed_words",
    "recall_at_k",
    "rerank_exact",
    "rowwise_topk",
    "topk_largest",
    "topk_smallest",
    "unpack_bits",
]
