"""Binary quantization of embeddings + popcount Hamming search.

The binary half of the retrieval workload: an L2-normalized embedding is
reduced to one bit per coordinate (``x[j] > threshold[j]``), the bits are
packed little-endian into ``uint64`` words, and nearest neighbours are
ranked by Hamming distance computed as the popcount of XORed words.
Per-coordinate *median* thresholds (``BinaryQuantizer.fit_median``)
balance the bit marginals, which is what PAPERS.md's covariance-structure
analysis of binary-quantized contrastive embeddings prescribes; plain
sign thresholds (``BinaryQuantizer.sign``) are the zero-centred baseline.

Packing layout: bit ``j`` of an embedding lands in word ``j // 64`` at
bit position ``j % 64`` (little-endian within the word), so
``Hamming(a, b) == popcount(pack(a) ^ pack(b))`` exactly, padding bits
are zero for both sides, and round trips are the identity — the
hypothesis suite in ``tests/retrieval`` pins all three properties.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from .ranking import topk_smallest
from .rerank import FloatStore, rerank_exact

__all__ = [
    "BinaryQuantizer",
    "BinaryIndex",
    "hamming_dtype",
    "pack_bits",
    "unpack_bits",
    "packed_hamming",
    "packed_words",
]

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
# 8-bit lookup-table popcount for numpy < 2.0; always defined so tests
# can force the fallback path on any numpy.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                      dtype=np.uint8)


def packed_words(dim: int) -> int:
    """Number of ``uint64`` words needed for ``dim`` bits."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    return (int(dim) + 63) // 64


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(N, D)`` bit matrix into ``(N, ceil(D/64))`` uint64 words.

    Accepts bool or 0/1 integer input.  Bit ``j`` occupies word
    ``j // 64``, position ``j % 64``; padding bits beyond ``D`` are zero.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"expected (N, D) bits, got shape {bits.shape}")
    n, dim = bits.shape
    words = packed_words(dim)
    as_bytes = np.packbits(bits.astype(np.uint8, copy=False), axis=1,
                           bitorder="little")
    padded = np.zeros((n, words * 8), dtype=np.uint8)
    padded[:, :as_bytes.shape[1]] = as_bytes
    return padded.view(np.dtype("<u8"))


def unpack_bits(codes: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(N, W)`` words back to ``(N, dim)`` bools."""
    codes = np.ascontiguousarray(codes, dtype=np.uint64)
    if codes.ndim != 2:
        raise ValueError(f"expected (N, W) codes, got shape {codes.shape}")
    if codes.shape[1] != packed_words(dim):
        raise ValueError(
            f"codes carry {codes.shape[1]} words but dim {dim} needs "
            f"{packed_words(dim)}"
        )
    as_bytes = codes.astype(np.dtype("<u8"), copy=False).view(np.uint8)
    bits = np.unpackbits(as_bytes.reshape(codes.shape[0], -1), axis=1,
                         bitorder="little")
    return bits[:, :dim].astype(bool)


def hamming_dtype(words: int) -> np.dtype:
    """Distance dtype for codes of ``words`` uint64 words.

    uint16 holds any distance up to 1023 words (65472 bits); the 4x
    narrower distance matrix is what makes the million-item scan beat
    the float baseline on memory bandwidth.  Both popcount paths emit
    this dtype, so results are byte-identical across numpy versions.
    """
    return np.dtype(np.uint16) if words * 64 <= np.iinfo(np.uint16).max \
        else np.dtype(np.int64)


def packed_hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamming distance between packed codes, summed over the word axis.

    Broadcasts over leading axes: ``packed_hamming(q[:, None], codes)``
    yields the full ``(Q, N)`` distance matrix in one shot.
    """
    x = np.bitwise_xor(np.asarray(a, dtype=np.uint64),
                       np.asarray(b, dtype=np.uint64))
    dtype = hamming_dtype(x.shape[-1])
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(x).sum(axis=-1, dtype=dtype)
    as_bytes = np.ascontiguousarray(x).view(np.uint8)
    return _POPCOUNT8[as_bytes].reshape(x.shape[:-1] + (-1,)).sum(
        axis=-1, dtype=dtype
    )


class BinaryQuantizer:
    """Per-coordinate threshold binarizer producing packed uint64 codes."""

    def __init__(self, thresholds: np.ndarray) -> None:
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.ndim != 1 or thresholds.size < 1:
            raise ValueError(
                f"thresholds must be a non-empty 1-D array, got shape "
                f"{thresholds.shape}"
            )
        self.thresholds = thresholds

    @property
    def dim(self) -> int:
        return int(self.thresholds.size)

    @property
    def words(self) -> int:
        return packed_words(self.dim)

    @classmethod
    def sign(cls, dim: int) -> "BinaryQuantizer":
        """Zero thresholds: the sign binarizer for centred embeddings."""
        return cls(np.zeros(int(dim), dtype=np.float64))

    @classmethod
    def fit_median(cls, embeddings: np.ndarray) -> "BinaryQuantizer":
        """Per-coordinate median thresholds fit on a calibration sample.

        Medians balance each bit's marginal (half the corpus on either
        side), maximising per-bit entropy under coordinate heterogeneity.
        """
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2 or embeddings.shape[0] < 1:
            raise ValueError(
                f"expected a non-empty (N, D) sample, got shape "
                f"{embeddings.shape}"
            )
        return cls(np.median(embeddings, axis=0))

    def _check_dim(self, x: np.ndarray, what: str) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(
                f"{what} must have shape (N, {self.dim}), got {x.shape}"
            )
        return x

    def binarize(self, x: np.ndarray) -> np.ndarray:
        """``(N, dim)`` embeddings to a boolean bit matrix (no packing)."""
        return self._check_dim(x, "embeddings") > self.thresholds

    def encode(self, x: np.ndarray) -> np.ndarray:
        """``(N, dim)`` embeddings to ``(N, words)`` packed uint64 codes."""
        return pack_bits(self.binarize(x))


class BinaryIndex:
    """Packed-code Hamming index with batched top-k and incremental add.

    Item ids are assignment order (0, 1, 2, ...).  Results are ranked by
    ascending ``(Hamming distance, id)`` — fully deterministic, matching
    the brute-force ``np.unpackbits`` oracle bit for bit.  ``add()`` is
    thread-safe (amortised-growth storage behind a lock); ``search``
    snapshots the current size, so concurrent adds never tear a query.

    With ``store_embeddings=True`` the index also retains float32 rows
    and ``search(..., rerank=R)`` re-scores the top-``R`` Hamming
    shortlist with exact squared-L2 distances before returning top-k.
    """

    def __init__(self, quantizer: BinaryQuantizer,
                 query_block: int = 32, *,
                 store_embeddings: bool = False) -> None:
        if not isinstance(quantizer, BinaryQuantizer):
            raise TypeError(
                f"quantizer must be a BinaryQuantizer, got "
                f"{type(quantizer).__name__}"
            )
        if query_block < 1:
            raise ValueError(f"query_block must be >= 1, got {query_block}")
        self.quantizer = quantizer
        self.query_block = int(query_block)
        self._lock = threading.Lock()
        self._codes = np.zeros((0, quantizer.words), dtype=np.uint64)
        self._size = 0
        self._store = FloatStore(quantizer.dim) if store_embeddings \
            else None

    @property
    def store(self) -> Optional[FloatStore]:
        """The float32 rerank store, or None when not retained."""
        return self._store

    @property
    def dim(self) -> int:
        return self.quantizer.dim

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def codes(self) -> np.ndarray:
        """Copy of the packed codes currently stored (in id order)."""
        # Lock pairs _codes with _size: a concurrent add_codes could
        # otherwise publish a new size against the old storage.
        with self._lock:
            return self._codes[:self._size].copy()

    def _grow_to(self, size: int) -> None:
        if size <= self._codes.shape[0]:
            return
        capacity = max(1024, self._codes.shape[0] * 2, size)
        grown = np.zeros((capacity, self.quantizer.words), dtype=np.uint64)
        grown[:self._size] = self._codes[:self._size]
        self._codes = grown

    def add(self, embeddings: np.ndarray) -> np.ndarray:
        """Encode and store embeddings; returns their assigned ids."""
        embeddings = np.asarray(embeddings)
        codes = self.quantizer.encode(embeddings)
        codes = self._check_codes(codes)
        with self._lock:
            ids = self._append_locked(codes)
            if self._store is not None:
                # Under the index lock so code ids and float rows can
                # never interleave across concurrent add() calls.
                self._store.append(embeddings.astype(np.float32,
                                                     copy=False))
        return ids

    def add_codes(self, codes: np.ndarray) -> np.ndarray:
        """Store pre-packed codes; returns their assigned ids."""
        if self._store is not None:
            raise ValueError(
                "add_codes() carries no float rows; an index built with "
                "store_embeddings=True must add() raw embeddings"
            )
        codes = self._check_codes(codes)
        with self._lock:
            return self._append_locked(codes)

    def _check_codes(self, codes: np.ndarray) -> np.ndarray:
        codes = np.ascontiguousarray(codes, dtype=np.uint64)
        if codes.ndim != 2 or codes.shape[1] != self.quantizer.words:
            raise ValueError(
                f"codes must have shape (N, {self.quantizer.words}), got "
                f"{codes.shape}"
            )
        return codes

    def _append_locked(self, codes: np.ndarray) -> np.ndarray:
        start = self._size
        self._grow_to(start + codes.shape[0])
        self._codes[start:start + codes.shape[0]] = codes
        self._size += codes.shape[0]
        return np.arange(start, self._size, dtype=np.int64)

    def search(self, queries: np.ndarray, k: int = 10, *,
               rerank: Optional[int] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k by Hamming distance for ``(Q, dim)`` float queries.

        Returns ``(ids, distances)``, both ``(Q, min(k, len(self)))``.
        ``rerank=R`` re-scores the top-``R`` Hamming shortlist with
        exact squared-L2 distances against the float store (requires
        ``store_embeddings=True``); distances are then float32, not
        Hamming counts.
        """
        ids, dists, _ = self._search(queries, k, rerank)
        return ids, dists

    def search_stats(self, queries: np.ndarray, k: int = 10, *,
                     rerank: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray, Dict[str, float]]:
        """Like :meth:`search`, plus scan/rerank timing + shortlist stats."""
        return self._search(queries, k, rerank)

    def _search(self, queries: np.ndarray, k: int,
                rerank: Optional[int]
                ) -> Tuple[np.ndarray, np.ndarray, Dict[str, float]]:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries must have shape (Q, {self.dim}), got "
                f"{queries.shape}"
            )
        if rerank is not None:
            rerank = int(rerank)
            if rerank < k:
                raise ValueError(
                    f"rerank shortlist must be >= k, got rerank={rerank} "
                    f"< k={k}"
                )
            if self._store is None:
                raise ValueError(
                    "rerank requires an index built with "
                    "store_embeddings=True"
                )
        shortlist_k = rerank if rerank is not None else k
        started = time.perf_counter()
        scan_ids, scan_dists = self.search_codes(
            self.quantizer.encode(queries), shortlist_k)
        stats: Dict[str, float] = {
            "scan_s": time.perf_counter() - started,
            "rerank_s": 0.0,
            "shortlist": float(scan_ids.shape[1]),
        }
        if rerank is None:
            return scan_ids, scan_dists, stats
        started = time.perf_counter()
        ids, dists = rerank_exact(self._store, queries, scan_ids, k,
                                  metric="l2",
                                  query_block=self.query_block)
        stats["rerank_s"] = time.perf_counter() - started
        return ids, dists, stats

    def search_codes(self, queries: np.ndarray,
                     k: int = 10) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k for already-packed ``(Q, words)`` query codes."""
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        if queries.ndim != 2 or queries.shape[1] != self.quantizer.words:
            raise ValueError(
                f"query codes must have shape (Q, {self.quantizer.words}), "
                f"got {queries.shape}"
            )
        with self._lock:
            size = self._size
            codes = self._codes  # snapshot reference; rows < size are frozen
        if size == 0:
            raise ValueError(
                "search on an empty BinaryIndex; add() items first"
            )
        stored = codes[:size]
        id_blocks = []
        dist_blocks = []
        rows = min(self.query_block, queries.shape[0])
        words = self.quantizer.words
        # Scratch buffers reused across query blocks on *both* popcount
        # paths: at a million items the XOR intermediate alone is tens
        # of MB, and fresh page-faulted allocations per block would
        # dominate the scan.  Distances are hamming_dtype(words) —
        # uint16 up to 65472 bits — regardless of path.
        xor_buf = np.empty((rows, size, words), dtype=np.uint64)
        dist_buf = np.empty((rows, size), dtype=hamming_dtype(words))
        if _HAS_BITWISE_COUNT:
            cnt_buf = np.empty((rows, size, words), dtype=np.uint8)
        else:  # 8-bit LUT fallback: popcount via byte-table gather
            byte_view = xor_buf.view(np.uint8)
            cnt_buf = np.empty((rows, size, words * 8), dtype=np.uint8)
        for start in range(0, queries.shape[0], self.query_block):
            block = queries[start:start + self.query_block]
            b = block.shape[0]
            np.bitwise_xor(block[:, None, :], stored[None, :, :],
                           out=xor_buf[:b])
            if _HAS_BITWISE_COUNT:
                np.bitwise_count(xor_buf[:b], out=cnt_buf[:b])
            else:
                np.take(_POPCOUNT8, byte_view[:b], out=cnt_buf[:b],
                        mode="clip")
            dists = np.sum(cnt_buf[:b], axis=-1, out=dist_buf[:b])
            ids, top = topk_smallest(dists, k)
            id_blocks.append(ids)
            dist_blocks.append(top)
        return np.concatenate(id_blocks), np.concatenate(dist_blocks)
