"""Exact reranking of quantized shortlists over an optional float store.

The operating point that makes coarse codes usable at scale (PAPERS.md's
binary-quantization analysis): the quantized scan is a *candidate
generator* — fetch the top ``R`` items by Hamming/ADC distance, then
re-score exactly against retained float32 rows and return the true
top-k.  Recall@k after reranking is monotone non-decreasing in ``R``:
an oracle-top-k item in the shortlist can only be displaced by globally
closer items, of which there are fewer than ``k`` by definition.

:class:`FloatStore` is the higher-precision side store an index keeps
when constructed with ``store_embeddings=True`` — append-only float32
rows in id order, thread-safe under the same snapshot discipline as the
code arrays (rows below the published size are frozen, so concurrent
``add()`` never tears a rerank).
"""

from __future__ import annotations

import threading
from typing import Tuple

import numpy as np

from .ranking import rowwise_topk

__all__ = ["FloatStore", "rerank_exact"]

_METRICS = ("l2", "ip")


class FloatStore:
    """Append-only float32 row store keyed by assignment-order ids."""

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._dim = int(dim)
        self._lock = threading.Lock()
        self._rows = np.zeros((0, dim), dtype=np.float32)
        self._size = 0

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def append(self, embeddings: np.ndarray) -> np.ndarray:
        """Store rows; returns their assigned ids (append order)."""
        embeddings = np.asarray(embeddings, dtype=np.float32)
        if embeddings.ndim != 2 or embeddings.shape[1] != self._dim:
            raise ValueError(
                f"embeddings must have shape (N, {self._dim}), got "
                f"{embeddings.shape}"
            )
        with self._lock:
            start = self._size
            needed = start + embeddings.shape[0]
            if needed > self._rows.shape[0]:
                capacity = max(1024, self._rows.shape[0] * 2, needed)
                grown = np.zeros((capacity, self._dim), dtype=np.float32)
                grown[:start] = self._rows[:start]
                self._rows = grown
            self._rows[start:needed] = embeddings
            self._size = needed
            return np.arange(start, needed, dtype=np.int64)

    def snapshot(self) -> Tuple[np.ndarray, int]:
        """``(rows, size)`` — rows below ``size`` are frozen forever."""
        with self._lock:
            return self._rows, self._size

    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Float32 rows at ``ids`` (any shape; appended leading axes kept)."""
        ids = np.asarray(ids, dtype=np.int64)
        rows, size = self.snapshot()
        if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= size):
            raise ValueError(
                f"ids must be in [0, {size}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        return rows[ids]


def rerank_exact(store: FloatStore, queries: np.ndarray,
                 shortlist_ids: np.ndarray, k: int, *,
                 metric: str = "l2",
                 query_block: int = 32) -> Tuple[np.ndarray, np.ndarray]:
    """Exact top-k over a quantized shortlist, ascending ``(distance, id)``.

    ``queries`` are ``(Q, dim)`` floats, ``shortlist_ids`` the scan's
    ``(Q, R)`` candidates.  Distances are the true metric on the stored
    float32 rows — squared L2 for ``"l2"``, negated inner product for
    ``"ip"`` — so reranked results are directly comparable to the float
    oracle (identical on unit-norm data when ``R`` covers the corpus).
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    queries = np.asarray(queries, dtype=np.float32)
    shortlist_ids = np.asarray(shortlist_ids, dtype=np.int64)
    if queries.ndim != 2 or queries.shape[1] != store.dim:
        raise ValueError(
            f"queries must have shape (Q, {store.dim}), got {queries.shape}"
        )
    if shortlist_ids.ndim != 2 or shortlist_ids.shape[0] != queries.shape[0]:
        raise ValueError(
            f"shortlist must have shape ({queries.shape[0]}, R), got "
            f"{shortlist_ids.shape}"
        )
    out_ids = np.empty((queries.shape[0], min(k, shortlist_ids.shape[1])),
                       dtype=np.int64)
    out_dists = np.empty(out_ids.shape, dtype=np.float32)
    # Blocked over queries: the (block, R, dim) gather is the only
    # intermediate, so peak memory never depends on the query count.
    for start in range(0, queries.shape[0], query_block):
        block_ids = shortlist_ids[start:start + query_block]
        block_q = queries[start:start + query_block]
        vectors = store.gather(block_ids)  # (b, R, dim) float32
        if metric == "l2":
            delta = vectors - block_q[:, None, :]
            dists = np.einsum("qrd,qrd->qr", delta, delta)
        else:
            dists = -np.einsum("qrd,qd->qr", vectors, block_q)
        ids, top = rowwise_topk(block_ids, dists, k)
        out_ids[start:start + query_block] = ids
        out_dists[start:start + query_block] = top
    return out_ids, out_dists
