"""IVF-partitioned retrieval: coarse cells, ``nprobe`` search, rerank.

An :class:`IVFIndex` splits the corpus into ``num_cells`` Voronoi cells
of a coarse :class:`~repro.retrieval.VectorQuantizer` (trained with the
same EMA k-means / ``derive_rng`` machinery as every codebook in this
package) and stores each cell's items in contiguous per-list arrays.  A
query ranks cells by coarse distance and scans only the ``nprobe``
nearest — the classic inverted-file trade: recall degrades gracefully
with ``nprobe`` while scanned-item count (and therefore latency) drops
by roughly ``nprobe / num_cells``.

Two encoders are supported:

- :class:`~repro.retrieval.ProductQuantizer` — **residual** PQ codes
  (the encoder quantizes ``x - centroid[cell]``, which has far lower
  variance than ``x`` itself).  ADC distances decompose as::

      d(q, x) = ||q - c||^2                       (coarse term)
              + sum_m  -2 <q_m, e_m>              (per-query tables)
              + sum_m  2 <c_m, e_m> + ||e_m||^2   (per-item bias)

  The bias is precomputed float32 at ``add()`` time, so a scan is one
  table gather per subspace plus one add — the per-query tables do not
  depend on the cell.
- :class:`~repro.retrieval.BinaryQuantizer` — raw packed sign codes and
  integer Hamming scans.  Because the distances ignore the partition,
  ``nprobe=num_cells`` returns results **id-for-id identical** to an
  exhaustive :class:`~repro.retrieval.BinaryIndex` over the same data.

Every result is ranked by the package-wide ascending ``(distance, id)``
contract.  With ``store_embeddings=True`` the index retains float32 rows
and ``search(..., rerank=R)`` re-scores the top-``R`` shortlist exactly.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..nn.rng import derive_rng
from .binary import BinaryQuantizer, hamming_dtype, packed_hamming
from .rerank import FloatStore, rerank_exact
from .vq import ProductQuantizer, VectorQuantizer

__all__ = ["IVFIndex"]

_METRICS = ("l2", "ip")

# Cap on candidate rows per batched distance pass: bounds the (rows, M)
# gather scratch even when nprobe=num_cells scans the whole corpus.
_SCAN_ROW_BUDGET = 1 << 19

Encoder = Union[ProductQuantizer, BinaryQuantizer]


def _segment_topk(dists: np.ndarray, ids: np.ndarray,
                  needed: int) -> np.ndarray:
    """Indices of the ``needed`` smallest ``(distance, id)`` pairs.

    ``argpartition`` isolates the k-th smallest distance, then only the
    (usually tiny) tie region is ranked exactly — much cheaper than a
    full lexsort of the segment, with identical results.
    """
    if dists.shape[0] <= needed:
        return np.lexsort((ids, dists))
    part = np.argpartition(dists, needed - 1)[:needed]
    threshold = dists[part].max()
    cand = np.flatnonzero(dists <= threshold)
    return cand[np.lexsort((ids[cand], dists[cand]))[:needed]]


def _assign_cells(centroids: np.ndarray, x: np.ndarray,
                  row_block: int = 8192) -> np.ndarray:
    """Nearest-centroid ids, float32 blocked (build-speed hot path).

    Squared-L2 argmin up to the query norm; ties pick the lowest cell id
    (``np.argmin`` returns the first minimum).
    """
    cb = centroids.astype(np.float32)
    norms = np.sum(cb.astype(np.float64) ** 2, axis=1).astype(np.float32)
    out = np.empty(x.shape[0], dtype=np.int64)
    scores = np.empty((min(row_block, x.shape[0]), cb.shape[0]),
                      dtype=np.float32)
    x32 = x.astype(np.float32, copy=False)
    for start in range(0, x.shape[0], row_block):
        block = x32[start:start + row_block]
        view = scores[:block.shape[0]]
        np.matmul(block, cb.T, out=view)
        view *= -2.0
        view += norms
        out[start:start + row_block] = np.argmin(view, axis=1)
    return out


class _CellList:
    """One inverted list: contiguous codes/ids (+ ADC bias) arrays.

    Append-only with amortized doubling; rows below the published
    ``size`` are frozen, so a search that snapshot-reads ``(arrays,
    size)`` under the index lock can scan without holding it.
    """

    __slots__ = ("codes", "ids", "bias", "size")

    def __init__(self, code_width: int, code_dtype: np.dtype,
                 with_bias: bool) -> None:
        self.codes = np.zeros((0, code_width), dtype=code_dtype)
        self.ids = np.zeros(0, dtype=np.int64)
        self.bias = np.zeros(0, dtype=np.float32) if with_bias else None
        self.size = 0

    def append(self, codes: np.ndarray, ids: np.ndarray,
               bias: Optional[np.ndarray]) -> None:
        needed = self.size + codes.shape[0]
        if needed > self.codes.shape[0]:
            capacity = max(64, self.codes.shape[0] * 2, needed)
            grown = np.zeros((capacity,) + self.codes.shape[1:],
                             dtype=self.codes.dtype)
            grown[:self.size] = self.codes[:self.size]
            self.codes = grown
            grown_ids = np.zeros(capacity, dtype=np.int64)
            grown_ids[:self.size] = self.ids[:self.size]
            self.ids = grown_ids
            if self.bias is not None:
                grown_bias = np.zeros(capacity, dtype=np.float32)
                grown_bias[:self.size] = self.bias[:self.size]
                self.bias = grown_bias
        self.codes[self.size:needed] = codes
        self.ids[self.size:needed] = ids
        if self.bias is not None:
            self.bias[self.size:needed] = bias
        self.size = needed


class IVFIndex:
    """Inverted-file index over a coarse quantizer with PQ/binary cells.

    Item ids are global assignment order (across cells).  ``add()`` is
    thread-safe; ``search`` snapshots each cell's ``(arrays, size)``
    under the lock, so concurrent adds never tear a query.

    Parameters
    ----------
    coarse:
        Trained :class:`VectorQuantizer` whose codes are the cells.
    encoder:
        :class:`ProductQuantizer` (residual ADC cells) or
        :class:`BinaryQuantizer` (raw Hamming cells).
    metric:
        ``"l2"`` or ``"ip"`` for PQ cells; binary cells rank by Hamming
        distance and require ``"l2"`` (also used by the rerank stage).
    nprobe:
        Default number of cells scanned per query; override per call.
        Probing automatically widens past ``nprobe`` when the visited
        cells hold fewer candidates than requested, so result width is
        always ``min(k, len(index))``.
    """

    def __init__(self, coarse: VectorQuantizer, encoder: Encoder, *,
                 metric: str = "l2", nprobe: int = 8,
                 query_block: int = 32,
                 store_embeddings: bool = False) -> None:
        if not isinstance(coarse, VectorQuantizer):
            raise TypeError(
                f"coarse must be a VectorQuantizer, got "
                f"{type(coarse).__name__}"
            )
        if not isinstance(encoder, (ProductQuantizer, BinaryQuantizer)):
            raise TypeError(
                f"encoder must be a ProductQuantizer or BinaryQuantizer, "
                f"got {type(encoder).__name__}"
            )
        if encoder.dim != coarse.dim:
            raise ValueError(
                f"encoder dim {encoder.dim} != coarse dim {coarse.dim}"
            )
        if metric not in _METRICS:
            raise ValueError(
                f"metric must be one of {_METRICS}, got {metric!r}"
            )
        self._binary = isinstance(encoder, BinaryQuantizer)
        if self._binary and metric != "l2":
            raise ValueError(
                "binary cells rank by Hamming distance; only metric='l2' "
                "is supported (it also drives the rerank stage)"
            )
        if not 1 <= nprobe <= coarse.num_codes:
            raise ValueError(
                f"nprobe must be in [1, {coarse.num_codes}], got {nprobe}"
            )
        if query_block < 1:
            raise ValueError(f"query_block must be >= 1, got {query_block}")
        self.coarse = coarse
        self.encoder = encoder
        self.metric = metric
        self.nprobe = int(nprobe)
        self.query_block = int(query_block)
        if self._binary:
            width, dtype = encoder.words, np.dtype(np.uint64)
        else:
            width, dtype = encoder.num_subspaces, encoder.code_dtype
        self._lock = threading.Lock()
        self._cells: List[_CellList] = [
            _CellList(width, dtype, with_bias=not self._binary)
            for _ in range(coarse.num_codes)
        ]
        self._size = 0
        self._store = FloatStore(coarse.dim) if store_embeddings else None

    # -- construction -------------------------------------------------------

    @classmethod
    def fit(cls, embeddings: np.ndarray, *, num_cells: int,
            num_subspaces: int, num_codes: int = 256,
            metric: str = "l2", nprobe: int = 8, epochs: int = 5,
            batch_size: int = 1024, seed: int = 0, tol: float = 0.0,
            store_embeddings: bool = False) -> "IVFIndex":
        """Train coarse cells + residual PQ on a sample; returns an
        *empty* index (``add()`` the corpus afterwards).

        Deterministic: the coarse codebook derives from spawn key
        ``(seed, 10)`` and fits with ``seed``; the residual PQ derives
        from ``(seed, 11)`` and fits with ``seed + 1``.
        """
        embeddings = np.asarray(embeddings, dtype=np.float64)
        coarse = cls._fit_coarse(embeddings, num_cells, epochs, batch_size,
                                 seed, tol)
        cells = _assign_cells(coarse.codebook.data, embeddings)
        residuals = embeddings - coarse.codebook.data[cells].astype(
            np.float64)
        encoder = ProductQuantizer(embeddings.shape[1], num_subspaces,
                                   num_codes, rng=derive_rng(seed, 11))
        encoder.fit(residuals, epochs=epochs, batch_size=batch_size,
                    seed=seed + 1, tol=tol)
        return cls(coarse, encoder, metric=metric, nprobe=nprobe,
                   store_embeddings=store_embeddings)

    @classmethod
    def fit_binary(cls, embeddings: np.ndarray, *, num_cells: int,
                   nprobe: int = 8, epochs: int = 5,
                   batch_size: int = 1024, seed: int = 0, tol: float = 0.0,
                   store_embeddings: bool = False) -> "IVFIndex":
        """Train coarse cells + median-threshold binary codes; returns an
        *empty* index (``add()`` the corpus afterwards)."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        coarse = cls._fit_coarse(embeddings, num_cells, epochs, batch_size,
                                 seed, tol)
        encoder = BinaryQuantizer.fit_median(embeddings)
        return cls(coarse, encoder, nprobe=nprobe,
                   store_embeddings=store_embeddings)

    @staticmethod
    def _fit_coarse(embeddings: np.ndarray, num_cells: int, epochs: int,
                    batch_size: int, seed: int,
                    tol: float) -> VectorQuantizer:
        if embeddings.ndim != 2:
            raise ValueError(
                f"expected (N, dim) embeddings, got shape {embeddings.shape}"
            )
        coarse = VectorQuantizer(num_cells, embeddings.shape[1],
                                 rng=derive_rng(seed, 10))
        # Seed centroids from data rows: random off-manifold init makes
        # a few lucky centroids capture everything on clustered corpora,
        # and the EMA counts decay too slowly for dead-code restart to
        # rescue short fits.  Cell balance is what makes nprobe pay.
        n = embeddings.shape[0]
        picks = derive_rng(seed, 12).choice(n, size=num_cells,
                                            replace=n < num_cells)
        seeds = embeddings[picks]
        # Goes through the version-bumping Parameter.data setter, same
        # sanctioned path as the EMA update in vq.py.
        coarse.codebook.data = seeds.astype(np.float32)  # noqa: RPR002
        coarse.set_buffer("ema_sums", seeds.astype(np.float64))
        coarse.fit(embeddings, epochs=epochs, batch_size=batch_size,
                   seed=seed, tol=tol)
        return coarse

    # -- introspection ------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.coarse.dim

    @property
    def num_cells(self) -> int:
        return self.coarse.num_codes

    @property
    def store(self) -> Optional[FloatStore]:
        """The float32 rerank store, or None when not retained."""
        return self._store

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def cell_sizes(self) -> np.ndarray:
        """Items per cell, ``(num_cells,)`` — balance diagnostics."""
        with self._lock:
            return np.array([c.size for c in self._cells], dtype=np.int64)

    # -- indexing -----------------------------------------------------------

    def add(self, embeddings: np.ndarray) -> np.ndarray:
        """Encode and route embeddings to their cells; returns global ids."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2 or embeddings.shape[1] != self.dim:
            raise ValueError(
                f"embeddings must have shape (N, {self.dim}), got "
                f"{embeddings.shape}"
            )
        if embeddings.shape[0] == 0:
            raise ValueError("add() needs at least one embedding")
        cells = _assign_cells(self.coarse.codebook.data, embeddings)
        if self._binary:
            codes = self.encoder.encode(embeddings)
            bias = None
        else:
            centroids = self.coarse.codebook.data[cells].astype(np.float64)
            codes = self.encoder.encode(embeddings - centroids)
            bias = self._residual_bias(codes, centroids)
        order = np.argsort(cells, kind="stable")
        boundaries = np.flatnonzero(np.diff(cells[order])) + 1
        groups = np.split(order, boundaries)
        with self._lock:
            start = self._size
            ids = np.arange(start, start + embeddings.shape[0],
                            dtype=np.int64)
            for group in groups:
                cell = int(cells[group[0]])
                self._cells[cell].append(
                    codes[group], ids[group],
                    bias[group] if bias is not None else None)
            self._size = start + embeddings.shape[0]
            if self._store is not None:
                # Under the index lock so code ids and float rows can
                # never interleave across concurrent add() calls.
                self._store.append(embeddings.astype(np.float32))
        return ids

    def _residual_bias(self, codes: np.ndarray,
                       centroids: np.ndarray) -> np.ndarray:
        """Per-item ADC bias (float32): ``2 <c, e> + ||e||^2`` for L2.

        The inner-product decomposition ``-<q, c + e>`` has no
        query-independent item term, so the bias is zero there.
        """
        if self.metric == "ip":
            return np.zeros(codes.shape[0], dtype=np.float32)
        recon = self.encoder.decode(codes).astype(np.float64)
        bias = (2.0 * np.einsum("nd,nd->n", centroids, recon)
                + np.einsum("nd,nd->n", recon, recon))
        return bias.astype(np.float32)

    # -- search -------------------------------------------------------------

    def search(self, queries: np.ndarray, k: int = 10, *,
               nprobe: Optional[int] = None,
               rerank: Optional[int] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k over the ``nprobe`` nearest cells, ascending
        ``(distance, id)``.

        Returns ``(ids, distances)``, both ``(Q, min(k, len(self)))``.
        PQ cells yield float32 ADC distances (``"ip"``: negated inner
        products); binary cells yield integer Hamming distances.
        ``rerank=R`` re-scores the top-``R`` shortlist exactly against
        the float store (requires ``store_embeddings=True``).
        """
        ids, dists, _ = self._search(queries, k, nprobe, rerank)
        return ids, dists

    def search_stats(self, queries: np.ndarray, k: int = 10, *,
                     nprobe: Optional[int] = None,
                     rerank: Optional[int] = None
                     ) -> Tuple[np.ndarray, np.ndarray, Dict[str, float]]:
        """Like :meth:`search`, plus probe/timing/shortlist stats."""
        return self._search(queries, k, nprobe, rerank)

    def _check_search_args(self, queries: np.ndarray, k: int,
                           nprobe: Optional[int],
                           rerank: Optional[int]
                           ) -> Tuple[np.ndarray, int, Optional[int]]:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries must have shape (Q, {self.dim}), got "
                f"{queries.shape}"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        if not 1 <= nprobe <= self.num_cells:
            raise ValueError(
                f"nprobe must be in [1, {self.num_cells}], got {nprobe}"
            )
        if rerank is not None:
            rerank = int(rerank)
            if rerank < k:
                raise ValueError(
                    f"rerank shortlist must be >= k, got rerank={rerank} "
                    f"< k={k}"
                )
            if self._store is None:
                raise ValueError(
                    "rerank requires an index built with "
                    "store_embeddings=True"
                )
        return queries, nprobe, rerank

    def _coarse_distances(self, queries: np.ndarray) -> np.ndarray:
        """``(Q, num_cells)`` float32 coarse terms (squared L2 or -ip).

        Computed in float64 then cast, like the ADC tables, so probe
        order and the PQ coarse term never vary with blocking.
        """
        centroids = self.coarse.codebook.data.astype(np.float64)
        inner = queries @ centroids.T
        if self.metric == "l2":
            dists = (np.sum(queries ** 2, axis=1)[:, None]
                     - 2.0 * inner
                     + np.sum(centroids ** 2, axis=1)[None, :])
        else:
            dists = -inner
        return dists.astype(np.float32)

    def _adc_tables(self, queries: np.ndarray) -> np.ndarray:
        """``(Q, M * K)`` float32 residual tables ``-2 <q_m, e_mk>``
        (``"ip"``: ``-<q_m, e_mk>``), flattened so a scan can gather all
        subspaces at once via offset codes; cell-independent by
        construction."""
        enc = self.encoder
        tables = np.empty((enc.num_subspaces, queries.shape[0],
                           enc.num_codes), dtype=np.float32)
        scale = -2.0 if self.metric == "l2" else -1.0
        for m, sub in enumerate(enc.quantizers):
            part = queries[:, m * enc.subdim:(m + 1) * enc.subdim]
            codebook = sub.codebook.data.astype(np.float64)
            tables[m] = scale * (part @ codebook.T)
        return np.ascontiguousarray(tables.transpose(1, 0, 2)).reshape(
            queries.shape[0], -1)

    def _probe_order(self, coarse_row: np.ndarray) -> np.ndarray:
        """Cells by ascending ``(coarse distance, cell id)``."""
        return np.lexsort((np.arange(coarse_row.shape[0]), coarse_row))

    def _search(self, queries: np.ndarray, k: int,
                nprobe: Optional[int], rerank: Optional[int]
                ) -> Tuple[np.ndarray, np.ndarray, Dict[str, float]]:
        queries, nprobe, rerank = self._check_search_args(
            queries, k, nprobe, rerank)
        with self._lock:
            size = self._size
            # (codes, ids, bias, size) snapshots: rows < size are frozen.
            cells = [(c.codes, c.ids, c.bias, c.size) for c in self._cells]
        if size == 0:
            raise ValueError("search on an empty IVFIndex; add() items first")
        shortlist_k = rerank if rerank is not None else k
        needed = min(shortlist_k, size)

        started = time.perf_counter()
        coarse = self._coarse_distances(queries)
        if self._binary:
            query_codes = self.encoder.encode(queries)
            dist_dtype = hamming_dtype(self.encoder.words)
        else:
            dist_dtype = np.dtype(np.float32)

        out_ids = np.empty((queries.shape[0], needed), dtype=np.int64)
        out_dists = np.empty((queries.shape[0], needed), dtype=dist_dtype)
        cells_probed = 0
        if not self._binary:
            offsets = (np.arange(self.encoder.num_subspaces)
                       * self.encoder.num_codes).astype(np.int32)
            table_width = (self.encoder.num_subspaces
                           * self.encoder.num_codes)
        qb = self.query_block
        for qstart in range(0, queries.shape[0], qb):
            block = queries[qstart:qstart + qb]
            nq = block.shape[0]
            tables = None if self._binary else self._adc_tables(block)
            # Per-query probe selection stays a Python loop (it is tiny);
            # the distance math below batches every probed candidate in
            # the block into single vectorized passes.
            code_parts: List[np.ndarray] = []
            id_parts: List[np.ndarray] = []
            base_parts: List[np.ndarray] = []
            seg_lens = np.empty(nq, dtype=np.int64)
            part_counts = np.empty(nq, dtype=np.int64)
            for qi in range(nq):
                q = qstart + qi
                order = self._probe_order(coarse[q])
                total = 0
                parts_before = len(id_parts)
                for pos, cell in enumerate(order):
                    # Widen past nprobe until enough candidates exist so
                    # the result width is always min(k, len(index)).
                    if pos >= nprobe and total >= needed:
                        break
                    codes, ids, bias, cell_size = cells[cell]
                    cells_probed += 1
                    if cell_size == 0:
                        continue
                    code_parts.append(codes[:cell_size])
                    id_parts.append(ids[:cell_size])
                    if not self._binary:
                        base_parts.append(bias[:cell_size] + coarse[q, cell])
                    total += cell_size
                seg_lens[qi] = total
                part_counts[qi] = len(id_parts) - parts_before
            # Group queries so one batch never exceeds ~_SCAN_ROW_BUDGET
            # candidate rows: scratch stays bounded even at full probe,
            # and per-row arithmetic is grouping-invariant.
            part_bounds = np.cumsum(part_counts)
            group_edges = [0]
            rows_in_group = 0
            for qi in range(nq):
                if rows_in_group and (rows_in_group + seg_lens[qi]
                                      > _SCAN_ROW_BUDGET):
                    group_edges.append(qi)
                    rows_in_group = 0
                rows_in_group += seg_lens[qi]
            group_edges.append(nq)
            for q_lo, q_hi in zip(group_edges[:-1], group_edges[1:]):
                p_lo = 0 if q_lo == 0 else int(part_bounds[q_lo - 1])
                p_hi = int(part_bounds[q_hi - 1])
                cand_codes = np.concatenate(code_parts[p_lo:p_hi])
                cand_ids = np.concatenate(id_parts[p_lo:p_hi])
                lens = seg_lens[q_lo:q_hi]
                qid = np.repeat(np.arange(q_hi - q_lo, dtype=np.int32),
                                lens)
                if self._binary:
                    cand_dists = packed_hamming(
                        query_codes[qstart + q_lo + qid], cand_codes)
                else:
                    # Fixed arithmetic: float32 (bias + coarse term) plus
                    # an in-order float32 sum of the M gathered table
                    # entries, identical per row however queries are
                    # grouped or blocked.
                    flat = cand_codes.astype(np.int32)
                    flat += offsets
                    flat += ((q_lo + qid) * table_width)[:, None]
                    gathered = tables.reshape(-1)[flat]
                    cand_dists = np.concatenate(base_parts[p_lo:p_hi])
                    cand_dists += np.einsum("ij->i", gathered)
                seg_starts = np.cumsum(lens) - lens
                for gq in range(q_hi - q_lo):
                    s = int(seg_starts[gq])
                    e = s + int(lens[gq])
                    d_seg = cand_dists[s:e]
                    i_seg = cand_ids[s:e]
                    sel = _segment_topk(d_seg, i_seg, needed)
                    out_ids[qstart + q_lo + gq] = i_seg[sel]
                    out_dists[qstart + q_lo + gq] = d_seg[sel]
        scan_s = time.perf_counter() - started

        stats: Dict[str, float] = {
            "scan_s": scan_s,
            "rerank_s": 0.0,
            "shortlist": float(needed),
            "cells_probed": float(cells_probed),
        }
        if rerank is None:
            return out_ids, out_dists, stats
        started = time.perf_counter()
        ids, dists = rerank_exact(self._store,
                                  queries.astype(np.float32), out_ids, k,
                                  metric=self.metric,
                                  query_block=self.query_block)
        stats["rerank_s"] = time.perf_counter() - started
        return ids, dists, stats
