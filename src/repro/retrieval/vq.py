"""Learned codebooks: EMA vector quantization with dead-code restart.

The learned-codebook half of the retrieval workload (MeCoQ-style, see
PAPERS.md "Contrastive Quantization with Code Memory"):

- :class:`VectorQuantizer` — one codebook updated by exponential moving
  averages of assignment counts/sums (the ``EMAVectorQuantizer`` idiom
  from the Unseg reference repo), with *dead-code restart*: a code whose
  EMA usage decays below ``restart_threshold`` is re-seeded from a
  random batch vector so the codebook never strands capacity.  All
  randomness flows through an explicit ``rng`` argument, so training is
  reproducible under :func:`repro.nn.rng.derive_rng` seeding and
  checkpoint resume is bit-exact.
- :class:`ProductQuantizer` — ``num_subspaces`` independent codebooks
  over equal coordinate slices; ``encode`` yields compact per-subspace
  code ids, the operand of :class:`repro.retrieval.PQIndex`'s
  asymmetric-distance search.
- :class:`CodeMemory` — FIFO buffer of quantized reconstructions used as
  extra contrastive negatives by :class:`repro.retrieval.VQTrainer`,
  decoupling the negative count from the batch size (the "code memory"
  of MeCoQ; buffer-registered so it checkpoints with the trainer).

The codebook is a ``Parameter`` (``requires_grad=False``): EMA rewrites
go through the version-bumping ``Parameter.data`` setter (sanctioned for
this module under lint rule RPR002, like the BYOL/MoCo EMA updates), so
a quantizer published in a :class:`repro.serving.ModelRegistry` is
covered by fingerprint staleness detection.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.layers.container import ModuleList
from ..nn.module import Module, Parameter
from ..nn.rng import ensure_rng, derive_rng

__all__ = ["VectorQuantizer", "ProductQuantizer", "CodeMemory"]


def _smallest_code_dtype(num_codes: int) -> np.dtype:
    """Narrowest unsigned dtype that can hold code ids ``0..num_codes-1``."""
    if num_codes <= 2 ** 8:
        return np.dtype(np.uint8)
    if num_codes <= 2 ** 16:
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


def _check_fit_args(embeddings: np.ndarray, epochs: int, batch_size: int,
                    tol: float) -> None:
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if tol < 0.0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    if embeddings.shape[0] == 0:
        raise ValueError("cannot fit on an empty sample")


class VectorQuantizer(Module):
    """EMA-trained codebook of ``num_codes`` vectors of ``dim`` coordinates.

    ``forward``/``assign``/``decode`` are pure lookups; :meth:`update`
    performs one EMA step (and dead-code restarts) and is the only
    mutating entry point, taking an explicit ``rng`` so two runs fed the
    same batches and spawn keys produce byte-identical codebooks.
    """

    def __init__(
        self,
        num_codes: int,
        dim: int,
        *,
        decay: float = 0.99,
        eps: float = 1e-5,
        restart_threshold: float = 1e-2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_codes < 2:
            raise ValueError(f"num_codes must be >= 2, got {num_codes}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        if eps <= 0.0:
            raise ValueError(f"eps must be > 0, got {eps}")
        if restart_threshold < 0.0:
            raise ValueError(
                f"restart_threshold must be >= 0, got {restart_threshold}"
            )
        rng = ensure_rng(rng)
        self.decay = float(decay)
        self.eps = float(eps)
        self.restart_threshold = float(restart_threshold)
        codebook = rng.normal(size=(num_codes, dim)) / np.sqrt(dim)
        # float32 like every Parameter in the repo; EMA statistics stay
        # float64 so accumulation error does not depend on history length.
        self.codebook = Parameter(codebook.astype(np.float32),
                                  requires_grad=False)
        self.register_buffer("ema_counts",
                             np.ones(num_codes, dtype=np.float64))
        self.register_buffer("ema_sums", codebook.astype(np.float64))

    @property
    def num_codes(self) -> int:
        return int(self.codebook.data.shape[0])

    @property
    def dim(self) -> int:
        return int(self.codebook.data.shape[1])

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(
                f"expected embeddings of shape (N, {self.dim}), got "
                f"{x.shape}"
            )
        return x

    def assign(self, x: np.ndarray) -> np.ndarray:
        """Nearest code id per row (squared L2; ties pick the lowest id)."""
        x = self._check_input(x)
        codebook = self.codebook.data
        # ||x - c||^2 up to the query norm: argmin is unaffected.
        scores = (np.sum(codebook ** 2, axis=1)[None, :]
                  - 2.0 * (x @ codebook.T))
        return np.argmin(scores, axis=1).astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Code ids back to codebook vectors."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError(f"expected 1-D code ids, got shape {codes.shape}")
        if codes.size and (codes.min() < 0 or codes.max() >= self.num_codes):
            raise ValueError(
                f"code ids must be in [0, {self.num_codes}), got range "
                f"[{codes.min()}, {codes.max()}]"
            )
        return self.codebook.data[codes]

    def quantize(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(reconstruction, codes)`` without any codebook update."""
        codes = self.assign(x)
        return self.decode(codes), codes

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Pure quantization pass: nearest-code reconstruction of ``x``."""
        return self.decode(self.assign(x))

    def update(self, x: np.ndarray, *,
               rng: np.random.Generator) -> np.ndarray:
        """One EMA step on a batch; returns the (pre-update) assignments.

        Dead codes — EMA count below ``restart_threshold`` after the
        decay step — are restarted from batch vectors drawn with ``rng``,
        so pass a derived generator (e.g. ``derive_rng(seed, step)``) to
        keep restarts reproducible across runs and resumes.
        """
        x = self._check_input(x)
        if x.shape[0] == 0:
            raise ValueError("cannot update on an empty batch")
        codes = self.assign(x)
        counts = np.bincount(codes, minlength=self.num_codes).astype(
            np.float64
        )
        sums = np.zeros((self.num_codes, self.dim), dtype=np.float64)
        np.add.at(sums, codes, x)

        ema_counts = self.decay * self.ema_counts + (1 - self.decay) * counts
        ema_sums = self.decay * self.ema_sums + (1 - self.decay) * sums
        # Laplace smoothing keeps rarely-hit codes finite without
        # distorting the total mass.
        total = ema_counts.sum()
        smoothed = ((ema_counts + self.eps)
                    / (total + self.num_codes * self.eps) * total)
        codebook = ema_sums / smoothed[:, None]

        dead = ema_counts < self.restart_threshold
        if dead.any():
            replacements = rng.integers(0, x.shape[0], size=int(dead.sum()))
            codebook[dead] = x[replacements]
            ema_sums[dead] = x[replacements]
            ema_counts[dead] = 1.0

        self.set_buffer("ema_counts", ema_counts)
        self.set_buffer("ema_sums", ema_sums)
        # Assigning .data bumps the version counter: registry fingerprints
        # of a published quantizer notice the EMA step.
        self.codebook.data = codebook.astype(np.float32)
        return codes

    def fit(self, embeddings: np.ndarray, *, epochs: int = 5,
            batch_size: int = 1024, seed: int = 0,
            tol: float = 0.0) -> "VectorQuantizer":
        """Offline k-means-style training: shuffled minibatch EMA passes.

        Deterministic by construction — the epoch shuffle derives from
        spawn key ``(seed, 1, epoch)`` and each batch's restart RNG from
        ``(seed, 2, epoch, batch)``.  ``tol > 0`` stops early once the
        mean squared codebook movement over an epoch drops to ``tol`` or
        below; :attr:`fit_epochs_` records how many epochs actually ran.
        This is the coarse-quantizer trainer the IVF layer reuses.
        """
        embeddings = self._check_input(embeddings)
        _check_fit_args(embeddings, epochs, batch_size, tol)
        n = embeddings.shape[0]
        for epoch in range(epochs):
            previous = self.codebook.data.copy()
            order = derive_rng(seed, 1, epoch).permutation(n)
            for batch_index, start in enumerate(range(0, n, batch_size)):
                batch = embeddings[order[start:start + batch_size]]
                self.update(batch, rng=derive_rng(seed, 2, epoch,
                                                  batch_index))
            self.fit_epochs_ = epoch + 1
            shift = float(np.mean((self.codebook.data - previous) ** 2))
            if shift <= tol:
                break
        return self


class ProductQuantizer(Module):
    """Independent EMA codebooks over ``num_subspaces`` coordinate slices."""

    def __init__(
        self,
        dim: int,
        num_subspaces: int,
        num_codes: int = 256,
        *,
        decay: float = 0.99,
        eps: float = 1e-5,
        restart_threshold: float = 1e-2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_subspaces < 1:
            raise ValueError(
                f"num_subspaces must be >= 1, got {num_subspaces}"
            )
        if dim % num_subspaces != 0:
            raise ValueError(
                f"dim {dim} is not divisible by num_subspaces "
                f"{num_subspaces}"
            )
        rng = ensure_rng(rng)
        self.subdim = dim // num_subspaces
        self.quantizers = ModuleList([
            VectorQuantizer(num_codes, self.subdim, decay=decay, eps=eps,
                            restart_threshold=restart_threshold, rng=rng)
            for _ in range(num_subspaces)
        ])
        self.code_dtype = _smallest_code_dtype(num_codes)

    @property
    def num_subspaces(self) -> int:
        return len(self.quantizers)

    @property
    def num_codes(self) -> int:
        return self.quantizers[0].num_codes

    @property
    def dim(self) -> int:
        return self.subdim * self.num_subspaces

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(
                f"expected embeddings of shape (N, {self.dim}), got "
                f"{x.shape}"
            )
        return x

    def _slices(self, x: np.ndarray):
        for m in range(self.num_subspaces):
            yield x[:, m * self.subdim:(m + 1) * self.subdim]

    def encode(self, x: np.ndarray,
               row_block: int = 16_384) -> np.ndarray:
        """``(N, dim)`` embeddings to ``(N, num_subspaces)`` code ids.

        Scores are computed in float32, blocked over ``row_block`` rows
        so the ``(rows, num_codes)`` score scratch stays cache-sized no
        matter how large the batch — encoding a million-item corpus is
        matmul-bound instead of allocation-bound.
        """
        x = self._check_input(x)
        if row_block < 1:
            raise ValueError(f"row_block must be >= 1, got {row_block}")
        n = x.shape[0]
        x32 = x.astype(np.float32)
        codes = np.empty((n, self.num_subspaces), dtype=self.code_dtype)
        rows = min(row_block, max(n, 1))
        scores = np.empty((rows, self.num_codes), dtype=np.float32)
        for m, q in enumerate(self.quantizers):
            codebook = q.codebook.data  # float32 (K, subdim)
            norms = np.sum(codebook ** 2, axis=1)
            part = x32[:, m * self.subdim:(m + 1) * self.subdim]
            for start in range(0, n, rows):
                block = part[start:start + rows]
                view = scores[:block.shape[0]]
                # ||x - c||^2 up to the query norm: argmin is unaffected.
                np.matmul(block, codebook.T, out=view)
                view *= -2.0
                view += norms
                codes[start:start + rows, m] = np.argmin(view, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """``(N, num_subspaces)`` code ids back to ``(N, dim)`` vectors."""
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self.num_subspaces:
            raise ValueError(
                f"expected codes of shape (N, {self.num_subspaces}), got "
                f"{codes.shape}"
            )
        return np.concatenate(
            [q.decode(codes[:, m].astype(np.int64))
             for m, q in enumerate(self.quantizers)],
            axis=1,
        )

    def quantize(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        codes = self.encode(x)
        return self.decode(codes), codes

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Pure quantization pass: per-subspace reconstruction of ``x``."""
        return self.decode(self.encode(x))

    def update(self, x: np.ndarray, *,
               rng: np.random.Generator) -> np.ndarray:
        """One EMA step on every subspace; returns the assignments."""
        x = self._check_input(x)
        codes = np.stack(
            [q.update(part, rng=rng) for q, part in zip(self.quantizers,
                                                        self._slices(x))],
            axis=1,
        )
        return codes.astype(self.code_dtype)

    def fit(self, embeddings: np.ndarray, *, epochs: int = 5,
            batch_size: int = 1024, seed: int = 0,
            tol: float = 0.0) -> "ProductQuantizer":
        """Offline codebook training: shuffled minibatch EMA passes.

        Deterministic by construction — the epoch shuffle derives from
        spawn key ``(seed, 1, epoch)`` and each batch's restart RNG from
        ``(seed, 2, epoch, batch)`` — so ``fit`` with the same data and
        seed always yields the same codebooks.

        The EMA loop is vectorized across subspaces: assignments,
        counts, and sums for all ``num_subspaces`` codebooks come from
        batched matmuls and one flattened scatter-add per minibatch, and
        the sub-quantizers' buffers/Parameters are written back *once*
        at the end (a single version bump per codebook instead of one
        per batch).  ``tol > 0`` adds an early stop on mean squared
        codebook movement per epoch; :attr:`fit_epochs_` records the
        epochs actually run.
        """
        embeddings = self._check_input(embeddings)
        _check_fit_args(embeddings, epochs, batch_size, tol)
        n = embeddings.shape[0]
        m_count, k_count, sub = (self.num_subspaces, self.num_codes,
                                 self.subdim)
        parts = embeddings.reshape(n, m_count, sub)

        # Local float64 training state, written back after the loop.
        ema_counts = np.stack([q.ema_counts.copy()
                               for q in self.quantizers])
        ema_sums = np.stack([q.ema_sums.copy() for q in self.quantizers])
        books = np.stack([q.codebook.data.astype(np.float64)
                          for q in self.quantizers])  # (M, K, sub)
        decay = self.quantizers[0].decay
        eps = self.quantizers[0].eps
        restart = self.quantizers[0].restart_threshold
        offsets = (np.arange(m_count) * k_count)[None, :]

        for epoch in range(epochs):
            previous = books.copy()
            order = derive_rng(seed, 1, epoch).permutation(n)
            for batch_index, start in enumerate(range(0, n, batch_size)):
                batch = parts[order[start:start + batch_size]]
                b = batch.shape[0]
                # Round-trip through float32 to match the stored
                # Parameter precision the online update() assigns with.
                books_assign = books.astype(np.float32).astype(np.float64)
                codes = np.empty((b, m_count), dtype=np.int64)
                for m in range(m_count):
                    scores = (np.sum(books_assign[m] ** 2, axis=1)[None, :]
                              - 2.0 * (batch[:, m] @ books_assign[m].T))
                    codes[:, m] = np.argmin(scores, axis=1)
                flat = (codes + offsets).ravel()
                counts = np.bincount(flat, minlength=m_count * k_count) \
                    .reshape(m_count, k_count).astype(np.float64)
                sums = np.zeros((m_count * k_count, sub), dtype=np.float64)
                np.add.at(sums, flat, batch.reshape(b * m_count, sub))
                sums = sums.reshape(m_count, k_count, sub)

                ema_counts = decay * ema_counts + (1 - decay) * counts
                ema_sums = decay * ema_sums + (1 - decay) * sums
                total = ema_counts.sum(axis=1, keepdims=True)
                smoothed = ((ema_counts + eps)
                            / (total + k_count * eps) * total)
                books = ema_sums / smoothed[:, :, None]

                dead = ema_counts < restart
                if dead.any():
                    # One rng draw per subspace, in subspace order, so
                    # restarts replay the online update() draw sequence.
                    rng = derive_rng(seed, 2, epoch, batch_index)
                    for m in range(m_count):
                        dead_m = dead[m]
                        if not dead_m.any():
                            continue
                        picks = rng.integers(0, b, size=int(dead_m.sum()))
                        books[m, dead_m] = batch[picks, m]
                        ema_sums[m, dead_m] = batch[picks, m]
                        ema_counts[m, dead_m] = 1.0
            self.fit_epochs_ = epoch + 1
            shift = float(np.mean((books - previous) ** 2))
            if shift <= tol:
                break

        for m, q in enumerate(self.quantizers):
            q.set_buffer("ema_counts", ema_counts[m])
            q.set_buffer("ema_sums", ema_sums[m])
            q.codebook.data = books[m].astype(np.float32)
        return self


class CodeMemory(Module):
    """FIFO buffer of quantized reconstructions (contrastive negatives).

    Registered as buffers so the memory — contents, write pointer, and
    fill count — travels with trainer checkpoints and restores
    bit-exactly.
    """

    def __init__(self, capacity: int, dim: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.register_buffer("memory",
                             np.zeros((capacity, dim), dtype=np.float64))
        self.register_buffer("ptr", np.array(0, dtype=np.int64))
        self.register_buffer("count", np.array(0, dtype=np.int64))

    @property
    def capacity(self) -> int:
        return int(self.memory.shape[0])

    def __len__(self) -> int:
        return int(self.count)

    def push(self, z: np.ndarray) -> None:
        """Append rows of ``z``, wrapping FIFO-style once full."""
        z = np.asarray(z, dtype=np.float64)
        if z.ndim != 2 or z.shape[1] != self.memory.shape[1]:
            raise ValueError(
                f"expected (N, {self.memory.shape[1]}) rows, got {z.shape}"
            )
        memory = self.memory.copy()
        ptr = int(self.ptr)
        size = self.capacity
        n = z.shape[0]
        if n >= size:
            memory[:] = z[-size:]
            ptr = 0
        else:
            end = ptr + n
            if end <= size:
                memory[ptr:end] = z
            else:
                first = size - ptr
                memory[ptr:] = z[:first]
                memory[:end % size] = z[first:]
            ptr = end % size
        self.set_buffer("memory", memory)
        self.set_buffer("ptr", np.array(ptr, dtype=np.int64))
        self.set_buffer("count", np.array(min(int(self.count) + n, size),
                                          dtype=np.int64))

    def negatives(self) -> np.ndarray:
        """The filled portion of the memory (copy, oldest-slot order)."""
        return self.memory[:len(self)].copy()
