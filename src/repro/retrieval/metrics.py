"""Retrieval evaluation: exact float oracle, recall@k, and mAP.

:func:`exact_search` is the ground truth every quantized index is
measured against — brute-force cosine (inner-product over L2-normalized
rows) ranked by descending ``(similarity, ascending id)``, the mirror
image of the quantized indexes' ascending ``(distance, id)`` order, so
metric comparisons are deterministic end to end.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .ranking import topk_largest
from .trainer import l2_normalize

__all__ = ["exact_search", "recall_at_k", "mean_average_precision"]


def exact_search(queries: np.ndarray, corpus: np.ndarray,
                 k: int = 10, *,
                 normalize: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Brute-force cosine top-k: the float oracle.

    Returns ``(ids, similarities)``, both ``(Q, min(k, N))``, ranked by
    descending similarity with ties broken by the smaller id.  Pass
    ``normalize=False`` when both sides are already unit-norm and plain
    inner product is wanted.
    """
    queries = np.asarray(queries, dtype=np.float64)
    corpus = np.asarray(corpus, dtype=np.float64)
    if queries.ndim != 2 or corpus.ndim != 2:
        raise ValueError(
            f"expected 2-D queries and corpus, got {queries.shape} and "
            f"{corpus.shape}"
        )
    if queries.shape[1] != corpus.shape[1]:
        raise ValueError(
            f"dimension mismatch: queries have {queries.shape[1]} "
            f"coordinates, corpus has {corpus.shape[1]}"
        )
    if corpus.shape[0] == 0:
        raise ValueError("cannot search an empty corpus")
    if normalize:
        queries = l2_normalize(queries)
        corpus = l2_normalize(corpus)
    return topk_largest(queries @ corpus.T, k)


def _check_id_matrices(retrieved: np.ndarray,
                       relevant: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    retrieved = np.asarray(retrieved, dtype=np.int64)
    relevant = np.asarray(relevant, dtype=np.int64)
    if retrieved.ndim != 2 or relevant.ndim != 2:
        raise ValueError(
            f"expected 2-D id matrices, got {retrieved.shape} and "
            f"{relevant.shape}"
        )
    if retrieved.shape[0] != relevant.shape[0]:
        raise ValueError(
            f"query count mismatch: {retrieved.shape[0]} vs "
            f"{relevant.shape[0]}"
        )
    if retrieved.shape[0] == 0:
        raise ValueError("need at least one query")
    return retrieved, relevant


def recall_at_k(retrieved: np.ndarray, relevant: np.ndarray,
                k: int = 10) -> float:
    """Mean fraction of ``relevant`` ids found in the top ``k`` retrieved.

    ``retrieved`` is ``(Q, >=k)`` ids from an index (rank order);
    ``relevant`` is ``(Q, R)`` ground-truth ids from the oracle.
    """
    retrieved, relevant = _check_id_matrices(retrieved, relevant)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if retrieved.shape[1] < min(k, relevant.shape[1]):
        raise ValueError(
            f"retrieved carries only {retrieved.shape[1]} ids per query "
            f"but recall@{k} needs {min(k, relevant.shape[1])}"
        )
    hits = (retrieved[:, :k, None] == relevant[:, None, :]).any(axis=1)
    return float(hits.mean())


def mean_average_precision(retrieved: np.ndarray,
                           relevant: np.ndarray) -> float:
    """Mean (over queries) of average precision over the retrieved list.

    Average precision for one query is the mean of precision@rank over
    the ranks where a relevant item appears, divided by the number of
    relevant items — 1.0 iff every relevant id leads the ranking.
    """
    retrieved, relevant = _check_id_matrices(retrieved, relevant)
    if relevant.shape[1] == 0:
        raise ValueError("relevant must list at least one id per query")
    is_hit = (retrieved[:, :, None] == relevant[:, None, :]).any(axis=2)
    ranks = np.arange(1, retrieved.shape[1] + 1, dtype=np.float64)
    cum_hits = np.cumsum(is_hit, axis=1, dtype=np.float64)
    precision_at_hits = np.where(is_hit, cum_hits / ranks, 0.0)
    return float(
        (precision_at_hits.sum(axis=1) / relevant.shape[1]).mean()
    )
