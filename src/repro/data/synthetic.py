"""Procedural class-structured image datasets (CIFAR/ImageNet stand-ins).

Each class is defined by a *prototype*: a class-specific mixture of oriented
sinusoidal gratings (per color channel), a class color palette, and a
class-specific blob layout.  Each instance perturbs the prototype with
nuisance factors — grating phase, blob position jitter, global illumination,
background texture, and pixel noise.  The construction gives the two
properties contrastive learning needs from real data:

1. instance identity survives crops/flips/color jitter (the gratings and
   blobs are global, low-frequency structure), and
2. class identity is recoverable only through features invariant to the
   nuisances, so better invariant-feature learners score higher in
   fine-tuning / linear evaluation.

The "cifar100-like" configuration uses fewer samples and lower nuisance
diversity; the "imagenet-like" one uses more classes, more samples, and a
wider nuisance distribution — reproducing the small-vs-large-scale axis on
which the paper's CQ-A/CQ-C comparison turns (strong augmentation helps
diverse data, hurts small data).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from .datasets import ArrayDataset

__all__ = [
    "SyntheticConfig",
    "SyntheticImages",
    "make_cifar100_like",
    "make_imagenet_like",
]


@dataclasses.dataclass(frozen=True)
class SyntheticConfig:
    """Generator parameters; see the module docstring for semantics."""

    num_classes: int = 10
    image_size: int = 16
    train_per_class: int = 64
    test_per_class: int = 16
    gratings_per_class: int = 3
    blobs_per_class: int = 2
    nuisance: float = 0.3
    noise_std: float = 0.03
    seed: int = 0

    def validate(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need >= 2 classes, got {self.num_classes}")
        if self.image_size < 4:
            raise ValueError(f"image_size too small: {self.image_size}")
        if not 0.0 <= self.nuisance <= 2.0:
            raise ValueError(f"nuisance must be in [0, 2], got {self.nuisance}")


class SyntheticImages:
    """Materialised train/test splits drawn from a :class:`SyntheticConfig`."""

    def __init__(self, config: SyntheticConfig) -> None:
        config.validate()
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._class_params = [
            self._sample_class_params(rng) for _ in range(config.num_classes)
        ]
        self.train = self._generate(rng, config.train_per_class)
        self.test = self._generate(rng, config.test_per_class)

    # -- prototype construction -------------------------------------------
    def _sample_class_params(self, rng: np.random.Generator) -> dict:
        c = self.config
        return {
            # Oriented gratings: frequency (cycles/image), angle, channel mix.
            "freqs": rng.uniform(1.0, 4.0, size=c.gratings_per_class),
            "angles": rng.uniform(0, np.pi, size=c.gratings_per_class),
            "channel_mix": rng.dirichlet(
                np.ones(3), size=c.gratings_per_class
            ),
            "palette": rng.uniform(0.2, 0.8, size=3),
            "blob_centers": rng.uniform(0.2, 0.8, size=(c.blobs_per_class, 2)),
            "blob_sigmas": rng.uniform(0.08, 0.2, size=c.blobs_per_class),
            "blob_colors": rng.uniform(0.0, 1.0, size=(c.blobs_per_class, 3)),
        }

    def _render(self, params: dict, rng: np.random.Generator) -> np.ndarray:
        c = self.config
        size = c.image_size
        yy, xx = np.meshgrid(
            np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij"
        )
        image = np.tile(
            params["palette"].reshape(3, 1, 1), (1, size, size)
        ).astype(np.float64)

        # Background texture (nuisance): low-amplitude random gradient.
        grad_dir = rng.uniform(-1, 1, size=2) * c.nuisance * 0.2
        image += grad_dir[0] * yy + grad_dir[1] * xx

        # Class gratings with instance-random phase.
        for k in range(c.gratings_per_class):
            angle = params["angles"][k] + rng.normal(0, 0.08 * c.nuisance)
            freq = params["freqs"][k] * (1 + rng.normal(0, 0.05 * c.nuisance))
            phase = rng.uniform(0, 2 * np.pi)
            wave = np.sin(
                2 * np.pi * freq * (np.cos(angle) * xx + np.sin(angle) * yy)
                + phase
            )
            image += 0.25 * params["channel_mix"][k].reshape(3, 1, 1) * wave

        # Class blobs with jittered centers.
        for b in range(c.blobs_per_class):
            cy, cx = params["blob_centers"][b] + rng.normal(
                0, 0.05 * c.nuisance, size=2
            )
            sigma = params["blob_sigmas"][b]
            bump = np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2)))
            image += 0.5 * (
                params["blob_colors"][b].reshape(3, 1, 1) - 0.5
            ) * bump

        # Global illumination nuisance + pixel noise.
        image *= 1.0 + rng.normal(0, 0.1 * c.nuisance)
        image += rng.normal(0, c.noise_std, size=image.shape)
        return np.clip(image, 0.0, 1.0).astype(np.float32)

    def _generate(
        self, rng: np.random.Generator, per_class: int
    ) -> ArrayDataset:
        c = self.config
        images = np.empty(
            (c.num_classes * per_class, 3, c.image_size, c.image_size),
            dtype=np.float32,
        )
        labels = np.empty(c.num_classes * per_class, dtype=np.int64)
        i = 0
        for cls, params in enumerate(self._class_params):
            for _ in range(per_class):
                images[i] = self._render(params, rng)
                labels[i] = cls
                i += 1
        order = rng.permutation(len(labels))
        return ArrayDataset(images[order], labels[order])


def make_cifar100_like(
    num_classes: int = 10,
    image_size: int = 16,
    train_per_class: int = 48,
    test_per_class: int = 16,
    seed: int = 0,
) -> SyntheticImages:
    """Small-scale dataset: few samples, low nuisance diversity.

    Plays the role of CIFAR-100 in the paper's comparisons: strong
    augmentations distort the limited structure available, so the milder
    CQ-C is expected to win here.
    """
    return SyntheticImages(
        SyntheticConfig(
            num_classes=num_classes,
            image_size=image_size,
            train_per_class=train_per_class,
            test_per_class=test_per_class,
            nuisance=0.25,
            noise_std=0.02,
            seed=seed,
        )
    )


def make_imagenet_like(
    num_classes: int = 16,
    image_size: int = 16,
    train_per_class: int = 96,
    test_per_class: int = 16,
    seed: int = 0,
) -> SyntheticImages:
    """Large/diverse dataset: more classes, samples, and nuisance variance.

    Plays the role of ImageNet: the data is diverse enough that the
    aggressive sequential augmentation of CQ-A pays off.
    """
    return SyntheticImages(
        SyntheticConfig(
            num_classes=num_classes,
            image_size=image_size,
            train_per_class=train_per_class,
            test_per_class=test_per_class,
            gratings_per_class=4,
            blobs_per_class=3,
            nuisance=0.8,
            noise_std=0.04,
            seed=seed,
        )
    )
