"""Input augmentations (numpy, CHW float images in [0, 1]).

The pipeline mirrors SimCLR's recipe: random resized crop, horizontal flip,
color jitter, random grayscale, Gaussian blur.  Every op is a callable
``op(image, rng) -> image`` so the whole pipeline is deterministic given the
loader's generator.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "resize_bilinear",
    "Compose",
    "RandomResizedCrop",
    "RandomHorizontalFlip",
    "ColorJitter",
    "RandomGrayscale",
    "GaussianBlur",
    "GaussianNoise",
    "Cutout",
    "TwoViewTransform",
    "simclr_augmentations",
]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def resize_bilinear(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resize of a CHW image."""
    c, h, w = image.shape
    if (h, w) == (out_h, out_w):
        return image.copy()
    # Sample positions in source coordinates (align corners = False style).
    ys = (np.arange(out_h) + 0.5) * h / out_h - 0.5
    xs = (np.arange(out_w) + 0.5) * w / out_w - 0.5
    ys = np.clip(ys, 0, h - 1)
    xs = np.clip(xs, 0, w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[None, :, None]
    wx = (xs - x0)[None, None, :]
    top = image[:, y0][:, :, x0] * (1 - wx) + image[:, y0][:, :, x1] * wx
    bottom = image[:, y1][:, :, x0] * (1 - wx) + image[:, y1][:, :, x1] * wx
    return (top * (1 - wy) + bottom * wy).astype(image.dtype)


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image, rng)
        return image


class RandomResizedCrop:
    """Crop a random area/aspect patch and resize back to the input size."""

    def __init__(
        self,
        scale: Tuple[float, float] = (0.4, 1.0),
        ratio: Tuple[float, float] = (0.75, 1.333),
    ) -> None:
        if not 0 < scale[0] <= scale[1] <= 1.0:
            raise ValueError(f"invalid scale range {scale}")
        self.scale = scale
        self.ratio = ratio

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        c, h, w = image.shape
        area = h * w
        for _ in range(10):
            target_area = area * rng.uniform(*self.scale)
            aspect = np.exp(rng.uniform(np.log(self.ratio[0]),
                                        np.log(self.ratio[1])))
            crop_w = int(round(np.sqrt(target_area * aspect)))
            crop_h = int(round(np.sqrt(target_area / aspect)))
            if 0 < crop_w <= w and 0 < crop_h <= h:
                top = rng.integers(0, h - crop_h + 1)
                left = rng.integers(0, w - crop_w + 1)
                patch = image[:, top : top + crop_h, left : left + crop_w]
                return resize_bilinear(patch, h, w)
        return image.copy()  # fallback: degenerate geometry


class RandomHorizontalFlip:
    def __init__(self, p: float = 0.5) -> None:
        self.p = p

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class ColorJitter:
    """Random brightness / contrast / saturation perturbation."""

    def __init__(
        self,
        brightness: float = 0.4,
        contrast: float = 0.4,
        saturation: float = 0.4,
    ) -> None:
        self.brightness = brightness
        self.contrast = contrast
        self.saturation = saturation

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = image.astype(np.float32)
        if self.brightness:
            out = out * (1.0 + rng.uniform(-self.brightness, self.brightness))
        if self.contrast:
            factor = 1.0 + rng.uniform(-self.contrast, self.contrast)
            mean = out.mean()
            out = (out - mean) * factor + mean
        if self.saturation:
            factor = 1.0 + rng.uniform(-self.saturation, self.saturation)
            gray = out.mean(axis=0, keepdims=True)
            out = gray + (out - gray) * factor
        return np.clip(out, 0.0, 1.0)


class RandomGrayscale:
    def __init__(self, p: float = 0.2) -> None:
        self.p = p

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() < self.p:
            gray = image.mean(axis=0, keepdims=True)
            return np.repeat(gray, image.shape[0], axis=0)
        return image


class GaussianBlur:
    """Separable Gaussian blur with randomly sampled sigma."""

    def __init__(self, sigma: Tuple[float, float] = (0.1, 1.0), p: float = 0.5) -> None:
        self.sigma = sigma
        self.p = p

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() >= self.p:
            return image
        sigma = rng.uniform(*self.sigma)
        radius = max(1, int(2 * sigma))
        offsets = np.arange(-radius, radius + 1)
        kernel = np.exp(-(offsets**2) / (2 * sigma**2))
        kernel /= kernel.sum()
        padded = np.pad(image, ((0, 0), (radius, radius), (0, 0)), mode="edge")
        out = np.zeros_like(image)
        for i, k in enumerate(kernel):
            out += k * padded[:, i : i + image.shape[1], :]
        padded = np.pad(out, ((0, 0), (0, 0), (radius, radius)), mode="edge")
        final = np.zeros_like(image)
        for i, k in enumerate(kernel):
            final += k * padded[:, :, i : i + image.shape[2]]
        return final


class GaussianNoise:
    def __init__(self, std: float = 0.02) -> None:
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        self.std = std

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.std == 0:
            return image
        noisy = image + rng.normal(0, self.std, size=image.shape)
        return np.clip(noisy, 0.0, 1.0).astype(np.float32)


class Cutout:
    """Zero a random square patch."""

    def __init__(self, size_fraction: float = 0.25, p: float = 0.5) -> None:
        self.size_fraction = size_fraction
        self.p = p

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if rng.random() >= self.p:
            return image
        c, h, w = image.shape
        ch = max(1, int(h * self.size_fraction))
        cw = max(1, int(w * self.size_fraction))
        top = rng.integers(0, h - ch + 1)
        left = rng.integers(0, w - cw + 1)
        out = image.copy()
        out[:, top : top + ch, left : left + cw] = 0.0
        return out


class TwoViewTransform:
    """Produce two independently augmented views (SimCLR positive pair)."""

    def __init__(self, transform: Transform) -> None:
        self.transform = transform

    def __call__(
        self, image: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.transform(image, rng), self.transform(image, rng)


def simclr_augmentations(strength: float = 1.0) -> Compose:
    """The SimCLR augmentation recipe, scaled by ``strength``."""
    if strength < 0:
        raise ValueError(f"strength must be non-negative, got {strength}")
    return Compose(
        [
            RandomResizedCrop(scale=(max(0.2, 1.0 - 0.6 * strength), 1.0)),
            RandomHorizontalFlip(),
            ColorJitter(0.4 * strength, 0.4 * strength, 0.4 * strength),
            RandomGrayscale(p=0.2 * strength),
            GaussianBlur(p=0.3 * strength),
        ]
    )
