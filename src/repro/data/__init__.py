"""Datasets, loaders, and augmentations.

The reproduction environment has no network access, so CIFAR-100 and
ImageNet are substituted with procedurally generated class-structured image
datasets (see :mod:`repro.data.synthetic` for the construction and
DESIGN.md for why the substitution preserves the paper's comparisons), and
Pascal VOC with a synthetic detection dataset
(:mod:`repro.data.detection`).
"""

from .augment import (
    ColorJitter,
    Compose,
    Cutout,
    GaussianBlur,
    GaussianNoise,
    RandomGrayscale,
    RandomHorizontalFlip,
    RandomResizedCrop,
    TwoViewTransform,
    simclr_augmentations,
)
from .datasets import ArrayDataset, DataLoader, Dataset, Subset, stratified_label_fraction
from .synthetic import (
    SyntheticConfig,
    SyntheticImages,
    make_cifar100_like,
    make_imagenet_like,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "stratified_label_fraction",
    "SyntheticConfig",
    "SyntheticImages",
    "make_cifar100_like",
    "make_imagenet_like",
    "Compose",
    "RandomResizedCrop",
    "RandomHorizontalFlip",
    "ColorJitter",
    "RandomGrayscale",
    "GaussianBlur",
    "GaussianNoise",
    "Cutout",
    "TwoViewTransform",
    "simclr_augmentations",
]
