"""Dataset / DataLoader abstractions and semi-supervised label splits."""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.rng import derive_rng, ensure_rng

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "stratified_label_fraction",
]


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset over in-memory arrays: (images CHW float32, integer labels)."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels):
            raise ValueError(
                f"{len(images)} images but {len(labels)} labels"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def save(self, path: str) -> None:
        """Persist images and labels to a compressed ``.npz`` file."""
        np.savez_compressed(path, images=self.images, labels=self.labels)

    @classmethod
    def load(cls, path: str) -> "ArrayDataset":
        """Load a dataset written by :meth:`save`."""
        with np.load(path) as archive:
            return cls(archive["images"], archive["labels"])


class Subset(Dataset):
    """View of a dataset restricted to ``indices``."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = list(int(i) for i in indices)
        n = len(dataset)
        for i in self.indices:
            if not 0 <= i < n:
                raise IndexError(f"index {i} out of range for dataset of {n}")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]


def stratified_label_fraction(
    labels: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    min_per_class: int = 1,
) -> np.ndarray:
    """Indices of a class-stratified ``fraction`` of the labels.

    This implements the paper's semi-supervised protocol (fine-tuning with
    10% or 1% labels): each class keeps ``max(min_per_class,
    round(fraction * class_count))`` examples, sampled without replacement.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    labels = np.asarray(labels)
    picked: List[np.ndarray] = []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        keep = max(min_per_class, int(round(fraction * len(members))))
        keep = min(keep, len(members))
        picked.append(rng.choice(members, size=keep, replace=False))
    return np.sort(np.concatenate(picked))


# Second spawn-key word separating the loader's RNG domains, so the
# shuffle stream of epoch e can never collide with sample index e.
_SHUFFLE_DOMAIN = 1
_SAMPLE_DOMAIN = 2


class DataLoader:
    """Mini-batch iterator with shuffling and optional transform.

    ``transform(image, rng) -> image-or-tuple`` is applied per sample; when
    it returns a tuple (e.g. two augmented views), the loader yields one
    stacked array per tuple slot, enabling the two-view contrastive batches.

    Two seeding modes:

    - **Legacy stream** (``rng=...``): shuffle and every per-sample
      transform consume one stateful generator in iteration order.
      Deterministic for inline iteration, but inherently serial.
    - **Order-independent** (``seed=...``): the shuffle of epoch ``e``
      uses a generator derived from ``(seed, epoch)`` and each sample's
      transform uses one derived from ``(seed, epoch, sample_index)``
      (``sample_index`` is the *dataset* index, not the batch position).
      Batches are then byte-identical no matter which worker produces
      them — the contract ``num_workers > 0`` builds on.  Loader state is
      a single epoch counter, captured by ``state_dict()`` so bit-exact
      checkpoint resume holds.

    ``num_workers > 0`` materialises batches ahead of the consumer with
    :class:`repro.parallel.PrefetchLoader` (fork process pool, thread
    fallback); up to ``num_workers * prefetch_factor`` batches are in
    flight.  Parallel collation requires the order-independent mode.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        transform: Optional[Callable] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        num_workers: int = 0,
        prefetch_factor: int = 2,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0 (0 means inline collation), "
                f"got {num_workers}"
            )
        if prefetch_factor <= 0:
            raise ValueError(
                f"prefetch_factor must be >= 1 (batches in flight per "
                f"worker), got {prefetch_factor}"
            )
        if seed is not None:
            if rng is not None:
                raise ValueError(
                    "pass either rng= (legacy sequential stream) or seed= "
                    "(order-independent per-sample streams), not both"
                )
            if seed < 0:
                raise ValueError(f"seed must be >= 0, got {seed}")
        elif num_workers > 0:
            raise ValueError(
                "num_workers > 0 requires seed= (order-independent "
                "seeding); a shared rng= stream cannot be split across "
                "workers deterministically"
            )
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self.seed = seed
        self.num_workers = num_workers
        self.prefetch_factor = prefetch_factor
        # Legacy mode keeps the historical always-present generator; the
        # seeded mode is stateless apart from the epoch counter, so
        # trainer checkpoints skip the rng capture (rng is None).
        self.rng = None if seed is not None else ensure_rng(rng)
        self._epoch = 0
        self._prefetcher = None

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return math.ceil(n / self.batch_size)

    # -- order-independent epoch protocol (used inline and by workers) ----
    def next_epoch(self) -> int:
        """Consume and return the current epoch index (seeded mode)."""
        epoch = self._epoch
        self._epoch = epoch + 1
        return epoch

    def epoch_batches(self, epoch: int) -> List[np.ndarray]:
        """Index chunks of one epoch, in yield order.

        In seeded mode the permutation derives from ``(seed, epoch)``; in
        legacy mode it consumes the loader's stateful generator.
        """
        order = np.arange(len(self.dataset))
        if self.shuffle:
            if self.seed is not None:
                derive_rng(self.seed, _SHUFFLE_DOMAIN, epoch).shuffle(order)
            else:
                self.rng.shuffle(order)
        chunks = []
        for start in range(0, len(order), self.batch_size):
            chunk = order[start : start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            chunks.append(chunk)
        return chunks

    def collate(self, epoch: int, indices: np.ndarray):
        """Materialise one batch; pure in seeded mode (worker-safe)."""
        if self.seed is None:
            return self._collate_legacy(indices)
        images, labels = [], []
        for i in indices:
            index = int(i)
            image, label = self.dataset[index]
            if self.transform is not None:
                sample_rng = derive_rng(
                    self.seed, _SAMPLE_DOMAIN, epoch, index
                )
                image = self.transform(image, sample_rng)
            images.append(image)
            labels.append(label)
        return self._stack(images, labels)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        if self.num_workers > 0:
            if self._prefetcher is None:
                from ..parallel import PrefetchLoader

                self._prefetcher = PrefetchLoader(
                    self,
                    num_workers=self.num_workers,
                    prefetch_factor=self.prefetch_factor,
                )
            return self._prefetcher.iter_epoch()
        return self._iter_inline()

    def _iter_inline(self) -> Iterator[Tuple[np.ndarray, ...]]:
        epoch = self.next_epoch()
        for chunk in self.epoch_batches(epoch):
            yield self.collate(epoch, chunk)

    @property
    def queue_depth(self) -> int:
        """Prefetched batches currently in flight (0 when inline)."""
        if self._prefetcher is None:
            return 0
        return self._prefetcher.queue_depth

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._prefetcher is not None:
            self._prefetcher.close()
            self._prefetcher = None

    # -- checkpoint state -------------------------------------------------
    def state_dict(self) -> dict:
        """Loader progress for bit-exact resume.

        Seeded mode is fully described by the epoch counter; legacy mode
        captures the stateful generator (kept restorable for existing
        checkpoints, though trainers also capture it as ``loader_rng``).
        """
        if self.seed is not None:
            return {"mode": "seeded", "seed": int(self.seed),
                    "epoch": int(self._epoch)}
        from ..checkpoint import get_rng_state

        return {"mode": "legacy", "rng": get_rng_state(self.rng)}

    def load_state_dict(self, state: dict) -> None:
        mode = state.get("mode")
        if mode == "seeded":
            if self.seed is None:
                raise ValueError(
                    "checkpoint holds a seeded loader state but this "
                    "loader uses a legacy rng stream"
                )
            self._epoch = int(state["epoch"])
        elif mode == "legacy":
            if self.rng is None:
                raise ValueError(
                    "checkpoint holds a legacy loader rng but this "
                    "loader uses order-independent seeding"
                )
            from ..checkpoint import set_rng_state

            set_rng_state(self.rng, state["rng"])
        else:
            raise ValueError(f"unknown loader state mode {mode!r}")

    def _collate_legacy(self, indices: np.ndarray):
        images, labels = [], []
        for i in indices:
            image, label = self.dataset[int(i)]
            if self.transform is not None:
                image = self.transform(image, self.rng)
            images.append(image)
            labels.append(label)
        return self._stack(images, labels)

    @staticmethod
    def _stack(images, labels):
        labels_arr = np.asarray(labels, dtype=np.int64)
        if isinstance(images[0], tuple):
            views = tuple(
                np.stack([img[v] for img in images]).astype(np.float32)
                for v in range(len(images[0]))
            )
            return (*views, labels_arr)
        return np.stack(images).astype(np.float32), labels_arr
