"""Dataset / DataLoader abstractions and semi-supervised label splits."""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.rng import ensure_rng

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "stratified_label_fraction",
]


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset over in-memory arrays: (images CHW float32, integer labels)."""

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels):
            raise ValueError(
                f"{len(images)} images but {len(labels)} labels"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def save(self, path: str) -> None:
        """Persist images and labels to a compressed ``.npz`` file."""
        np.savez_compressed(path, images=self.images, labels=self.labels)

    @classmethod
    def load(cls, path: str) -> "ArrayDataset":
        """Load a dataset written by :meth:`save`."""
        with np.load(path) as archive:
            return cls(archive["images"], archive["labels"])


class Subset(Dataset):
    """View of a dataset restricted to ``indices``."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = list(int(i) for i in indices)
        n = len(dataset)
        for i in self.indices:
            if not 0 <= i < n:
                raise IndexError(f"index {i} out of range for dataset of {n}")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]


def stratified_label_fraction(
    labels: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    min_per_class: int = 1,
) -> np.ndarray:
    """Indices of a class-stratified ``fraction`` of the labels.

    This implements the paper's semi-supervised protocol (fine-tuning with
    10% or 1% labels): each class keeps ``max(min_per_class,
    round(fraction * class_count))`` examples, sampled without replacement.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    labels = np.asarray(labels)
    picked: List[np.ndarray] = []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        keep = max(min_per_class, int(round(fraction * len(members))))
        keep = min(keep, len(members))
        picked.append(rng.choice(members, size=keep, replace=False))
    return np.sort(np.concatenate(picked))


class DataLoader:
    """Mini-batch iterator with shuffling and optional transform.

    ``transform(image, rng) -> image-or-tuple`` is applied per sample; when
    it returns a tuple (e.g. two augmented views), the loader yields one
    stacked array per tuple slot, enabling the two-view contrastive batches.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        transform: Optional[Callable] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self.rng = ensure_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return math.ceil(n / self.batch_size)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start : start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                return
            yield self._collate(chunk)

    def _collate(self, indices: np.ndarray):
        images, labels = [], []
        for i in indices:
            image, label = self.dataset[int(i)]
            if self.transform is not None:
                image = self.transform(image, self.rng)
            images.append(image)
            labels.append(label)
        labels_arr = np.asarray(labels, dtype=np.int64)
        if isinstance(images[0], tuple):
            views = tuple(
                np.stack([img[v] for img in images]).astype(np.float32)
                for v in range(len(images[0]))
            )
            return (*views, labels_arr)
        return np.stack(images).astype(np.float32), labels_arr
