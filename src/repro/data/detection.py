"""Synthetic object-detection dataset (Pascal-VOC stand-in).

Scenes contain 1-``max_objects`` geometric objects (discs, squares,
diamonds) with class-specific colors on a textured background.  Targets are
``(class_id, cx, cy, w, h)`` boxes in normalized [0, 1] coordinates —
exactly the supervision a YOLO-style single-scale head consumes.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .datasets import Dataset

__all__ = ["Box", "DetectionScene", "SyntheticDetection"]


@dataclasses.dataclass(frozen=True)
class Box:
    """One ground-truth object: class id and a normalized center-size box."""

    class_id: int
    cx: float
    cy: float
    w: float
    h: float

    def area(self) -> float:
        return self.w * self.h

    def corners(self) -> Tuple[float, float, float, float]:
        """(x1, y1, x2, y2) normalized corners."""
        return (
            self.cx - self.w / 2,
            self.cy - self.h / 2,
            self.cx + self.w / 2,
            self.cy + self.h / 2,
        )


@dataclasses.dataclass
class DetectionScene:
    image: np.ndarray  # (3, H, W) float32
    boxes: List[Box]


_SHAPES = ("disc", "square", "diamond")

#: Well-separated class colors (VOC classes are visually distinct; random
#: palettes can land two classes on near-identical colors, which makes the
#: task unlearnable at stand-in scale).
_PALETTE = (
    (0.95, 0.25, 0.20),
    (0.20, 0.85, 0.30),
    (0.25, 0.35, 0.95),
    (0.95, 0.90, 0.25),
    (0.85, 0.30, 0.90),
    (0.25, 0.90, 0.90),
    (0.95, 0.60, 0.20),
    (0.60, 0.95, 0.60),
    (0.75, 0.75, 0.95),
    (0.95, 0.75, 0.85),
    (0.55, 0.45, 0.25),
    (0.40, 0.60, 0.40),
)


class SyntheticDetection(Dataset):
    """Procedural detection scenes with per-class shape/color signatures."""

    def __init__(
        self,
        num_scenes: int = 64,
        num_classes: int = 3,
        image_size: int = 32,
        max_objects: int = 3,
        seed: int = 0,
        noise_std: float = 0.03,
    ) -> None:
        if num_classes < 1 or num_classes > len(_PALETTE):
            raise ValueError(f"num_classes out of range: {num_classes}")
        self.image_size = image_size
        self.num_classes = num_classes
        rng = np.random.default_rng(seed)
        self._class_colors = np.array(_PALETTE[:num_classes])
        self._class_shapes = [_SHAPES[c % len(_SHAPES)] for c in range(num_classes)]
        self.scenes: List[DetectionScene] = [
            self._render_scene(rng, max_objects, noise_std)
            for _ in range(num_scenes)
        ]

    def __len__(self) -> int:
        return len(self.scenes)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, List[Box]]:
        scene = self.scenes[index]
        return scene.image, scene.boxes

    # -- rendering -------------------------------------------------------------
    def _render_scene(
        self,
        rng: np.random.Generator,
        max_objects: int,
        noise_std: float,
    ) -> DetectionScene:
        size = self.image_size
        yy, xx = np.meshgrid(
            np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij"
        )
        background = 0.15 + 0.1 * np.sin(
            2 * np.pi * (rng.uniform(1, 3) * xx + rng.uniform(1, 3) * yy)
        )
        image = np.tile(background[None], (3, 1, 1)).astype(np.float64)
        image += rng.normal(0, noise_std, size=image.shape)

        boxes: List[Box] = []
        count = int(rng.integers(1, max_objects + 1))
        for _ in range(count):
            class_id = int(rng.integers(0, self.num_classes))
            w = float(rng.uniform(0.18, 0.4))
            h = float(rng.uniform(0.18, 0.4))
            cx = float(rng.uniform(w / 2, 1 - w / 2))
            cy = float(rng.uniform(h / 2, 1 - h / 2))
            self._draw(image, yy, xx, class_id, cx, cy, w, h)
            boxes.append(Box(class_id, cx, cy, w, h))
        return DetectionScene(
            np.clip(image, 0, 1).astype(np.float32), boxes
        )

    def _draw(self, image, yy, xx, class_id, cx, cy, w, h) -> None:
        shape = self._class_shapes[class_id]
        color = self._class_colors[class_id]
        if shape == "disc":
            mask = ((xx - cx) / (w / 2)) ** 2 + ((yy - cy) / (h / 2)) ** 2 <= 1.0
        elif shape == "square":
            mask = (np.abs(xx - cx) <= w / 2) & (np.abs(yy - cy) <= h / 2)
        else:  # diamond
            mask = (np.abs(xx - cx) / (w / 2) + np.abs(yy - cy) / (h / 2)) <= 1.0
        for ch in range(3):
            image[ch][mask] = color[ch]
