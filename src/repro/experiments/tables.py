"""Monospace table rendering for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["format_table", "render_grid_rows"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (the shape the paper's tables take)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(divider)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_grid_rows(
    table: Dict[str, Dict[Tuple[Optional[int], float], float]],
    precisions: Sequence[Optional[int]],
    fractions: Sequence[float],
    leading: Optional[Dict[str, Sequence[object]]] = None,
) -> Tuple[List[str], List[List[object]]]:
    """Convert a method -> grid mapping into (headers, rows) for display.

    ``leading`` optionally maps method name to extra leading columns
    (e.g. the network name).
    """
    headers: List[str] = ["Method"]
    if leading:
        lead_width = len(next(iter(leading.values())))
        headers = [f"col{i}" for i in range(lead_width)] + headers
    for precision in precisions:
        tag = "FP" if precision is None else f"{precision}-bit"
        for fraction in fractions:
            headers.append(f"{tag} {int(round(fraction * 100))}%")
    rows: List[List[object]] = []
    for method, grid in table.items():
        row: List[object] = []
        if leading:
            row.extend(leading[method])
        row.append(method)
        for precision in precisions:
            for fraction in fractions:
                row.append(grid[(precision, fraction)])
        rows.append(row)
    return headers, rows
