"""Experiment orchestration: per-table configs, runners, and reporting."""

from .config import EvalProtocol, MethodSpec, PretrainConfig
from .runner import (
    PretrainOutcome,
    finetune_grid,
    linear_eval_point,
    pretrain,
    run_method_table,
    sweep_method_table,
    untrained_outcome,
)
from .tables import format_table, render_grid_rows

__all__ = [
    "MethodSpec",
    "PretrainConfig",
    "EvalProtocol",
    "PretrainOutcome",
    "pretrain",
    "finetune_grid",
    "linear_eval_point",
    "run_method_table",
    "sweep_method_table",
    "untrained_outcome",
    "format_table",
    "render_grid_rows",
]
