"""Pretrain -> evaluate orchestration used by every benchmark table."""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..contrastive import (
    BYOL,
    BYOLTrainer,
    ContrastiveQuantTrainer,
    SimCLRModel,
    SimCLRTrainer,
)
from ..data import DataLoader, TwoViewTransform, simclr_augmentations
from ..data.datasets import ArrayDataset
from ..data.synthetic import SyntheticImages
from ..eval import finetune, linear_evaluation
from ..models import create_encoder
from ..nn.optim import Adam
from ..quant import prepare
from ..telemetry import JsonlLogger, ThroughputMeter
from .config import EvalProtocol, MethodSpec, PretrainConfig

__all__ = [
    "PretrainOutcome",
    "pretrain",
    "finetune_grid",
    "linear_eval_point",
    "run_method_table",
    "sweep_method_table",
    "untrained_outcome",
]

GridKey = Tuple[Optional[int], float]  # (precision, label fraction)


@dataclasses.dataclass
class PretrainOutcome:
    """A pre-trained encoder, stored as reproducible state.

    Downstream evaluations mutate encoders (fine-tuning, precision fixing),
    so each evaluation cell materialises a fresh encoder via
    :meth:`make_encoder` instead of sharing one instance.
    """

    method: MethodSpec
    config: PretrainConfig
    state: Dict[str, np.ndarray]
    history: Dict[str, List[float]]

    def make_encoder(self, quantized: bool = True):
        encoder = create_encoder(
            self.config.encoder,
            width_multiplier=self.config.width_multiplier,
            stem=self.config.stem,
            rng=np.random.default_rng(self.config.seed),
        )
        encoder.load_state_dict(self.state)
        if quantized:
            prepare(encoder)
        return encoder


def _two_view_loader(
    train: ArrayDataset, config: PretrainConfig, seed: int,
    identity_views: bool = False,
) -> DataLoader:
    if identity_views:
        transform = lambda image, _rng: (image, image)  # noqa: E731
    else:
        transform = TwoViewTransform(
            simclr_augmentations(config.augmentation_strength)
        )
    # Order-independent seeding: each sample's augmentation stream derives
    # from (seed, epoch, sample_index), so the produced batches are
    # byte-identical for num_workers = 0 and num_workers = N.
    return DataLoader(
        train,
        batch_size=config.batch_size,
        shuffle=True,
        drop_last=True,
        transform=transform,
        seed=seed,
        num_workers=config.num_workers,
        prefetch_factor=config.prefetch_factor,
    )


def _run_slug(name: str) -> str:
    """Filesystem-safe run name from a method label."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-").lower()
    return slug or "run"


def pretrain(
    method: MethodSpec,
    train: ArrayDataset,
    config: PretrainConfig,
    telemetry_dir: Optional[Union[str, pathlib.Path]] = None,
    callbacks: Tuple = (),
    checkpoint_dir: Optional[Union[str, pathlib.Path]] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    keep_last: int = 3,
) -> PretrainOutcome:
    """Pre-train one method and capture the encoder state.

    The CQ-Quant variant (Sec. 4.5) trains on identity views — quantization
    is its only augmentation — while every other method uses the SimCLR
    augmentation recipe.

    With ``telemetry_dir``, the run is logged as JSONL under that
    directory (one ``<method>.jsonl`` per method) and a machine-readable
    ``<method>-summary.json`` with final loss and throughput is written
    alongside; extra ``callbacks`` are forwarded to ``fit()`` as-is.

    With ``checkpoint_dir``, trainer state is saved every
    ``checkpoint_every`` epochs into ``<checkpoint_dir>/<method-slug>/``
    (atomic, sha256-manifested, ``keep_last`` retained).  ``resume=True``
    continues from the newest valid checkpoint there, bit-exact with the
    uninterrupted run; an empty or fully corrupt directory starts fresh.
    """
    rng = np.random.default_rng(config.seed)
    encoder = create_encoder(
        config.encoder,
        width_multiplier=config.width_multiplier,
        stem=config.stem,
        rng=np.random.default_rng(config.seed),
    )

    if method.base == "byol":
        model = BYOL(
            encoder,
            projection_dim=config.projection_dim,
            momentum=config.byol_momentum,
            rng=rng,
        )
        params = list(model.trainable_parameters())
    else:
        model = SimCLRModel(encoder, projection_dim=config.projection_dim,
                            rng=rng)
        params = list(model.parameters())

    if config.preflight:
        # Symbolic shape propagation over the assembled model: a wrong
        # encoder/head combination raises ShapeError (with the partial
        # per-layer trace) here, before any forward pass or epoch runs.
        from ..analysis import shapecheck

        shapecheck(
            model,
            (config.batch_size,) + tuple(train.images.shape[1:]),
            dtype=train.images.dtype,
        )

    optimizer = Adam(params, lr=config.lr)

    identity_views = False
    if method.is_baseline:
        if method.base == "byol":
            trainer = BYOLTrainer(model, optimizer,
                                  fuse_views=config.fuse_views)
        else:
            trainer = SimCLRTrainer(model, optimizer,
                                    temperature=config.temperature,
                                    fuse_views=config.fuse_views)
    else:
        trainer = ContrastiveQuantTrainer(
            model,
            method.variant,
            method.precision_set,
            optimizer,
            rng=np.random.default_rng(config.seed + 7),
            temperature=config.temperature,
            fuse_views=config.fuse_views,
            engine=config.engine,
        )
        identity_views = trainer.variant.name == "QUANT"

    loader = _two_view_loader(train, config, seed=config.seed + 13,
                              identity_views=identity_views)

    fit_callbacks = list(callbacks)
    logger = meter = None
    if telemetry_dir is not None:
        slug = candidate = _run_slug(method.name)
        suffix = 1
        while (pathlib.Path(telemetry_dir) / f"{candidate}.jsonl").exists():
            candidate = f"{slug}-{suffix}"
            suffix += 1
        logger = JsonlLogger(telemetry_dir, run_name=candidate)
        meter = ThroughputMeter()
        fit_callbacks += [logger, meter]

    resume_from = None
    if checkpoint_dir is not None:
        from ..checkpoint import CheckpointCallback, Checkpointer

        checkpointer = Checkpointer(
            pathlib.Path(checkpoint_dir) / _run_slug(method.name),
            keep_last=keep_last,
            telemetry=logger,
        )
        fit_callbacks.append(
            CheckpointCallback(checkpointer, every=checkpoint_every)
        )
        if resume:
            resume_from = checkpointer

    try:
        history = trainer.fit(loader, epochs=config.epochs,
                              callbacks=tuple(fit_callbacks),
                              resume_from=resume_from)
    finally:
        loader.close()  # stop prefetch workers, if any
    if isinstance(trainer, ContrastiveQuantTrainer):
        trainer.finalize()

    if logger is not None:
        summary = {
            "method": method.name,
            "trainer": type(trainer).__name__,
            "epochs": config.epochs,
            "final_loss": history["loss"][-1] if history["loss"] else None,
            "run_log": logger.path.name,
            **meter.summary(),
        }
        summary_path = logger.directory / f"{logger.run_name}-summary.json"
        summary_path.write_text(json.dumps(summary, indent=2) + "\n",
                                encoding="utf-8")

    return PretrainOutcome(
        method=method,
        config=config,
        state=encoder.state_dict(),
        history=history,
    )


def untrained_outcome(method_name: str, config: PretrainConfig) -> PretrainOutcome:
    """A "No SSL Training" baseline: freshly initialised encoder state."""
    encoder = create_encoder(
        config.encoder,
        width_multiplier=config.width_multiplier,
        stem=config.stem,
        rng=np.random.default_rng(config.seed),
    )
    return PretrainOutcome(
        method=MethodSpec(name=method_name),
        config=config,
        state=encoder.state_dict(),
        history={"loss": []},
    )


def finetune_grid(
    outcome: PretrainOutcome,
    train: ArrayDataset,
    test: ArrayDataset,
    protocol: EvalProtocol,
) -> Dict[GridKey, float]:
    """Fine-tune over the (precision x label-fraction) grid; values in %."""
    results: Dict[GridKey, float] = {}
    for precision in protocol.precisions:
        for fraction in protocol.label_fractions:
            accuracies = []
            for seed_offset in range(protocol.num_seeds):
                encoder = outcome.make_encoder(quantized=True)
                result = finetune(
                    encoder,
                    train,
                    test,
                    label_fraction=fraction,
                    precision=precision,
                    epochs=protocol.finetune_epochs,
                    batch_size=protocol.batch_size,
                    lr=protocol.finetune_lr,
                    rng=np.random.default_rng(protocol.seed + seed_offset),
                )
                accuracies.append(result.test_accuracy_percent)
            results[(precision, fraction)] = float(np.mean(accuracies))
    return results


def linear_eval_point(
    outcome: PretrainOutcome,
    train: ArrayDataset,
    test: ArrayDataset,
    protocol: EvalProtocol,
    precision: Optional[int] = None,
) -> float:
    """Linear-evaluation accuracy (%) for one pre-trained encoder."""
    encoder = outcome.make_encoder(quantized=precision is not None)
    return 100.0 * linear_evaluation(
        encoder,
        train,
        test,
        epochs=protocol.linear_epochs,
        batch_size=protocol.batch_size,
        precision=precision,
        rng=np.random.default_rng(protocol.seed),
    )


def _method_table_job(
    method: MethodSpec,
    train: ArrayDataset,
    test: ArrayDataset,
    config: PretrainConfig,
    protocol: EvalProtocol,
    telemetry_dir: Optional[str] = None,
) -> Dict[GridKey, float]:
    """One sweep job: pretrain one method and fine-tune over the grid.

    Top-level (not a closure) so the process-pool sweep backend can
    pickle it; every argument is a plain dataclass or array dataset.
    """
    outcome = pretrain(method, train, config, telemetry_dir=telemetry_dir)
    return finetune_grid(outcome, train, test, protocol)


def sweep_method_table(
    methods: List[MethodSpec],
    data: SyntheticImages,
    config: PretrainConfig,
    protocol: EvalProtocol,
    jobs: int = 2,
    telemetry_root: Optional[Union[str, pathlib.Path]] = None,
    backend: str = "auto",
):
    """Run one method table as a crash-isolated parallel sweep.

    Returns the :class:`repro.parallel.SweepResult`: per-method grids are
    in ``.values()``, failures carry structured error reports instead of
    aborting the other rows, and each job logs telemetry under its own
    ``telemetry_root`` subdirectory.
    """
    from ..parallel import SweepExecutor, SweepJob

    executor = SweepExecutor(max_workers=jobs, backend=backend,
                             telemetry_root=telemetry_root)
    return executor.run([
        SweepJob(
            name=method.name,
            fn=_method_table_job,
            kwargs={
                "method": method,
                "train": data.train,
                "test": data.test,
                "config": config,
                "protocol": protocol,
            },
        )
        for method in methods
    ])


def run_method_table(
    methods: List[MethodSpec],
    data: SyntheticImages,
    config: PretrainConfig,
    protocol: EvalProtocol,
    jobs: int = 1,
    telemetry_root: Optional[Union[str, pathlib.Path]] = None,
) -> Dict[str, Dict[GridKey, float]]:
    """Pretrain every method and fine-tune over the grid (one table).

    With ``jobs > 1`` the rows run as a process-parallel sweep (order of
    the returned table still follows ``methods``); any failed row raises
    with the collected error reports.
    """
    if jobs > 1:
        sweep = sweep_method_table(
            methods, data, config, protocol, jobs=jobs,
            telemetry_root=telemetry_root,
        ).raise_failures()
        values = sweep.values()
        return {method.name: values[method.name] for method in methods}
    table: Dict[str, Dict[GridKey, float]] = {}
    for method in methods:
        outcome = pretrain(method, data.train, config)
        table[method.name] = finetune_grid(
            outcome, data.train, data.test, protocol
        )
    return table
