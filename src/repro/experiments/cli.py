"""Command-line experiment runner.

Runs a paper-table comparison at a user-chosen scale without writing any
code::

    python -m repro.experiments.cli --methods simclr cq-c --encoder resnet18 \
        --dataset cifar --epochs 8 --fractions 0.1 --precisions fp 4

Prints the fine-tuning grid (and optionally linear evaluation) as an
aligned table.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ..data.synthetic import make_cifar100_like, make_imagenet_like
from .config import EvalProtocol, MethodSpec, PretrainConfig
from .runner import finetune_grid, linear_eval_point, pretrain
from .tables import format_table

__all__ = ["build_parser", "parse_method", "parse_precision", "main"]

_METHOD_CHOICES = ("simclr", "byol", "cq-a", "cq-b", "cq-c", "cq-quant")


def parse_method(name: str, precision_set: str, base: str) -> MethodSpec:
    """Translate a CLI method name into a MethodSpec."""
    key = name.lower()
    if key not in _METHOD_CHOICES:
        raise ValueError(
            f"unknown method {name!r}; choose from {_METHOD_CHOICES}"
        )
    if key == "simclr":
        return MethodSpec("SimCLR", base="simclr")
    if key == "byol":
        return MethodSpec("BYOL", base="byol")
    variant = key.split("-", 1)[1].upper()
    label = f"CQ-{variant} ({precision_set})"
    return MethodSpec(label, variant=variant, precision_set=precision_set,
                      base=base)


def parse_precision(text: str) -> Optional[int]:
    """CLI precision column: "fp" (full precision) or a bit-width."""
    if text.lower() in ("fp", "full", "none"):
        return None
    bits = int(text)
    if not 1 <= bits <= 32:
        raise ValueError(f"precision must be in [1, 32], got {bits}")
    return bits


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Run a Contrastive Quant comparison at chosen scale.",
    )
    parser.add_argument("--methods", nargs="+", default=["simclr", "cq-c"],
                        help=f"any of {_METHOD_CHOICES}")
    parser.add_argument("--base", default="simclr",
                        choices=("simclr", "byol"),
                        help="base framework for CQ variants")
    parser.add_argument("--encoder", default="resnet18")
    parser.add_argument("--width", type=float, default=0.0625,
                        help="channel width multiplier")
    parser.add_argument("--dataset", default="cifar",
                        choices=("cifar", "imagenet"))
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--image-size", type=int, default=12)
    parser.add_argument("--per-class", type=int, default=32)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--precision-set", default="2-8")
    parser.add_argument("--fractions", nargs="+", type=float, default=[0.1])
    parser.add_argument("--precisions", nargs="+", default=["fp"],
                        help='"fp" or bit-widths, e.g. --precisions fp 4')
    parser.add_argument("--finetune-epochs", type=int, default=10)
    parser.add_argument("--linear-eval", action="store_true",
                        help="also run linear evaluation")
    parser.add_argument("--num-workers", type=int, default=0,
                        help="augmentation workers prefetching two-view "
                             "batches ahead of each training step "
                             "(0 = inline; batches are byte-identical "
                             "for any worker count)")
    parser.add_argument("--prefetch-factor", type=int, default=2,
                        help="batches in flight per worker when "
                             "--num-workers > 0 (default 2)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="run the per-method pretrain+eval pipelines "
                             "as a process-parallel sweep with this many "
                             "concurrent jobs (1 = sequential); a failed "
                             "method reports its error without killing "
                             "the other rows")
    parser.add_argument("--telemetry-dir", default=None,
                        help="write JSONL run logs and machine-readable "
                             "run summaries under this directory "
                             "(summarize with python -m repro.telemetry.report)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="save pre-training checkpoints under this "
                             "directory (one subdirectory per method; "
                             "atomic writes + sha256 manifest)")
    parser.add_argument("--resume", action="store_true",
                        help="resume each method's pre-training from the "
                             "newest valid checkpoint in --checkpoint-dir "
                             "(bit-exact; corrupt files are skipped)")
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        help="checkpoint every N epochs (default 1)")
    parser.add_argument("--keep-last", type=int, default=3,
                        help="retain the newest N checkpoints per method "
                             "(best-loss checkpoint is always kept)")
    parser.add_argument("--no-preflight", action="store_true",
                        help="skip the static shapecheck run before "
                             "pre-training (on by default; see "
                             "repro.analysis.shapecheck)")
    parser.add_argument("--engine", default="trace",
                        choices=("trace", "eager"),
                        help="step executor: 'trace' replays compiled "
                             "plans (default), 'eager' runs every step "
                             "through Python dispatch")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def _method_row(
    method: MethodSpec,
    train,
    test,
    config: PretrainConfig,
    protocol: EvalProtocol,
    linear_eval: bool = False,
    telemetry_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    keep_last: int = 3,
) -> List[object]:
    """One table row (module-level so sweep workers can pickle it)."""
    outcome = pretrain(method, train, config,
                       telemetry_dir=telemetry_dir,
                       checkpoint_dir=checkpoint_dir,
                       resume=resume,
                       checkpoint_every=checkpoint_every,
                       keep_last=keep_last)
    grid = finetune_grid(outcome, train, test, protocol)
    row: List[object] = [method.name]
    for precision in protocol.precisions:
        for fraction in protocol.label_fractions:
            row.append(grid[(precision, fraction)])
    if linear_eval:
        row.append(linear_eval_point(outcome, train, test, protocol))
    return row


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")

    maker = make_cifar100_like if args.dataset == "cifar" else make_imagenet_like
    data = maker(
        num_classes=args.classes,
        image_size=args.image_size,
        train_per_class=args.per_class,
        seed=args.seed,
    )
    config = PretrainConfig(
        encoder=args.encoder,
        width_multiplier=args.width,
        epochs=args.epochs,
        batch_size=args.batch_size,
        seed=args.seed,
        preflight=not args.no_preflight,
        num_workers=args.num_workers,
        prefetch_factor=args.prefetch_factor,
        engine=args.engine,
    )
    protocol = EvalProtocol(
        label_fractions=tuple(args.fractions),
        precisions=tuple(parse_precision(p) for p in args.precisions),
        finetune_epochs=args.finetune_epochs,
        finetune_lr=0.02,
        seed=args.seed + 1,
    )

    methods: List[MethodSpec] = [
        parse_method(name, args.precision_set, args.base)
        for name in args.methods
    ]

    headers = ["Method"]
    for precision in protocol.precisions:
        tag = "FP" if precision is None else f"{precision}-bit"
        for fraction in protocol.label_fractions:
            headers.append(f"{tag} {int(round(100 * fraction))}%")
    if args.linear_eval:
        headers.append("Linear")

    failed = []
    if args.jobs > 1:
        from ..parallel import SweepExecutor, SweepJob

        print(f"sweeping {len(methods)} methods across {args.jobs} jobs ...",
              flush=True)
        executor = SweepExecutor(max_workers=args.jobs,
                                 telemetry_root=args.telemetry_dir)
        result = executor.run([
            SweepJob(
                name=method.name,
                fn=_method_row,
                kwargs={
                    "method": method,
                    "train": data.train,
                    "test": data.test,
                    "config": config,
                    "protocol": protocol,
                    "linear_eval": args.linear_eval,
                    "checkpoint_dir": args.checkpoint_dir,
                    "resume": args.resume,
                    "checkpoint_every": args.checkpoint_every,
                    "keep_last": args.keep_last,
                },
            )
            for method in methods
        ])
        print(result.format_table(title=f"sweep ({result.backend} backend, "
                                        f"{result.elapsed_seconds:.1f}s)"))
        by_name = {r.name: r for r in result}
        rows = [
            by_name[m.name].value if by_name[m.name].ok
            else [m.name] + ["FAILED"] * (len(headers) - 1)
            for m in methods
        ]
        failed = result.failed
        for report in failed:
            print(f"\n{report.name} failed:\n{report.traceback}")
    else:
        rows = []
        for method in methods:
            print(f"pre-training {method.name} ...", flush=True)
            rows.append(_method_row(
                method, data.train, data.test, config, protocol,
                linear_eval=args.linear_eval,
                telemetry_dir=args.telemetry_dir,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                checkpoint_every=args.checkpoint_every,
                keep_last=args.keep_last,
            ))

    print()
    print(format_table(headers, rows,
                       title=f"{args.encoder} on {args.dataset}-like data "
                             f"(accuracy %)"))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
