"""Experiment configuration dataclasses.

A :class:`MethodSpec` names one row of a paper table (e.g. "SimCLR",
"CQ-A (6-16)"); a :class:`PretrainConfig` fixes the shared pre-training
budget; an :class:`EvalProtocol` fixes the downstream measurement grid.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

__all__ = ["MethodSpec", "PretrainConfig", "EvalProtocol"]


@dataclasses.dataclass(frozen=True)
class MethodSpec:
    """One pre-training method.

    ``variant=None`` is the vanilla baseline of ``base`` (SimCLR or BYOL);
    otherwise a Contrastive Quant variant name ("A", "B", "C", "QUANT").
    """

    name: str
    variant: Optional[str] = None
    precision_set: str = "6-16"
    base: str = "simclr"

    def __post_init__(self) -> None:
        if self.base not in ("simclr", "byol"):
            raise ValueError(f"base must be simclr or byol, got {self.base!r}")

    @property
    def is_baseline(self) -> bool:
        return self.variant is None


@dataclasses.dataclass(frozen=True)
class PretrainConfig:
    """Shared pre-training budget and model shape."""

    encoder: str = "resnet18"
    width_multiplier: float = 0.0625
    stem: str = "cifar"
    epochs: int = 6
    batch_size: int = 16
    lr: float = 2e-3
    temperature: float = 0.5
    projection_dim: int = 16
    augmentation_strength: float = 0.75
    byol_momentum: float = 0.99
    seed: int = 0
    #: fuse same-precision view pairs into one 2N-batch encoder forward.
    #: Safe to leave on: trainers auto-disable fusion whenever the model
    #: contains batch-statistics layers (BatchNorm/Dropout), so reference
    #: BatchNorm configurations are unaffected.
    fuse_views: bool = True
    #: step execution path: "trace" records one eager step per plan
    #: signature into a replayable plan (fused elementwise chains,
    #: arena-planned buffers; byte-identical to eager, with automatic
    #: eager fallback for untraceable steps), "eager" disables tracing.
    engine: str = "trace"
    #: shapecheck the assembled model against the training data shape
    #: before fit() — a misconfigured encoder/head combination fails
    #: immediately with a layer-by-layer report instead of mid-epoch.
    preflight: bool = True
    #: augmentation workers prefetching batches ahead of the training
    #: step (0 = inline).  The loader's order-independent seeding makes
    #: batches byte-identical for any worker count, so this is a pure
    #: throughput knob.
    num_workers: int = 0
    #: batches in flight per worker when ``num_workers > 0``.
    prefetch_factor: int = 2

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 2:
            raise ValueError(
                f"batch_size must be >= 2 (contrastive losses need pairs), "
                f"got {self.batch_size}"
            )
        if self.num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        if self.prefetch_factor < 1:
            raise ValueError(
                f"prefetch_factor must be >= 1, got {self.prefetch_factor}"
            )
        if self.engine not in ("trace", "eager"):
            raise ValueError(
                f"engine must be 'trace' or 'eager', got {self.engine!r}"
            )


@dataclasses.dataclass(frozen=True)
class EvalProtocol:
    """Downstream evaluation grid (the paper's table columns)."""

    label_fractions: Tuple[float, ...] = (0.1, 0.01)
    precisions: Tuple[Optional[int], ...] = (None, 4)
    finetune_epochs: int = 8
    finetune_lr: float = 0.1
    linear_epochs: int = 20
    batch_size: int = 16
    seed: int = 1
    #: fine-tuning runs are averaged over this many seeds (label subsets
    #: are tiny at 1%, so single-seed cells are dominated by subset luck).
    num_seeds: int = 1

    def __post_init__(self) -> None:
        for fraction in self.label_fractions:
            if not 0 < fraction <= 1:
                raise ValueError(f"bad label fraction {fraction}")
        if self.num_seeds < 1:
            raise ValueError(f"num_seeds must be >= 1, got {self.num_seeds}")

    def column_labels(self) -> Sequence[str]:
        """Human-readable labels matching the paper's table headers."""
        labels = []
        for precision in self.precisions:
            tag = "FP" if precision is None else f"{precision}-bit"
            for fraction in self.label_fractions:
                labels.append(f"{tag} {int(fraction * 100)}% labels")
        return labels
