"""Closed-loop load generator for :class:`~repro.serving.EmbeddingService`.

``run_load`` drives a service with ``concurrency`` client threads, each
sending its next request as soon as the previous one resolves (a
closed-loop, so offered load adapts to service throughput instead of
piling up an unbounded queue).  Inputs are supplied by the caller and
cycled — the generator itself draws no randomness, keeping benchmark
inputs reproducible and lint rule RPR001 trivially satisfied.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .service import EmbeddingService

__all__ = ["LoadReport", "run_load"]


@dataclass(frozen=True)
class LoadReport:
    """Latency/throughput summary of one closed-loop run."""

    label: str
    requests: int
    errors: int
    concurrency: int
    duration_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "requests": self.requests,
            "errors": self.errors,
            "concurrency": self.concurrency,
            "duration_s": round(self.duration_s, 6),
            "qps": round(self.qps, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
        }


def run_load(
    service: EmbeddingService,
    inputs: Sequence[np.ndarray],
    *,
    requests: int,
    concurrency: int = 4,
    timeout: Optional[float] = 60.0,
    label: str = "",
) -> LoadReport:
    """Send ``requests`` samples through ``service``; summarize latency.

    Each of ``concurrency`` client threads claims the next global request
    index, sends ``inputs[index % len(inputs)]``, and blocks on the
    result before claiming another.  Per-request latency covers the full
    submit→result round trip (queueing + batching + forward).
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if not inputs:
        raise ValueError("inputs must be non-empty")
    latencies_ms: List[float] = [0.0] * requests
    failed = [0] * requests
    counter_lock = threading.Lock()
    next_index = [0]

    def _drive() -> None:
        while True:
            with counter_lock:
                index = next_index[0]
                if index >= requests:
                    return
                next_index[0] = index + 1
            sample = inputs[index % len(inputs)]
            started = time.perf_counter()
            try:
                service.embed(sample, timeout=timeout)
            except Exception:
                failed[index] = 1
            latencies_ms[index] = (time.perf_counter() - started) * 1000.0

    threads = [
        threading.Thread(target=_drive, name=f"loadgen-{i}", daemon=True)
        for i in range(min(concurrency, requests))
    ]
    run_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - run_start

    ok = [lat for lat, bad in zip(latencies_ms, failed) if not bad]
    errors = sum(failed)
    series = np.asarray(ok if ok else [0.0], dtype=np.float64)
    return LoadReport(
        label=label,
        requests=requests,
        errors=errors,
        concurrency=len(threads),
        duration_s=duration,
        qps=requests / duration if duration > 0 else 0.0,
        p50_ms=float(np.percentile(series, 50)),
        p99_ms=float(np.percentile(series, 99)),
        mean_ms=float(series.mean()),
    )
