"""Closed-loop load generator for :class:`~repro.serving.EmbeddingService`.

``run_load`` drives a service with ``concurrency`` client threads, each
sending its next request as soon as the previous one resolves (a
closed-loop, so offered load adapts to service throughput instead of
piling up an unbounded queue).  Inputs are supplied by the caller and
cycled — the generator itself draws no randomness, keeping benchmark
inputs reproducible and lint rule RPR001 trivially satisfied.

Driver threads are daemons joined against a shared deadline
(``join_timeout``): a worker hung inside ``service.embed`` cannot wedge
the benchmark process, and instead of silently truncating the report the
outcome is surfaced — :attr:`LoadReport.threads_completed` says how many
drivers finished and :attr:`LoadReport.thread_requests` how many
requests each one completed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .service import EmbeddingService

__all__ = ["LoadReport", "run_load"]


@dataclass(frozen=True)
class LoadReport:
    """Latency/throughput summary of one closed-loop run.

    ``threads_completed`` < ``concurrency`` means some drivers were
    still stuck in ``service.embed`` when ``join_timeout`` expired; the
    latency summary then covers only the requests that finished.
    """

    label: str
    requests: int
    errors: int
    concurrency: int
    duration_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    threads_completed: int = -1
    thread_requests: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.threads_completed < 0:
            object.__setattr__(self, "threads_completed", self.concurrency)

    @property
    def all_threads_completed(self) -> bool:
        return self.threads_completed == self.concurrency

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "requests": self.requests,
            "errors": self.errors,
            "concurrency": self.concurrency,
            "duration_s": round(self.duration_s, 6),
            "qps": round(self.qps, 3),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
            "threads_completed": self.threads_completed,
            "thread_requests": list(self.thread_requests),
        }


def run_load(
    service: EmbeddingService,
    inputs: Sequence[np.ndarray],
    *,
    requests: int,
    concurrency: int = 4,
    timeout: Optional[float] = 60.0,
    join_timeout: Optional[float] = 120.0,
    label: str = "",
) -> LoadReport:
    """Send ``requests`` samples through ``service``; summarize latency.

    Each of ``concurrency`` client threads claims the next global request
    index, sends ``inputs[index % len(inputs)]``, and blocks on the
    result before claiming another.  Per-request latency covers the full
    submit→result round trip (queueing + batching + forward).

    Drivers are joined against one shared ``join_timeout`` deadline
    (``None`` waits forever); threads that miss it are abandoned (they
    are daemons) and reported via ``threads_completed``.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if not inputs:
        raise ValueError("inputs must be non-empty")
    latencies_ms: List[float] = [0.0] * requests
    failed = [0] * requests
    finished = [0] * requests
    counter_lock = threading.Lock()
    next_index = [0]
    num_threads = min(concurrency, requests)
    completed_requests = [0] * num_threads

    def _drive(slot: int) -> None:
        while True:
            with counter_lock:
                index = next_index[0]
                if index >= requests:
                    return
                next_index[0] = index + 1
            sample = inputs[index % len(inputs)]
            started = time.perf_counter()
            try:
                service.embed(sample, timeout=timeout)
            except Exception:
                failed[index] = 1
            latencies_ms[index] = (time.perf_counter() - started) * 1000.0
            finished[index] = 1
            completed_requests[slot] += 1

    threads = [
        threading.Thread(target=_drive, args=(i,), name=f"loadgen-{i}",
                         daemon=True)
        for i in range(num_threads)
    ]
    run_start = time.perf_counter()
    for t in threads:
        t.start()
    deadline = (time.monotonic() + join_timeout
                if join_timeout is not None else None)
    for t in threads:
        if deadline is None:
            t.join()
        else:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
    duration = time.perf_counter() - run_start
    alive = [t for t in threads if t.is_alive()]
    threads_completed = len(threads) - len(alive)

    # Only requests whose drivers finished them count; a hung driver's
    # in-flight slot never set its finished flag and is excluded.
    done = sum(completed_requests)
    ok = [
        lat
        for lat, bad, fin in zip(latencies_ms, failed, finished)
        if fin and not bad
    ]
    errors = sum(failed)
    series = np.asarray(ok if ok else [0.0], dtype=np.float64)
    return LoadReport(
        label=label,
        requests=requests,
        errors=errors,
        concurrency=len(threads),
        duration_s=duration,
        qps=done / duration if duration > 0 else 0.0,
        p50_ms=float(np.percentile(series, 50)),
        p99_ms=float(np.percentile(series, 99)),
        mean_ms=float(series.mean()),
        threads_completed=threads_completed,
        thread_requests=tuple(completed_requests),
    )
