"""Asynchronous embedding service with request micro-batching.

``submit()`` enqueues one sample and returns a :class:`ServingFuture`;
a single batcher thread drains the queue, coalesces up to
``max_batch_size`` requests (waiting at most ``max_wait_ms`` for
stragglers), groups them by input shape, and runs one model forward per
group.  The model is resolved from a :class:`~repro.serving.ModelRegistry`
on every batch, so publishing a new version under the service's name
hot-swaps the weights without a restart.

Concurrency is plain ``threading`` on purpose: process-level parallelism
lives in :mod:`repro.parallel` (lint rule RPR006), and the service is
I/O-shaped — one compute thread, many cheap waiters.  ``ServingFuture``
is a deliberately small Event-backed future rather than an import of
``concurrent.futures``.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import ExecutionEngine
from ..nn.autograd import no_grad
from ..nn.tensor import Tensor
from ..telemetry import MetricsRegistry
from .cache import EmbeddingCache
from .registry import ModelRegistry

__all__ = ["EmbeddingService", "ServingFuture"]

_SHUTDOWN = object()


class ServingFuture:
    """Single-assignment result slot backed by a ``threading.Event``."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until resolved; re-raises a service-side failure."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"embedding not ready within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value


class _Request:
    __slots__ = ("x", "future", "enqueued")

    def __init__(self, x: np.ndarray) -> None:
        self.x = x
        self.future = ServingFuture()
        self.enqueued = time.perf_counter()


class EmbeddingService:
    """Micro-batching embedding server over a registry-resolved model.

    Parameters
    ----------
    registry, model_name:
        Where to resolve the serving model; the *latest* published
        version wins, re-resolved on every batch.
    max_batch_size, max_wait_ms:
        Batching knobs: a batch launches as soon as it is full or the
        oldest request has waited ``max_wait_ms``.
    cache:
        Optional :class:`EmbeddingCache`; hits skip the forward pass
        entirely and are keyed on the resolved model version.
    metrics:
        Optional shared :class:`~repro.telemetry.MetricsRegistry`; the
        service creates a private one when omitted.  Series:
        ``serving.requests`` / ``serving.batches`` / ``serving.errors``
        counters, ``serving.cache_hits`` / ``serving.cache_misses``
        counters, ``serving.engine_plan_hits`` /
        ``serving.engine_plan_misses`` / ``serving.engine_retraces`` /
        ``serving.engine_fallbacks`` counters, ``serving.latency_ms`` /
        ``serving.batch_size`` histograms, all labelled
        ``model=<model_name>``.
    engine:
        ``"trace"`` (default) compiles one forward plan per (model
        version, batch shape) and replays it — buffers come from a
        reusing arena, elementwise chains are fused, and a
        ``Parameter.version`` bump (in-place republish of live weights)
        retraces automatically.  ``"eager"`` runs every forward through
        the module graph.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        model_name: str,
        *,
        max_batch_size: int = 32,
        max_wait_ms: float = 2.0,
        cache: Optional[EmbeddingCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        engine: str = "trace",
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.registry = registry
        self.model_name = model_name
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.engine = ExecutionEngine(mode=engine, training=False)
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._served_key: Optional[Tuple[str, int]] = None
        labels = {"model": model_name}
        self._m_requests = self.metrics.counter("serving.requests", **labels)
        self._m_batches = self.metrics.counter("serving.batches", **labels)
        self._m_errors = self.metrics.counter("serving.errors", **labels)
        self._m_hits = self.metrics.counter("serving.cache_hits", **labels)
        self._m_misses = self.metrics.counter("serving.cache_misses",
                                              **labels)
        self._m_latency = self.metrics.histogram("serving.latency_ms",
                                                 **labels)
        self._m_batch_size = self.metrics.histogram("serving.batch_size",
                                                    **labels)
        self._m_engine = {
            key: self.metrics.counter(f"serving.engine_{key}", **labels)
            for key in ("plan_hits", "plan_misses", "retraces", "fallbacks")
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "EmbeddingService":
        if self._running:
            return self
        self._running = True
        self._thread = threading.Thread(
            target=self._batch_loop,
            name=f"embedding-service[{self.model_name}]",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Drain-free shutdown: pending requests fail with RuntimeError."""
        if not self._running:
            return
        self._running = False
        self._queue.put(_SHUTDOWN)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Request):
                item.future.set_exception(
                    RuntimeError("embedding service stopped")
                )

    def __enter__(self) -> "EmbeddingService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client API --------------------------------------------------------

    def submit(self, x: np.ndarray) -> ServingFuture:
        """Enqueue one sample (no batch axis); returns its future."""
        if not self._running:
            raise RuntimeError(
                "embedding service is not running; call start() or use "
                "it as a context manager"
            )
        request = _Request(np.asarray(x))
        self._m_requests.inc()
        self._queue.put(request)
        return request.future

    def embed(self, x: np.ndarray,
              timeout: Optional[float] = 30.0) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(x).result(timeout)

    def embed_many(self, xs: Sequence[np.ndarray],
                   timeout: Optional[float] = 30.0) -> List[np.ndarray]:
        futures = [self.submit(x) for x in xs]
        return [f.result(timeout) for f in futures]

    def pending(self) -> int:
        return self._queue.qsize()

    # -- batcher thread ----------------------------------------------------

    def _batch_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                if not self._running:
                    return
                continue
            if first is _SHUTDOWN:
                return
            batch = [first]
            deadline = time.perf_counter() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    if remaining > 0:
                        item = self._queue.get(timeout=remaining)
                    else:
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    self._queue.put(_SHUTDOWN)
                    break
                batch.append(item)
            self._run_batch(batch)

    def _run_batch(self, requests: List[_Request]) -> None:
        groups: Dict[Tuple[int, ...], List[_Request]] = {}
        for request in requests:
            groups.setdefault(request.x.shape, []).append(request)
        for group in groups.values():
            self._serve_group(group)

    def _serve_group(self, requests: List[_Request]) -> None:
        done = time.perf_counter  # resolve once; used after the forward
        try:
            entry = self.registry.get(self.model_name)
            model = entry.model
            if entry.key != self._served_key:
                model.eval()
                self._served_key = entry.key
            results: List[Optional[np.ndarray]] = [None] * len(requests)
            misses: List[int] = []
            keys: List[Optional[Tuple[str, int, str]]] = [None] * len(requests)
            if self.cache is not None:
                for i, request in enumerate(requests):
                    keys[i] = self.cache.key(
                        entry.name, entry.version, request.x
                    )
                    results[i] = self.cache.get(keys[i])
                    if results[i] is None:
                        misses.append(i)
                self._m_hits.inc(len(requests) - len(misses))
                self._m_misses.inc(len(misses))
            else:
                misses = list(range(len(requests)))
            if misses:
                stacked = np.stack([requests[i].x for i in misses])
                out = self._forward(model, entry, stacked)
                for row, i in enumerate(misses):
                    results[i] = out[row]
                    if self.cache is not None and keys[i] is not None:
                        self.cache.put(keys[i], out[row])
            self._m_batches.inc()
            self._m_batch_size.observe(float(len(requests)))
            finished = done()
            for request, result in zip(requests, results):
                self._m_latency.observe(
                    (finished - request.enqueued) * 1000.0
                )
                assert result is not None
                request.future.set_result(result)
        except BaseException as exc:  # propagate to callers, keep serving
            self._m_errors.inc(len(requests))
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)

    def _forward(self, model, entry, stacked: np.ndarray) -> np.ndarray:
        """One batched forward, replayed from a compiled plan when possible.

        Plans are keyed on (model version, batch shape): a hot-swap
        publishes a new registry key and traces a fresh plan, while an
        in-place mutation of the served weights bumps
        ``Parameter.version`` and fails the plan's staleness guard, so
        either route retraces instead of serving stale math.
        """
        x = Tensor(stacked, dtype=np.float64)
        signature = (entry.key, stacked.shape, str(x.data.dtype))

        def eager_fn():
            with no_grad():
                return model(x), {}

        before = self.engine.stats()
        result = self.engine.execute(signature, {"x": x}, None, eager_fn)
        for key, counter in self._m_engine.items():
            delta = self.engine.stats()[key] - before[key]
            if delta:
                counter.inc(delta)
        out = np.asarray(result.root)
        if result.replayed:
            # Replay outputs live in arena buffers reused by the next
            # replay of the same plan; copy before rows escape to futures
            # and the embedding cache.
            out = np.array(out, copy=True)
        return out
