"""LRU cache for served embeddings.

Keys bind the *exact* model identity — ``(model name, registry version,
input digest)`` — so publishing a new version under the same name never
serves embeddings computed by its predecessor.  The input digest hashes
dtype, shape, and raw bytes, so two float arrays that merely compare
equal after casting do not collide.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

__all__ = ["EmbeddingCache", "input_digest"]

CacheKey = Tuple[str, int, str]


def input_digest(x: np.ndarray) -> str:
    """Content hash of one input sample (dtype + shape + bytes)."""
    arr = np.ascontiguousarray(x)
    h = hashlib.sha1()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


class EmbeddingCache:
    """Bounded, thread-safe LRU of ``(name, version, digest) → embedding``.

    Stored embeddings are defensively copied on both ``put`` and ``get``
    so callers can mutate what they receive without corrupting the cache.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    @staticmethod
    def key(name: str, version: int, x: np.ndarray) -> CacheKey:
        return (name, version, input_digest(x))

    def get(self, key: CacheKey) -> Optional[np.ndarray]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry.copy()

    def put(self, key: CacheKey, value: np.ndarray) -> None:
        with self._lock:
            self._entries[key] = np.asarray(value).copy()
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries
