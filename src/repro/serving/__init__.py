"""Embedding-serving layer over the integer inference engine.

The deployment story for a converted model
(:func:`repro.quant.convert`):

- :class:`ModelRegistry` — versioned in-process registry; snapshots a
  ``Parameter.version`` fingerprint at publish time so in-place edits of
  a published model are detectable (:meth:`ModelRegistry.is_stale`).
- :class:`EmbeddingService` — async request micro-batching server: one
  batcher thread coalesces ``submit()`` calls into shape-grouped
  batches, resolves the latest published model per batch (hot swap),
  and reports latency/throughput through a
  :class:`repro.telemetry.MetricsRegistry`.
- :class:`EmbeddingCache` — LRU of served embeddings keyed on
  ``(model name, version, input digest)``.
- :func:`run_load` — closed-loop load generator producing a
  :class:`LoadReport` (p50/p99 latency, QPS); the backbone of
  ``benchmarks/bench_serving.py``.
"""

from .cache import EmbeddingCache, input_digest
from .loadgen import LoadReport, run_load
from .registry import ModelRegistry, ModelVersion, fingerprint
from .service import EmbeddingService, ServingFuture

__all__ = [
    "EmbeddingCache",
    "EmbeddingService",
    "LoadReport",
    "ModelRegistry",
    "ModelVersion",
    "ServingFuture",
    "fingerprint",
    "input_digest",
    "run_load",
]
