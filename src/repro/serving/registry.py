"""Versioned in-process model registry for the serving layer.

Serving code never holds a bare model: it asks the registry for a
:class:`ModelVersion` so every embedding can be attributed to the exact
weights that produced it.  Each ``publish()`` snapshots a *fingerprint*
— the sorted ``(parameter_path, Parameter.version)`` pairs of the model
— so the registry can detect when somebody trains or edits a published
model in place (:meth:`ModelRegistry.is_stale`).  Converted integer
models (:mod:`repro.quant.lowered`) carry their weights in buffers, not
Parameters; their fingerprint is empty and they are frozen by
construction, so they can never go stale.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..nn.module import Module

__all__ = ["ModelRegistry", "ModelVersion", "fingerprint"]

Fingerprint = Tuple[Tuple[str, int], ...]


def fingerprint(model: Module) -> Fingerprint:
    """Sorted ``(path, Parameter.version)`` pairs identifying the weights.

    ``Parameter.data`` assignment bumps the version counter, so any
    optimizer step, EMA update, or quantization surgery on a published
    model changes its fingerprint.
    """
    return tuple(sorted(
        (path, p.version) for path, p in model.named_parameters()
    ))


class ModelVersion:
    """One published (name, version) snapshot: the model plus its identity."""

    def __init__(self, name: str, version: int, model: Module,
                 fp: Fingerprint, tags: Tuple[str, ...] = ()) -> None:
        self.name = name
        self.version = version
        self.model = model
        self.fingerprint = fp
        self.tags = tuple(tags)

    @property
    def key(self) -> Tuple[str, int]:
        return (self.name, self.version)

    def is_stale(self) -> bool:
        """True if the model's Parameters changed since ``publish()``."""
        return fingerprint(self.model) != self.fingerprint

    def __repr__(self) -> str:
        tag = f", tags={list(self.tags)}" if self.tags else ""
        return f"ModelVersion({self.name!r}, v{self.version}{tag})"


class ModelRegistry:
    """Thread-safe name → ordered list of :class:`ModelVersion`.

    Versions are monotonic per name, assigned at ``publish()`` time.
    ``get(name)`` resolves the latest version, which is how a running
    :class:`~repro.serving.EmbeddingService` picks up a newly published
    model without restarting.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: Dict[str, List[ModelVersion]] = {}

    def publish(self, name: str, model: Module,
                tags: Tuple[str, ...] = ()) -> ModelVersion:
        """Register ``model`` under ``name``; returns the new version."""
        with self._lock:
            existing = self._versions.setdefault(name, [])
            entry = ModelVersion(
                name, len(existing) + 1, model, fingerprint(model), tags
            )
            existing.append(entry)
            return entry

    def get(self, name: str,
            version: Optional[int] = None) -> ModelVersion:
        """Resolve ``name`` (latest, or a specific ``version``)."""
        with self._lock:
            try:
                versions = self._versions[name]
            except KeyError:
                raise KeyError(
                    f"no model published under {name!r}; "
                    f"known: {sorted(self._versions)}"
                ) from None
            if version is None:
                return versions[-1]
            if not 1 <= version <= len(versions):
                raise KeyError(
                    f"{name!r} has versions 1..{len(versions)}, "
                    f"not {version}"
                )
            return versions[version - 1]

    def latest_version(self, name: str) -> int:
        return self.get(name).version

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def is_stale(self, name: str, version: Optional[int] = None) -> bool:
        """True if the published snapshot no longer matches its weights."""
        return self.get(name, version).is_stale()

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._versions

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._versions.values())
