"""Runtime concurrency sanitizer: instrumented locks + write tracking.

The static rules in :mod:`repro.analysis.concurrency` prove what they
can see; this module watches what actually happens.  While enabled it
replaces ``threading.Lock``/``threading.RLock`` with wrappers that
record, per thread, the stack of locks currently held and every
*order edge* (lock B acquired while A was held).  Two detectors run on
that stream:

- **Lock-order inversion**: the first time an edge ``B → A`` appears
  whose reverse ``A → B`` was already observed (from any thread), a
  report is filed with both acquisition sites.  This catches the
  deadlock *potential* deterministically — no unlucky interleaving
  needed, sequential executions of the two paths suffice.
- **Unguarded shared writes** (Eraser-style lockset): instances
  registered with :func:`track` have attribute rebinds intercepted.
  Each ``(instance, attribute)`` starts *exclusive* to its first
  writing thread; once a second thread writes, the candidate lockset is
  the intersection of the locksets held at every cross-thread write.
  An empty intersection means no single lock guards the field — a data
  race, again detected without needing the racy interleaving itself.

Enablement:

- ``REPRO_SANITIZE=1`` (any non-empty value except ``0``) plus the
  autouse pytest fixture in ``tests/conftest.py`` wraps every test in
  ``enable()``/``assert_clean()``/``disable()``.
- Programmatic: the :func:`sanitized` context manager, or
  ``enable()``/``disable()`` directly.

Limitations (by design, to stay dependency-free and cheap): locks
created *before* ``enable()`` are not instrumented; write tracking sees
attribute rebinds (``self.x = ...``, ``self.x += ...``), not in-place
container mutation (``self.xs.append(...)``).
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
import traceback
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Type

__all__ = [
    "Report",
    "SanitizerError",
    "SanitizedLock",
    "SanitizedRLock",
    "assert_clean",
    "disable",
    "enable",
    "enabled",
    "reports",
    "reset",
    "sanitize_enabled",
    "sanitized",
    "track",
]

#: the real factories, captured before any monkeypatching.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_STACK_LIMIT = 12


class SanitizerError(AssertionError):
    """Raised by :func:`assert_clean` when the sanitizer has reports."""


@dataclasses.dataclass(frozen=True)
class Report:
    """One detected hazard."""

    kind: str  # "lock-order-inversion" | "unguarded-write"
    message: str
    details: str = ""

    def render(self) -> str:
        body = f"[{self.kind}] {self.message}"
        if self.details:
            body += "\n" + self.details
        return body


def _site(skip: int = 3) -> str:
    frames = traceback.extract_stack(limit=_STACK_LIMIT + skip)[:-skip]
    keep = [
        f"  {f.filename}:{f.lineno} in {f.name}"
        for f in frames
        if "repro/analysis/sanitize" not in f.filename.replace(os.sep, "/")
    ]
    return "\n".join(keep[-_STACK_LIMIT:])


class _Monitor:
    """Global sanitizer state: order graph, locksets, write shadow."""

    def __init__(self) -> None:
        self._state_lock = _REAL_LOCK()
        self.enabled_lock_free = False
        self._tls = threading.local()
        self._edges: Dict[Tuple[int, int], str] = {}
        self._names: Dict[int, str] = {}
        self._shadow: Dict[Tuple[int, str], Dict[str, object]] = {}
        self._tracked: Dict[int, Tuple[object, str]] = {}
        self._reports: List[Report] = []
        self._reported_keys: Set[Tuple[str, object]] = set()

    # -- per-thread held stack -------------------------------------------

    def _held(self) -> List[Tuple[int, int]]:
        """This thread's held locks as ``[lock_id, depth]`` entries."""
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    # -- lock events -----------------------------------------------------

    def on_acquire(self, lock_id: int, name: str, reentrant: bool) -> None:
        if not self.enabled_lock_free:
            return
        held = self._held()
        for entry in held:
            if entry[0] == lock_id:
                if reentrant:
                    entry[1] += 1
                    return
                break
        site = _site()
        with self._state_lock:
            self._names[lock_id] = name
            for other_id, _depth in held:
                if other_id == lock_id:
                    continue
                edge = (other_id, lock_id)
                if edge not in self._edges:
                    self._edges[edge] = site
                    reverse = self._edges.get((lock_id, other_id))
                    if reverse is not None:
                        key = ("lock-order-inversion",
                               frozenset((lock_id, other_id)))
                        if key not in self._reported_keys:
                            self._reported_keys.add(key)
                            a = self._names.get(other_id, "?")
                            b = self._names.get(lock_id, "?")
                            self._reports.append(Report(
                                "lock-order-inversion",
                                f"{b} acquired while holding {a}, but the "
                                f"opposite order {a}-under-{b} was also "
                                f"observed; these paths can deadlock",
                                f"--- {a} -> {b} at:\n{site}\n"
                                f"--- {b} -> {a} at:\n{reverse}",
                            ))
        held.append([lock_id, 1])

    def on_release(self, lock_id: int) -> None:
        if not self.enabled_lock_free:
            return
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] == lock_id:
                held[i][1] -= 1
                if held[i][1] == 0:
                    del held[i]
                return

    def held_lockset(self) -> FrozenSet[int]:
        return frozenset(entry[0] for entry in self._held())

    # -- write tracking --------------------------------------------------

    def track(self, obj: object, name: Optional[str]) -> None:
        with self._state_lock:
            self._tracked[id(obj)] = (obj, name or type(obj).__name__)

    def is_tracked_lock_free(self, obj: object) -> bool:
        return id(obj) in self._tracked

    def on_write(self, obj: object, attr: str) -> None:
        if not self.enabled_lock_free:
            return
        lockset = self.held_lockset()
        tid = threading.get_ident()
        site = _site()
        with self._state_lock:
            entry = self._tracked.get(id(obj))
            if entry is None:
                return
            label = f"{entry[1]}.{attr}"
            key = (id(obj), attr)
            shadow = self._shadow.get(key)
            if shadow is None:
                self._shadow[key] = {
                    "owner": tid,
                    "lockset": None,  # exclusive: no candidates yet
                    "sites": {tid: site},
                }
                return
            shadow["sites"][tid] = site
            if shadow["lockset"] is None:
                if shadow["owner"] == tid:
                    return  # still exclusive to the first thread
                shadow["lockset"] = lockset
            else:
                shadow["lockset"] = shadow["lockset"] & lockset
            if shadow["lockset"]:
                return
            report_key = ("unguarded-write", key)
            if report_key in self._reported_keys:
                return
            self._reported_keys.add(report_key)
            sites = "\n".join(
                f"--- thread {t} wrote at:\n{s}"
                for t, s in sorted(shadow["sites"].items())
            )
            self._reports.append(Report(
                "unguarded-write",
                f"{label} written by multiple threads with no common "
                f"lock held; concurrent read-modify-writes can be lost",
                sites,
            ))

    # -- reporting -------------------------------------------------------

    def reports(self) -> List[Report]:
        with self._state_lock:
            return list(self._reports)

    def reset(self) -> None:
        with self._state_lock:
            self._edges.clear()
            self._names.clear()
            self._shadow.clear()
            self._tracked.clear()
            self._reports.clear()
            self._reported_keys.clear()
        self._tls = threading.local()


_monitor = _Monitor()


# ---------------------------------------------------------------------------
# instrumented locks
# ---------------------------------------------------------------------------


class SanitizedLock:
    """Drop-in ``threading.Lock`` reporting to the sanitizer monitor.

    Deliberately does *not* define ``_release_save``/``_acquire_restore``
    so ``threading.Condition`` uses its documented release()/acquire()
    fallback through the wrapper.
    """

    _reentrant = False

    def __init__(self, name: Optional[str] = None) -> None:
        self._inner = _REAL_LOCK()
        self._name = name or f"{type(self).__name__}@{id(self):#x}"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            _monitor.on_acquire(id(self), self._name, self._reentrant)
        return got

    def release(self) -> None:
        _monitor.on_release(id(self))
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:  # pragma: no cover - fork safety
        self._inner._at_fork_reinit()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._name} {self._inner!r}>"


class SanitizedRLock(SanitizedLock):
    """Drop-in ``threading.RLock``; owner-aware for ``Condition``."""

    _reentrant = True

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._inner = _REAL_RLOCK()

    # Condition integration: these mirror threading._RLock's private
    # protocol so `Condition(SanitizedRLock())` (and Condition() after
    # install) keeps exact CPython semantics, with held-stack
    # bookkeeping wrapped around the full release/reacquire.
    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self):
        state = self._inner._release_save()
        _monitor.on_release(id(self))
        return state

    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)
        _monitor.on_acquire(id(self), self._name, True)


# ---------------------------------------------------------------------------
# write tracking
# ---------------------------------------------------------------------------

_patched_setattr: Dict[Type, object] = {}


def track(obj: object, name: Optional[str] = None) -> object:
    """Register ``obj`` for unguarded-shared-write detection.

    Patches the *class* ``__setattr__`` once (subsequent instances cost
    one dict lookup) and shadows every attribute rebind on registered
    instances.  Returns ``obj`` for chaining.
    """
    cls = type(obj)
    if cls not in _patched_setattr:
        original = cls.__setattr__

        def _sanitized_setattr(self, attr, value, _original=original):
            if _monitor.enabled_lock_free and \
                    _monitor.is_tracked_lock_free(self):
                _monitor.on_write(self, attr)
            _original(self, attr, value)

        cls.__setattr__ = _sanitized_setattr
        _patched_setattr[cls] = original
    _monitor.track(obj, name)
    return obj


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


def sanitize_enabled() -> bool:
    """True when the ``REPRO_SANITIZE`` env flag requests sanitizing."""
    value = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    return value not in ("", "0", "false", "off", "no")


def enabled() -> bool:
    """True while the sanitizer is actively recording."""
    return _monitor.enabled_lock_free


def enable() -> None:
    """Patch ``threading.Lock``/``RLock`` and start recording.

    Idempotent.  Locks created before this call are not instrumented.
    """
    if threading.Lock is not SanitizedLock:
        threading.Lock = SanitizedLock  # type: ignore[assignment]
    if threading.RLock is not SanitizedRLock:
        threading.RLock = SanitizedRLock  # type: ignore[assignment]
    _monitor.enabled_lock_free = True


def disable() -> None:
    """Stop recording and restore the real lock factories.

    Already-created sanitized locks keep working (their wrappers become
    pass-throughs); recorded reports survive until :func:`reset`.
    """
    _monitor.enabled_lock_free = False
    if threading.Lock is SanitizedLock:
        threading.Lock = _REAL_LOCK  # type: ignore[assignment]
    if threading.RLock is SanitizedRLock:
        threading.RLock = _REAL_RLOCK  # type: ignore[assignment]


def reset() -> None:
    """Drop all recorded state: edges, shadows, tracked objects, reports."""
    _monitor.reset()


def reports() -> List[Report]:
    """The hazards recorded since the last :func:`reset`."""
    return _monitor.reports()


def assert_clean() -> None:
    """Raise :class:`SanitizerError` when any hazard was recorded."""
    found = _monitor.reports()
    if found:
        rendered = "\n\n".join(r.render() for r in found)
        raise SanitizerError(
            f"concurrency sanitizer recorded {len(found)} hazard(s):\n"
            f"{rendered}"
        )


@contextlib.contextmanager
def sanitized(check: bool = True):
    """``with sanitized():`` — enable, run, assert clean, disable.

    Pass ``check=False`` to collect reports without raising (inspect
    :func:`reports` afterwards).
    """
    reset()
    enable()
    try:
        yield _monitor
        if check:
            assert_clean()
    finally:
        disable()
