"""AUD006: static aliasing verification of compiled engine plans.

The arena planner (:func:`repro.engine.arena.plan_buffers`) hands freed
buffers to later slots.  That is only sound under three invariants,
which this module *re-proves* against the plan a
:class:`~repro.engine.plan.Plan` actually compiled — independently
re-deriving liveness from the records rather than trusting the
planner's own bookkeeping:

1. **Liveness** — when two planned slots physically share storage
   (``np.shares_memory`` over the real arena buffers), the earlier
   slot's last reader must run strictly before the later slot's write.
   A violation means some step reads a value the arena already let a
   later op clobber.
2. **Pinned privacy** — the root, every named output, every view-op
   input, and every generic-fallback slot must hold a private
   ``("slot", i)`` key, and a pinned slot that owns arena storage must
   not share it with any other planned slot.  Root/output buffers
   escape the replay inside :class:`~repro.engine.plan.ReplayResult`;
   if they aliased pooled storage, results would mutate under the
   caller before they could copy.
3. **View pinning** — inputs of ``Reshape``/``Transpose``/``GetItem``
   must be pinned: their outputs alias the input's storage, so pooling
   the input would silently pool the view too.

Verification runs in three ways: explicitly via :func:`verify_plan`;
automatically from :func:`repro.engine.plan.compile_plan` when
``verify=True`` or ``REPRO_PLAN_VERIFY=1`` (debug/CI mode — hazards
raise ``PlanError``); and as a CLI sweep over the bench-canonical
models::

    PYTHONPATH=src python -m repro.analysis.plans

which traces resnet18 (GroupNorm, train and inference) and
mobilenet_v2 (eval-mode inference), then verifies every plan in each
engine's cache.
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .findings import ERROR, Finding, exit_code, render_json, render_text

__all__ = ["verify_plan", "main"]


def _slot_refs(record) -> List[Any]:
    from ..engine.graph import DataRef, SlotRef

    refs = []
    for ref in list(record.args) + list(record.kwargs.values()):
        if isinstance(ref, (SlotRef, DataRef)):
            refs.append(ref)
    return refs


def _derive_last_uses(records) -> Dict[int, int]:
    """Index of the last record reading each slot (independent of arena)."""
    last: Dict[int, int] = {}
    for i, record in enumerate(records):
        for ref in _slot_refs(record):
            last[ref.index] = i
    return last


def _derive_pinned(plan) -> set:
    """Slots that must keep private storage, re-derived from records."""
    from ..engine.plan import _VIEW_OPS

    records = plan.records
    pinned = set()
    for i, record in enumerate(records):
        if record.op in _VIEW_OPS:
            pinned.add(i)  # view outputs are never planned
            for ref in _slot_refs(record):
                pinned.add(ref.index)  # ...and their inputs stay private
    pinned.add(plan._root_slot)
    pinned.update(plan._output_slots.values())
    return pinned


def verify_plan(plan, label: str = "plan") -> List[Finding]:
    """Prove the AUD006 invariants for one compiled plan.

    Returns an empty list when the plan is sound; otherwise one
    error-severity ``AUD006`` finding per violated invariant, located at
    the offending record index (``line`` is the record's position in the
    compiled schedule).
    """
    loc = f"<plan:{label}>"
    findings: List[Finding] = []
    records = plan.records
    keys: Dict[int, Any] = getattr(plan, "_buffer_keys", None) or {}
    buffers: Dict[int, np.ndarray] = getattr(plan, "_planned_buffers", {})
    last = _derive_last_uses(records)
    pinned = _derive_pinned(plan)

    # 2a. Private keys for everything that escapes or is aliased by a view.
    for i in sorted(pinned):
        key = keys.get(i)
        if key is not None and key != ("slot", i):
            what = "root" if i == plan._root_slot else (
                "output" if i in plan._output_slots.values()
                else "view-adjacent slot"
            )
            findings.append(Finding(
                loc, i, "AUD006", ERROR,
                f"{what} slot {i} ({records[i].op.__name__}) was given "
                f"pooled arena key {key!r}; it must own private storage "
                f"('slot', {i})",
            ))

    slots = sorted(buffers)
    for a in range(len(slots)):
        i = slots[a]
        for b in range(a + 1, len(slots)):
            j = slots[b]
            if not np.shares_memory(buffers[i], buffers[j]):
                continue
            # 2b. Pinned storage may not be shared at all.
            if i in pinned or j in pinned:
                p = i if i in pinned else j
                other = j if p == i else i
                findings.append(Finding(
                    loc, p, "AUD006", ERROR,
                    f"pinned slot {p} ({records[p].op.__name__}) shares "
                    f"arena storage with slot {other} "
                    f"({records[other].op.__name__}); pinned buffers "
                    f"escape the replay and must be private",
                ))
                continue
            # 1. Reuse is legal only after the earlier slot's last read.
            last_read = last.get(i, -1)
            if last_read >= j:
                findings.append(Finding(
                    loc, j, "AUD006", ERROR,
                    f"slot {j} ({records[j].op.__name__}) overwrites the "
                    f"buffer of slot {i} ({records[i].op.__name__}), but "
                    f"slot {i} is still read at record {last_read} "
                    f"(liveness violation: stale-read hazard)",
                ))

    return findings


# ---------------------------------------------------------------------------
# CLI sweep over the bench-canonical models
# ---------------------------------------------------------------------------

_IMAGE_SIZE = 8
_WIDTH = 0.0625


def _train_plans(batch: int) -> Dict[str, Any]:
    """Trace CQ training steps on the bench resnet18 config."""
    from ..contrastive import ContrastiveQuantTrainer, CQVariant, SimCLRModel
    from ..models import resnet18
    from ..nn.optim import Adam

    encoder = resnet18(stem="cifar", width_multiplier=_WIDTH,
                       rng=np.random.default_rng(0), norm="group")
    model = SimCLRModel(encoder, projection_dim=16,
                        rng=np.random.default_rng(1), head_norm="layer")
    trainer = ContrastiveQuantTrainer(
        model,
        CQVariant.A,
        "2-8",
        Adam(model.parameters(), lr=1e-3),
        rng=np.random.default_rng(0),
        fuse_views=True,
        weight_cache=True,
        engine="trace",
    )
    rng = np.random.default_rng(42)
    shape = (batch, 3, _IMAGE_SIZE, _IMAGE_SIZE)
    for _ in range(3):  # trace, then replay at least once
        v1 = rng.normal(size=shape).astype(np.float32)
        v2 = rng.normal(size=shape).astype(np.float32)
        trainer.train_step(v1, v2)
    return {
        f"resnet18-train:{sig}": plan
        for sig, plan in trainer.engine.plans().items()
    }


def _inference_plans(batch: int) -> Dict[str, Any]:
    """Trace eval-mode forwards for both bench encoders."""
    from ..engine import ExecutionEngine
    from ..models import mobilenet_v2, resnet18
    from ..nn.autograd import no_grad
    from ..nn.tensor import Tensor

    models = {
        "resnet18-infer": resnet18(stem="cifar", width_multiplier=_WIDTH,
                                   rng=np.random.default_rng(0),
                                   norm="group"),
        # BatchNorm blocks training-mode tracing; eval() replays running
        # statistics and is the serving configuration anyway.
        "mobilenet_v2-infer": mobilenet_v2(width_multiplier=0.25,
                                           rng=np.random.default_rng(0)),
    }
    plans: Dict[str, Any] = {}
    rng = np.random.default_rng(7)
    for name, model in models.items():
        model.eval()
        engine = ExecutionEngine(mode="trace", training=False)
        x = Tensor(
            rng.normal(size=(batch, 3, _IMAGE_SIZE, _IMAGE_SIZE)),
            dtype=np.float64,
        )

        def eager_fn(model=model, x=x):
            with no_grad():
                return model(x), {}

        signature = (name, x.data.shape, str(x.data.dtype))
        for _ in range(2):  # trace, then one replay
            engine.execute(signature, {"x": x}, None, eager_fn)
        for sig, plan in engine.plans().items():
            plans[f"{name}:{sig}"] = plan
    return plans


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.plans",
        description="AUD006 sweep: verify buffer aliasing of every plan "
                    "the bench-canonical models compile",
    )
    parser.add_argument("--batch", type=int, default=4,
                        help="per-view batch size for the traced steps")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    args = parser.parse_args(argv)

    plans = {}
    plans.update(_train_plans(args.batch))
    plans.update(_inference_plans(args.batch))
    if not plans:
        print("no plans were compiled; nothing to verify")
        return 1

    findings: List[Finding] = []
    for label, plan in sorted(plans.items()):
        findings.extend(verify_plan(plan, label=label))

    if args.format == "json":
        print(render_json(findings))
    else:
        if findings:
            print(render_text(findings))
        print(f"AUD006: verified {len(plans)} plan(s), "
              f"{len(findings)} violation(s)")
    return exit_code(findings)


if __name__ == "__main__":
    raise SystemExit(main())
