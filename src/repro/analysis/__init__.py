"""Static analysis for the repro codebase.

Two pillars, one :class:`~repro.analysis.findings.Finding` vocabulary:

- :mod:`repro.analysis.graph` — static model auditor: symbolic
  shape/dtype propagation (:func:`shapecheck`) plus module-tree audits
  (quantization coverage, parameter registration, batch statistics,
  state-dict symmetry).  CLI: ``python -m repro.analysis.graph``.
- :mod:`repro.analysis.lint` — AST invariant linter with stable
  ``RPRxxx`` codes and ``# noqa`` suppression, including the
  lock-discipline rules RPR009-RPR011 from
  :mod:`repro.analysis.concurrency`.  CLI:
  ``python -m repro.analysis.lint src/``.

Two concurrency companions share the vocabulary:

- :mod:`repro.analysis.plans` — AUD006 static plan-aliasing verifier
  over compiled :class:`~repro.engine.plan.Plan` buffers.  CLI:
  ``python -m repro.analysis.plans``.
- :mod:`repro.analysis.sanitize` — runtime lock-order/lockset
  sanitizer (``REPRO_SANITIZE=1``), dynamic counterpart to RPR009/010.

The CLIs exit nonzero iff any error-severity finding exists, which is
what the CI ``analysis`` job gates on.

Exports resolve lazily (PEP 562) so ``python -m repro.analysis.lint``
does not import the model stack, and runpy never sees the submodule
pre-imported.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "Finding": "findings",
    "ERROR": "findings",
    "WARNING": "findings",
    "INFO": "findings",
    "render_text": "findings",
    "render_json": "findings",
    "render_github": "findings",
    "sort_findings": "findings",
    "exit_code": "findings",
    "LockEdge": "concurrency",
    "analyze_tree": "concurrency",
    "cycle_findings": "concurrency",
    "verify_plan": "plans",
    "ShapeEntry": "graph",
    "ShapeReport": "graph",
    "ShapeError": "graph",
    "register_shape_handler": "graph",
    "shapecheck": "graph",
    "QuantLayerEntry": "graph",
    "QuantizationReport": "graph",
    "audit_quantization": "graph",
    "audit_parameters": "graph",
    "audit_batch_statistics": "graph",
    "audit_state_dict": "graph",
    "audit_model": "graph",
    "RULES": "lint",
    "SANCTIONED": "lint",
    "lint_source": "lint",
    "lint_file": "lint",
    "lint_paths": "lint",
    "discover_autograd_functions": "functions",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(f".{_EXPORTS[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from .concurrency import LockEdge, analyze_tree, cycle_findings
    from .findings import (ERROR, INFO, WARNING, Finding, exit_code,
                           render_github, render_json, render_text,
                           sort_findings)
    from .functions import discover_autograd_functions
    from .plans import verify_plan
    from .graph import (QuantizationReport, QuantLayerEntry, ShapeEntry,
                        ShapeError, ShapeReport, audit_batch_statistics,
                        audit_model, audit_parameters, audit_quantization,
                        audit_state_dict, register_shape_handler,
                        shapecheck)
    from .lint import (RULES, SANCTIONED, lint_file, lint_paths,
                       lint_source)
