"""Static lock-discipline analysis (rules RPR009, RPR010, RPR011).

The serving/retrieval layers share mutable state across threads (batcher
thread + callers, loadgen drivers, registry publishers), so this module
extends the AST linter with three concurrency rules:

RPR009
    A class that owns a lock (an attribute whose name contains ``lock``,
    acquired via ``with self._lock:`` or assigned from
    ``threading.Lock()``/``RLock()``) has *guarded* attributes: anything
    written under that lock.  Reading or writing a guarded attribute in
    a public method without the lock held is a data race in waiting —
    torn reads of paired fields, lost updates.  Suppress per line with
    ``# noqa: RPR009`` or opt an attribute/method out of the discipline
    by naming it with a ``_lock_free`` suffix (the convention documents
    the intent in the code itself).

RPR010
    Lock-order violations: the analysis derives a static lock-order
    graph — acquiring ``B`` while holding ``A`` adds the edge ``A → B``
    — and reports every cycle (two call paths acquiring the same pair of
    locks in opposite order can deadlock).  Two local hazards are
    flagged at their site: re-acquiring a *non-reentrant*
    ``threading.Lock`` already held (guaranteed self-deadlock), and
    calling a caller-supplied callable while holding a lock (the
    callback can acquire arbitrary locks, making the order graph
    unknowable).

RPR011
    Threads and futures that can leak: ``threading.Thread(...)`` created
    without ``daemon=`` and with no ``join()`` (or ``.daemon =``
    assignment) in scope outlives interpreter teardown silently; a
    ``try`` block that calls ``set_result`` whose ``except`` handler
    neither calls ``set_exception`` nor re-raises leaves waiters blocked
    forever when the producer fails.

The lock-order graph is *global*: :func:`analyze_tree` returns per-file
:class:`LockEdge` records and ``lint_paths`` aggregates them across the
whole tree before calling :func:`cycle_findings`, so an inversion split
across two modules is still caught.  Lock identity is best-effort
static naming: ``self._lock`` inside ``class C`` is node ``C._lock``, a
local ``foo_lock`` in function ``f`` is ``f:foo_lock``, and a lock on a
foreign object merges by attribute name as ``?.attr``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import ERROR, Finding

__all__ = ["LockEdge", "analyze_tree", "cycle_findings"]

#: attribute/variable name tokens that mark a threading lock.
_LOCK_TOKENS = frozenset({"lock", "rlock", "mutex"})

#: suffix opting an attribute or method out of the RPR009 discipline.
_LOCK_FREE_SUFFIX = "_lock_free"

#: dunder methods checked as public entry points by RPR009 (lifecycle
#: and representation dunders are exempt: they run during single-threaded
#: setup/teardown or debugging, and ``__enter__``/``__exit__`` usually
#: manage the lock itself).
_CHECKED_DUNDERS = frozenset({
    "__len__", "__contains__", "__iter__", "__getitem__", "__setitem__",
    "__delitem__", "__call__", "__next__", "__bool__",
})

_THREADING_CTORS = frozenset({
    "Lock", "RLock", "Thread", "Condition", "Semaphore",
    "BoundedSemaphore",
})


def _is_lockish(name: str) -> bool:
    lowered = name.lower()
    if lowered.endswith(_LOCK_FREE_SUFFIX):
        return False
    return any(tok in _LOCK_TOKENS for tok in lowered.split("_"))


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` (or ``cls.X``) -> ``X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return None


def _write_root(target: ast.AST) -> Optional[str]:
    """The self-attribute a store ultimately mutates.

    ``self.x = v`` and ``self.x[i] = v`` and ``self.x.y = v`` all mutate
    the object reachable through ``self.x``.
    """
    while True:
        if isinstance(target, ast.Subscript):
            target = target.value
        elif (
            isinstance(target, ast.Attribute)
            and not isinstance(target.value, ast.Name)
        ):
            target = target.value
        else:
            break
    return _self_attr(target)


@dataclasses.dataclass(frozen=True)
class LockEdge:
    """One observed nesting: ``second`` acquired while ``first`` held."""

    first: str
    second: str
    file: str
    line: int


@dataclasses.dataclass(frozen=True)
class _Aliases:
    """How ``threading`` is visible in one module."""

    modules: frozenset  # names bound to the threading module
    names: Dict[str, str]  # local name -> threading constructor name


def _threading_aliases(tree: ast.Module) -> _Aliases:
    modules: Set[str] = set()
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "threading":
                    modules.add(alias.asname or "threading")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "threading" and node.level == 0:
                for alias in node.names:
                    if alias.name in _THREADING_CTORS:
                        names[alias.asname or alias.name] = alias.name
    return _Aliases(frozenset(modules), names)


def _threading_ctor(call: ast.Call, aliases: _Aliases) -> Optional[str]:
    """``threading.Lock()`` / imported ``Lock()`` -> ctor name, else None."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in aliases.modules
        and func.attr in _THREADING_CTORS
    ):
        return func.attr
    if isinstance(func, ast.Name) and func.id in aliases.names:
        return aliases.names[func.id]
    return None


# ---------------------------------------------------------------------------
# RPR009: guarded attributes accessed without the lock
# ---------------------------------------------------------------------------


def _class_methods(cls: ast.ClassDef) -> List[ast.FunctionDef]:
    return [
        stmt for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _with_self_locks(node: ast.With, lock_attrs: Set[str]) -> int:
    """How many of the with-items acquire one of the class's locks."""
    count = 0
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and attr in lock_attrs:
            count += 1
    return count


class _GuardedCollector(ast.NodeVisitor):
    """Attributes written while one of the class's locks is held."""

    def __init__(self, lock_attrs: Set[str]) -> None:
        self.lock_attrs = lock_attrs
        self.guarded: Set[str] = set()
        self._held = 0

    # Closures may run long after the lock is dropped; neither collect
    # from nor descend into nested definitions.
    def visit_FunctionDef(self, node):
        return

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> None:
        acquired = _with_self_locks(node, self.lock_attrs)
        self._held += acquired
        for stmt in node.body:
            self.visit(stmt)
        self._held -= acquired

    visit_AsyncWith = visit_With

    def _note_targets(self, targets: Sequence[ast.AST]) -> None:
        if not self._held:
            return
        stack = list(targets)
        while stack:
            target = stack.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                stack.extend(target.elts)
                continue
            attr = _write_root(target)
            if attr is not None:
                self.guarded.add(attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_targets(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_targets([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_targets([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._note_targets(node.targets)
        self.generic_visit(node)


class _GuardChecker(ast.NodeVisitor):
    """Flag guarded-attribute access outside the lock in one method."""

    def __init__(self, cls: str, method: str, lock_attrs: Set[str],
                 guarded: Set[str], path: str,
                 findings: List[Finding]) -> None:
        self.cls = cls
        self.method = method
        self.lock_attrs = lock_attrs
        self.guarded = guarded
        self.path = path
        self.findings = findings
        self._held = 0

    def visit_FunctionDef(self, node):  # closures checked separately
        return

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
        acquired = _with_self_locks(node, self.lock_attrs)
        self._held += acquired
        for stmt in node.body:
            self.visit(stmt)
        self._held -= acquired

    visit_AsyncWith = visit_With

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr in self.guarded and not self._held:
            self.findings.append(Finding(
                self.path, node.lineno, "RPR009", ERROR,
                f"self.{attr} is written under {self.cls}'s lock elsewhere "
                f"but accessed in public method {self.method}() without "
                f"holding it; take the lock (or rename with a _lock_free "
                f"suffix if the access is intentionally unguarded)",
            ))
        self.generic_visit(node)


def _is_public_method(name: str) -> bool:
    if name.endswith(_LOCK_FREE_SUFFIX):
        return False
    if name.startswith("__") and name.endswith("__"):
        return name in _CHECKED_DUNDERS
    return not name.startswith("_")


def _check_class(cls: ast.ClassDef, path: str,
                 aliases: _Aliases) -> List[Finding]:
    methods = _class_methods(cls)

    # Which self attributes are this class's locks?
    lock_attrs: Set[str] = set()
    for method in methods:
        for node in ast.walk(method):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and _is_lockish(attr):
                        lock_attrs.add(attr)
            elif isinstance(node, ast.Assign) and isinstance(node.value,
                                                             ast.Call):
                if _threading_ctor(node.value, aliases) in ("Lock", "RLock"):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            lock_attrs.add(attr)
    if not lock_attrs:
        return []

    collector = _GuardedCollector(lock_attrs)
    for method in methods:
        for stmt in method.body:
            collector.visit(stmt)
    guarded = {
        attr for attr in collector.guarded
        if attr not in lock_attrs
        and not attr.endswith(_LOCK_FREE_SUFFIX)
        and not _is_lockish(attr)
    }
    if not guarded:
        return []

    findings: List[Finding] = []
    for method in methods:
        if not _is_public_method(method.name):
            continue
        checker = _GuardChecker(cls.name, method.name, lock_attrs, guarded,
                                path, findings)
        for stmt in method.body:
            checker.visit(stmt)
    return findings


# ---------------------------------------------------------------------------
# RPR010 + RPR011: lock order, callbacks under locks, leaked threads
# ---------------------------------------------------------------------------


def _bound_names(func: ast.AST) -> Set[str]:
    """Names bound by simple statements directly inside ``func`` (no
    descent into nested definitions): enough to tell a local lock from a
    module-level one."""
    bound: Set[str] = set()
    global_names: Set[str] = set()
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                             ast.For, ast.AsyncFor)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            tstack = list(targets)
            while tstack:
                target = tstack.pop()
                if isinstance(target, (ast.Tuple, ast.List)):
                    tstack.extend(target.elts)
                elif isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    bound.add(item.optional_vars.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            global_names.update(node.names)
        stack.extend(ast.iter_child_nodes(node))
    return bound - global_names


@dataclasses.dataclass
class _Held:
    node_id: str
    line: int
    kind: Optional[str]  # "Lock" | "RLock" | None (unknown)


class _FlowVisitor(ast.NodeVisitor):
    """One walk collecting lock-order edges and thread findings."""

    def __init__(self, tree: ast.Module, path: str, aliases: _Aliases,
                 findings: List[Finding], edges: List[LockEdge]) -> None:
        self.tree = tree
        self.path = path
        self.aliases = aliases
        self.findings = findings
        self.edges = edges
        self._class_stack: List[Tuple[str, ast.ClassDef]] = []
        # (name, node, parameter names, locally bound names)
        self._func_stack: List[Tuple[str, ast.AST, Set[str], Set[str]]] = []
        self._held: List[_Held] = []
        self._kinds: Dict[str, str] = {}  # lock node id -> ctor name
        self._assigning_self = False

    # -- naming ---------------------------------------------------------

    def _scope_name(self) -> str:
        parts = [name for name, _ in self._class_stack]
        parts += [name for name, _, _, _ in self._func_stack]
        return ".".join(parts) or "<module>"

    def _lock_node_id(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Attribute) and _is_lockish(expr.attr):
            if isinstance(expr.value, ast.Name) and expr.value.id in (
                    "self", "cls"):
                owner = (self._class_stack[-1][0]
                         if self._class_stack else "?")
                return f"{owner}.{expr.attr}"
            return f"?.{expr.attr}"
        if isinstance(expr, ast.Name) and _is_lockish(expr.id):
            # Qualify by the scope that *binds* the name: a true local is
            # a distinct lock per call frame, while a module-level lock
            # must resolve to one node no matter which function uses it.
            for name, _, _, local_names in reversed(self._func_stack):
                if expr.id in local_names:
                    return f"{self._scope_name()}:{expr.id}"
            return f"{self.path}:{expr.id}"
        return None

    # -- scope bookkeeping ----------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append((node.name, node))
        saved, self._held = self._held, []
        self.generic_visit(node)
        self._held = saved
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        args = node.args
        params = {
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        }
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        params -= {"self", "cls"}
        self._func_stack.append(
            (node.name, node, params, params | _bound_names(node))
        )
        saved, self._held = self._held, []
        self.generic_visit(node)
        self._held = saved
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- lock construction / acquisition --------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            kind = _threading_ctor(node.value, self.aliases)
            if kind in ("Lock", "RLock"):
                for target in node.targets:
                    node_id = self._lock_node_id(target)
                    if node_id is not None:
                        self._kinds[node_id] = kind
        assigns_self = any(_self_attr(t) is not None for t in node.targets)
        for target in node.targets:
            self.visit(target)
        prev = self._assigning_self
        if assigns_self and self._class_stack:
            self._assigning_self = True
        self.visit(node.value)
        self._assigning_self = prev

    def visit_With(self, node: ast.With) -> None:
        acquired: List[_Held] = []
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
            node_id = self._lock_node_id(item.context_expr)
            if node_id is None:
                continue
            line = item.context_expr.lineno
            kind = self._kinds.get(node_id)
            already = next((h for h in self._held + acquired
                            if h.node_id == node_id), None)
            if already is not None:
                if kind == "Lock":
                    self.findings.append(Finding(
                        self.path, line, "RPR010", ERROR,
                        f"non-reentrant lock {node_id} re-acquired while "
                        f"already held (acquired at line {already.line}); "
                        f"this self-deadlocks — use an RLock or split the "
                        f"critical section",
                    ))
                continue
            for held in self._held + acquired:
                self.edges.append(
                    LockEdge(held.node_id, node_id, self.path, line)
                )
            acquired.append(_Held(node_id, line, kind))
        self._held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self._held[-len(acquired):]

    visit_AsyncWith = visit_With

    # -- calls: callbacks under locks, thread construction ---------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._held
            and self._func_stack
            and isinstance(node.func, ast.Name)
            and node.func.id in self._func_stack[-1][2]
        ):
            held = self._held[-1]
            self.findings.append(Finding(
                self.path, node.lineno, "RPR010", ERROR,
                f"caller-supplied callable {node.func.id}() invoked while "
                f"holding {held.node_id}; callbacks can acquire arbitrary "
                f"locks, so run them outside the critical section",
            ))
        if _threading_ctor(node, self.aliases) == "Thread":
            self._check_thread(node)
        self.generic_visit(node)

    def _check_thread(self, node: ast.Call) -> None:
        if any(kw.arg == "daemon" for kw in node.keywords):
            return
        if self._assigning_self and self._class_stack:
            scope: ast.AST = self._class_stack[-1][1]
        elif self._func_stack:
            scope = self._func_stack[-1][1]
        else:
            scope = self.tree
        if _scope_joins_threads(scope):
            return
        self.findings.append(Finding(
            self.path, node.lineno, "RPR011", ERROR,
            "Thread created without daemon= and with no join() in scope; "
            "a hung or forgotten worker outlives process teardown "
            "silently — pass daemon=True or join it (with a timeout)",
        ))


def _scope_joins_threads(scope: ast.AST) -> bool:
    """True when the scope joins a thread or sets ``.daemon`` later."""
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
        ):
            return True
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and \
                        target.attr == "daemon":
                    return True
    return False


def _calls_attr(nodes: Sequence[ast.AST], attr: str) -> bool:
    for node in nodes:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == attr
            ):
                return True
    return False


def _check_future_paths(tree: ast.Module, path: str) -> List[Finding]:
    """RPR011: try-blocks that set_result but swallow producer failures."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        if not _calls_attr(node.body + node.orelse, "set_result"):
            continue
        for handler in node.handlers:
            if _calls_attr(handler.body, "set_exception"):
                continue
            if any(isinstance(sub, ast.Raise)
                   for stmt in handler.body for sub in ast.walk(stmt)):
                continue
            findings.append(Finding(
                path, handler.lineno, "RPR011", ERROR,
                "except handler around a set_result() producer neither "
                "calls set_exception() nor re-raises; on failure the "
                "future is never completed and waiters block forever",
            ))
    return findings


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def analyze_tree(
    tree: ast.Module, path: str
) -> Tuple[List[Finding], List[LockEdge]]:
    """Run the per-file concurrency rules over a parsed module.

    Returns site findings (RPR009, local RPR010 hazards, RPR011) and the
    file's lock-order edges.  Cycle detection over edges is a separate
    step (:func:`cycle_findings`) so callers can aggregate edges across
    files first.
    """
    aliases = _threading_aliases(tree)
    findings: List[Finding] = []
    edges: List[LockEdge] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(_check_class(node, path, aliases))
    _FlowVisitor(tree, path, aliases, findings, edges).visit(tree)
    findings.extend(_check_future_paths(tree, path))
    return findings, edges


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan's SCC algorithm, iterative (analysis graphs are tiny but
    recursion limits are not worth risking in a linter)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, List[str]]] = [(root, sorted(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            if succs:
                nxt = succs.pop(0)
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(graph.get(nxt, set()))))
                elif nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.add(member)
                        if member == node:
                            break
                    sccs.append(scc)
    return sccs


def _resolve_foreign(edges: Sequence[LockEdge]) -> Sequence[LockEdge]:
    """Unify ``?.attr`` (a lock on a foreign object) with ``Cls.attr``
    when exactly one known class owns a lock attribute of that name.
    Ambiguous names (every class calls its lock ``_lock``) stay foreign —
    merging them would fabricate cycles between unrelated classes."""
    owners: Dict[str, Set[str]] = {}
    for edge in edges:
        for node in (edge.first, edge.second):
            if node.startswith("?."):
                continue
            if "." in node and ":" not in node:
                owner, attr = node.rsplit(".", 1)
                owners.setdefault(attr, set()).add(node)
    rename: Dict[str, str] = {}
    for edge in edges:
        for node in (edge.first, edge.second):
            if node.startswith("?."):
                candidates = owners.get(node[2:], set())
                if len(candidates) == 1:
                    rename[node] = next(iter(candidates))
    if not rename:
        return edges
    return [
        dataclasses.replace(
            e,
            first=rename.get(e.first, e.first),
            second=rename.get(e.second, e.second),
        )
        for e in edges
    ]


def cycle_findings(edges: Sequence[LockEdge]) -> List[Finding]:
    """RPR010 findings for every cycle in the aggregated lock-order graph."""
    edges = _resolve_foreign(edges)
    graph: Dict[str, Set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.first, set()).add(edge.second)
        graph.setdefault(edge.second, set())
    findings: List[Finding] = []
    for scc in _strongly_connected(graph):
        if len(scc) < 2:
            continue
        intra = sorted(
            {(e.first, e.second, e.file, e.line) for e in edges
             if e.first in scc and e.second in scc and e.first != e.second},
            key=lambda item: (item[2], item[3], item[0], item[1]),
        )
        if not intra:
            continue
        sites = ", ".join(
            f"{first}->{second} ({file}:{line})"
            for first, second, file, line in intra
        )
        anchor = intra[0]
        findings.append(Finding(
            anchor[2], anchor[3], "RPR010", ERROR,
            f"inconsistent lock acquisition order: "
            f"{{{', '.join(sorted(scc))}}} form a cycle in the lock-order "
            f"graph [{sites}]; pick one global order and acquire nested "
            f"locks in it everywhere",
        ))
    return findings
