"""Shared finding model for the static auditor and the invariant linter.

Both pillars of :mod:`repro.analysis` — the model auditor
(:mod:`repro.analysis.graph`) and the AST linter
(:mod:`repro.analysis.lint`) — report through the same
:class:`Finding` record so CLI rendering, JSON output, and CI gating
are implemented once.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, List, Sequence

__all__ = [
    "Finding",
    "ERROR",
    "WARNING",
    "INFO",
    "render_text",
    "render_json",
    "render_github",
    "sort_findings",
    "exit_code",
]

#: Severity levels, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic: where it is, what rule fired, and why it matters.

    ``file`` is a path for lint findings and a synthetic location like
    ``<model:resnet18>`` for model audits (which have no source file);
    ``line`` is 0 when no source line applies.
    """

    file: str
    line: int
    code: str
    severity: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_ORDER:
            raise ValueError(
                f"severity must be one of {sorted(_SEVERITY_ORDER)}, "
                f"got {self.severity!r}"
            )

    def render(self) -> str:
        return (
            f"{self.file}:{self.line}: {self.code} "
            f"[{self.severity}] {self.message}"
        )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable order: by file, line, then code."""
    return sorted(findings, key=lambda f: (f.file, f.line, f.code))


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    findings = sort_findings(findings)
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = sum(1 for f in findings if f.severity == WARNING)
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (a JSON array of finding objects)."""
    return json.dumps(
        [dataclasses.asdict(f) for f in sort_findings(findings)], indent=2
    )


#: Finding severity -> GitHub Actions annotation level.
_GITHUB_LEVEL = {ERROR: "error", WARNING: "warning", INFO: "notice"}


def _github_escape(text: str) -> str:
    """Escape per the Actions workflow-command grammar (single line)."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow commands: one ``::error``-style annotation
    per finding (rendered inline on the PR diff), plus the same summary
    line ``render_text`` ends with so job logs stay self-describing."""
    findings = sort_findings(findings)
    lines = [
        f"::{_GITHUB_LEVEL[f.severity]} "
        f"file={_github_escape(f.file)},line={f.line},"
        f"title={_github_escape(f.code)}::{_github_escape(f.message)}"
        for f in findings
    ]
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = sum(1 for f in findings if f.severity == WARNING)
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)


def exit_code(findings: Sequence[Finding]) -> int:
    """CI gate: nonzero exactly when any error-severity finding exists."""
    return 1 if any(f.severity == ERROR for f in findings) else 0
