"""AST-based invariant linter for repo-specific rules.

Run as ``python -m repro.analysis.lint src/`` (multiple paths accepted;
directories are walked recursively for ``*.py``).  Each rule has a
stable code so findings can be suppressed per line with
``# noqa: RPR001`` (or blanket ``# noqa``) and selected with
``--select``.

Rules and the invariant each one protects:

====== ==============================================================
RPR001 Global-RNG use: bare ``np.random.default_rng()`` (unseeded) or
       any legacy ``np.random.<fn>()`` call.  Library code must thread
       a managed :class:`numpy.random.Generator` or bit-exact
       checkpoint resume silently breaks.  Sanctioned:
       ``repro/nn/rng.py`` (the one place allowed to mint a fallback).
RPR002 Raw ``<expr>.data = ...`` assignment.  ``Parameter.data``
       reassignment outside the sanctioned optimizer/EMA/serialization
       modules bypasses the version counter and poisons ``QuantCache``
       with stale fake-quantized weights.
RPR003 Calls to (or imports of) the deprecated module-level
       ``set_precision``; use ``apply_precision`` or the scoped
       ``precision()`` context instead.  Method calls like
       ``module.set_precision(...)`` are fine — the
       ``QuantizedModule`` method is not deprecated.
RPR004 Mutable default argument (list/dict/set literal, comprehension,
       or ``list()``/``dict()``/``set()`` call).
RPR005 A class defining ``state_dict`` without ``load_state_dict`` (or
       vice versa): checkpoints written by it cannot be read back, or
       the loader accepts keys the dumper never emits.
RPR006 Parallelism outside the parallel layer: importing
       ``multiprocessing``/``concurrent.futures`` anywhere but
       :mod:`repro.parallel`, or a worker entrypoint (any function whose
       name contains ``worker``) minting an RNG directly instead of
       going through ``repro.nn.rng`` (``ensure_rng``/``derive_rng``).
       Ad-hoc pools bypass the fork/thread fallback, crash isolation,
       and — above all — the order-independent seeding contract that
       keeps parallel batches byte-identical and resumable.
RPR007 ``QConv2d.from_float`` / ``QLinear.from_float`` called outside
       :mod:`repro.quant`.  Layer swapping must go through
       :func:`repro.quant.prepare` (or the deprecated ``quantize_model``
       shim): hand-rolled swaps skip observer attachment and the
       skip-callback contract, producing models ``calibrate()`` and
       ``convert()`` reject.
RPR008 Direct tape execution outside the engine layer: calling
       ``<expr>.backward(...)``, referencing ``_topological_order``, or
       importing ``backward`` from :mod:`repro.nn.autograd` anywhere
       but :mod:`repro.nn` / :mod:`repro.engine`.  Training code must
       route through :func:`repro.engine.run_backward` so the tracing
       executor observes every step and plan replay stays the default
       step path; a raw ``.backward()`` call silently bypasses trace
       capture and the buffer arena.
RPR009 Guarded attribute accessed without the owning class's lock: any
       attribute written under ``with self._lock:`` is *guarded*, and a
       public method touching it lock-free is a data race in waiting.
       Opt out per line with ``# noqa: RPR009`` or via a ``_lock_free``
       name suffix on the attribute or method.  (See
       :mod:`repro.analysis.concurrency`.)
RPR010 Lock-order hazards: cycles in the statically derived lock-order
       graph (aggregated across every linted file), re-acquiring a
       non-reentrant ``threading.Lock`` already held, and invoking a
       caller-supplied callable while holding a lock.
RPR011 Leaked threads/futures: ``threading.Thread(...)`` without
       ``daemon=`` or a ``join()`` in scope; ``except`` handlers around
       a ``set_result()`` producer that neither ``set_exception()`` nor
       re-raise, leaving waiters blocked forever on failure.
====== ==============================================================
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import concurrency
from .concurrency import LockEdge
from .findings import (ERROR, Finding, exit_code, render_github,
                       render_json, render_text, sort_findings)

__all__ = ["RULES", "lint_source", "lint_file", "lint_paths", "main"]

#: code -> one-line description (the docstring table is the long form).
RULES: Dict[str, str] = {
    "RPR001": "global/unseeded numpy RNG use in library code",
    "RPR002": "raw .data assignment outside sanctioned modules",
    "RPR003": "deprecated module-level set_precision",
    "RPR004": "mutable default argument",
    "RPR005": "state_dict without load_state_dict (or vice versa)",
    "RPR006": "ad-hoc parallelism outside repro.parallel / unmanaged "
              "worker RNG",
    "RPR007": "QConv2d/QLinear.from_float outside repro.quant; use "
              "prepare()",
    "RPR008": "direct tape execution outside repro.engine/repro.nn; use "
              "run_backward()",
    "RPR009": "guarded attribute accessed without the owning class's lock",
    "RPR010": "lock-order cycle / re-acquire / callback under a held lock",
    "RPR011": "thread without daemon= or join; future with an unset "
              "exception path",
}

# Modules allowed to break a rule, matched as a path suffix (so the
# allowlist is independent of where the repo is checked out).  Paths
# are normalized to forward slashes before matching.
SANCTIONED: Dict[str, Tuple[str, ...]] = {
    # The single module allowed to mint a fallback generator.
    "RPR001": ("repro/nn/rng.py",),
    # Optimizers step parameters, EMA/queue updates rewrite them, and
    # serialization restores them — each bumps the version counter via
    # the Parameter.data setter, which is exactly the sanctioned path.
    "RPR002": (
        "repro/nn/tensor.py",  # defines Tensor.data in the first place
        "repro/nn/module.py",
        "repro/nn/serialization.py",
        "repro/nn/optim/",
        "repro/contrastive/byol.py",
        "repro/contrastive/moco.py",
        "repro/contrastive/perturb.py",
        # BN folding and convert() rewrite weights through the
        # Parameter.data setter on purpose (version bump included).
        "repro/quant/fold.py",
        "repro/quant/convert.py",
        # EMA codebook updates rewrite the codebook Parameter so registry
        # fingerprints observe each training step.
        "repro/retrieval/vq.py",
    ),
    # The shim itself and the package re-export that keeps the old
    # import path alive.
    "RPR003": (
        "repro/quant/convert.py",
        "repro/quant/__init__.py",
    ),
    # The parallel layer is the one place allowed to own pools/executors;
    # everything else must go through PrefetchLoader / SweepExecutor.
    "RPR006": ("repro/parallel/",),
    # The quant package is where from_float lives and is orchestrated.
    "RPR007": ("repro/quant/",),
    # The autograd core defines the tape, and the engine is the one
    # consumer allowed to drive it directly (trace capture + replay).
    # Tests exercise both layers on purpose.
    "RPR008": ("repro/nn/", "repro/engine/", "tests/"),
}

# Module roots whose import anywhere else signals ad-hoc parallelism.
_PARALLEL_MODULES = ("multiprocessing", "concurrent.futures")

# np.random attributes that construct generator objects: calling them
# *with a seed* is fine; only a bare call is a global-RNG smell.
_RNG_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)


def _noqa_map(source: str) -> Dict[int, Optional[Set[str]]]:
    """line number -> suppressed codes (None means suppress everything)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = {
                c.strip().upper() for c in codes.split(",")
            }
    return suppressions


def _is_sanctioned(code: str, path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return any(part in normalized for part in SANCTIONED.get(code, ()))


class _RuleVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        # numpy aliases in scope: {"np", "numpy"}; and direct names
        # bound to np.random functions via `from numpy.random import x`.
        self._numpy_aliases: Set[str] = set()
        self._numpy_random_aliases: Set[str] = set()
        self._random_imports: Dict[str, str] = {}  # local name -> fn
        self._function_stack: List[str] = []  # enclosing def names

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 0), code, ERROR,
                    message)
        )

    # -- import tracking ------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                self._numpy_aliases.add(local)
            if alias.name == "numpy.random":
                self._numpy_random_aliases.add(alias.asname or "numpy")
            if self._is_parallel_module(alias.name):
                self._flag_parallel_import(node, alias.name)
        self.generic_visit(node)

    @staticmethod
    def _is_parallel_module(module: str) -> bool:
        return any(
            module == root or module.startswith(root + ".")
            for root in _PARALLEL_MODULES
        )

    def _flag_parallel_import(self, node: ast.AST, module: str) -> None:
        self._emit(
            node, "RPR006",
            f"import of {module} outside repro.parallel; pools belong "
            f"behind PrefetchLoader/SweepExecutor so the seeding "
            f"contract, fallback, and crash isolation hold",
        )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy" and node.level == 0:
            for alias in node.names:
                if alias.name == "random":
                    self._numpy_random_aliases.add(alias.asname or "random")
        if node.module == "numpy.random" and node.level == 0:
            for alias in node.names:
                self._random_imports[alias.asname or alias.name] = alias.name
        if node.module is not None and node.level == 0:
            if self._is_parallel_module(node.module):
                self._flag_parallel_import(node, node.module)
            elif node.module == "concurrent":
                for alias in node.names:
                    if alias.name == "futures":
                        self._flag_parallel_import(node, "concurrent.futures")
        for alias in node.names:
            if alias.name == "set_precision":
                self._emit(
                    node, "RPR003",
                    "import of deprecated set_precision; use "
                    "apply_precision or the precision() context",
                )
            if (
                node.module is not None
                and node.module.rsplit(".", 1)[-1] == "autograd"
                and alias.name in ("backward", "_topological_order")
            ):
                self._emit(
                    node, "RPR008",
                    f"import of autograd.{alias.name} outside the engine "
                    f"layer; drive the tape through "
                    f"repro.engine.run_backward so traced plans stay the "
                    f"default step path",
                )
        self.generic_visit(node)

    # -- call-based rules (RPR001, RPR003) ------------------------------

    def _np_random_fn(self, func: ast.expr) -> Optional[str]:
        """Return the np.random function name if ``func`` names one."""
        # np.random.<fn> / numpy.random.<fn>
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self._numpy_aliases
        ):
            return func.attr
        # random.<fn> after `from numpy import random` (or an alias of
        # `import numpy.random as nprand`)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._numpy_random_aliases
        ):
            return func.attr
        # bare <fn> after `from numpy.random import <fn>`
        if isinstance(func, ast.Name) and func.id in self._random_imports:
            return self._random_imports[func.id]
        return None

    def _in_worker_function(self) -> bool:
        """True inside a def whose name marks it as a pool worker."""
        return any("worker" in name.lower() for name in self._function_stack)

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._np_random_fn(node.func)
        if fn is not None:
            if fn in _RNG_CONSTRUCTORS and self._in_worker_function():
                self._emit(
                    node, "RPR006",
                    f"worker entrypoint mints np.random.{fn}(...) "
                    f"directly; derive worker RNGs via "
                    f"repro.nn.rng.derive_rng/ensure_rng so streams stay "
                    f"order-independent across worker counts",
                )
            if fn in _RNG_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    self._emit(
                        node, "RPR001",
                        f"unseeded np.random.{fn}() in library code; "
                        f"thread a managed generator (see "
                        f"repro.nn.rng.ensure_rng) so bit-exact resume "
                        f"holds",
                    )
            else:
                self._emit(
                    node, "RPR001",
                    f"np.random.{fn}() uses numpy's global RNG; thread "
                    f"a managed np.random.Generator instead",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "set_precision"
        ):
            self._emit(
                node, "RPR003",
                "call to deprecated set_precision(); use apply_precision "
                "or the precision() context",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "set_precision"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ("quant", "convert")
        ):
            self._emit(
                node, "RPR003",
                f"call to deprecated {node.func.value.id}.set_precision(); "
                f"use apply_precision or the precision() context",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "from_float"
        ):
            owner = node.func.value
            owner_name = None
            if isinstance(owner, ast.Name):
                owner_name = owner.id
            elif isinstance(owner, ast.Attribute):
                owner_name = owner.attr
            if owner_name in ("QConv2d", "QLinear"):
                self._emit(
                    node, "RPR007",
                    f"{owner_name}.from_float() outside repro.quant; "
                    f"swap layers via repro.quant.prepare() so observers "
                    f"and the skip contract are applied consistently",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "backward"
        ):
            self._emit(
                node, "RPR008",
                "direct .backward() call bypasses the tracing executor; "
                "use repro.engine.run_backward(loss) so the step can be "
                "captured into a replayable plan",
            )
        self.generic_visit(node)

    # -- RPR008: tape internals referenced outside the engine -------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "_topological_order":
            self._emit(
                node, "RPR008",
                "reference to autograd._topological_order outside the "
                "engine layer; the traversal order is an engine-internal "
                "contract — use repro.engine.run_backward or the Plan API",
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "_topological_order":
            self._emit(
                node, "RPR008",
                "reference to _topological_order outside the engine "
                "layer; the traversal order is an engine-internal "
                "contract — use repro.engine.run_backward or the Plan API",
            )
        self.generic_visit(node)

    # -- RPR002: raw .data assignment -----------------------------------

    def _flag_data_targets(self, node: ast.AST,
                           targets: Sequence[ast.expr]) -> None:
        stack = list(targets)
        while stack:
            target = stack.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                stack.extend(target.elts)
            elif isinstance(target, ast.Attribute) and target.attr == "data":
                self._emit(
                    node, "RPR002",
                    "raw .data assignment bypasses the Parameter version "
                    "counter and poisons QuantCache; go through an "
                    "optimizer/EMA/serialization path or call "
                    "bump_version()",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._flag_data_targets(node, node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._flag_data_targets(node, [node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._flag_data_targets(node, [node.target])
        self.generic_visit(node)

    # -- RPR004: mutable default arguments ------------------------------

    _MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, self._MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._emit(
                    default, "RPR004",
                    f"mutable default argument in {node.name}(); the "
                    f"default is shared across calls — use None and "
                    f"create it inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    # -- RPR005: state_dict / load_state_dict symmetry ------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        defined = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        has_dump = "state_dict" in defined
        has_load = "load_state_dict" in defined
        if has_dump != has_load:
            present = "state_dict" if has_dump else "load_state_dict"
            missing = "load_state_dict" if has_dump else "state_dict"
            self._emit(
                node, "RPR005",
                f"class {node.name} defines {present} but not {missing}; "
                f"checkpoint round trips need both sides overridden "
                f"together",
            )
        self.generic_visit(node)


def _line_suppresses(suppressions: Dict[int, Optional[Set[str]]],
                     line: int, code: str) -> bool:
    suppressed = suppressions.get(line, "absent")
    if suppressed is None:  # blanket `# noqa`
        return True
    return suppressed != "absent" and code in suppressed


def _collect(source: str, path: str,
             select: Optional[Sequence[str]] = None
             ) -> Tuple[List[Finding], List[LockEdge]]:
    """One file's filtered findings plus its surviving lock-order edges.

    Edges pass through the same ``select``/allowlist/``# noqa`` gates as
    RPR010 site findings (suppressing the acquisition line removes the
    edge, and with it any cycle it would close), so cross-file cycle
    detection honors per-line suppressions.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "RPR000", ERROR,
                        f"could not parse file: {exc.msg}")], []
    visitor = _RuleVisitor(path)
    visitor.visit(tree)
    conc_findings, edges = concurrency.analyze_tree(tree, path)
    suppressions = _noqa_map(source)
    selected = {c.upper() for c in select} if select else None
    findings = []
    for finding in visitor.findings + conc_findings:
        if selected is not None and finding.code not in selected:
            continue
        if _is_sanctioned(finding.code, path):
            continue
        if _line_suppresses(suppressions, finding.line, finding.code):
            continue
        findings.append(finding)
    if (selected is not None and "RPR010" not in selected) or \
            _is_sanctioned("RPR010", path):
        edges = []
    else:
        edges = [
            e for e in edges
            if not _line_suppresses(suppressions, e.line, "RPR010")
        ]
    return sort_findings(findings), edges


def lint_source(source: str, path: str,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one source string; ``path`` is used for reporting/allowlists."""
    findings, edges = _collect(source, path, select=select)
    return sort_findings(findings + concurrency.cycle_findings(edges))


def lint_file(path: str,
              select: Optional[Sequence[str]] = None) -> List[Finding]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return [Finding(path, 0, "RPR000", ERROR,
                        f"could not read file: {exc}")]
    return lint_source(source, path, select=select)


def _collect_file(path: str,
                  select: Optional[Sequence[str]] = None
                  ) -> Tuple[List[Finding], List[LockEdge]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return [Finding(path, 0, "RPR000", ERROR,
                        f"could not read file: {exc}")], []
    return _collect(source, path, select=select)


def _iter_python_files(paths: Sequence[str]):
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint files and directories (recursively); the public API.

    Lock-order edges (RPR010) are aggregated across every linted file
    before cycle detection, so an inversion whose two halves live in
    different modules is still reported.
    """
    findings: List[Finding] = []
    edges: List[LockEdge] = []
    for path in _iter_python_files(paths):
        file_findings, file_edges = _collect_file(path, select=select)
        findings.extend(file_findings)
        edges.extend(file_edges)
    return sort_findings(findings + concurrency.cycle_findings(edges))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Repo-invariant linter (rules RPR001-RPR011; "
                    "suppress per line with '# noqa: RPRxxx').",
    )
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text",
                        help="'github' emits Actions workflow annotations")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to enable "
                             "(default: all)")
    args = parser.parse_args(argv)
    select = args.select.split(",") if args.select else None
    findings = lint_paths(args.paths, select=select)
    renderer = {"text": render_text, "json": render_json,
                "github": render_github}[args.format]
    print(renderer(findings))
    return exit_code(findings)


if __name__ == "__main__":
    sys.exit(main())
