"""Autograd-Function discovery for the gradcheck-coverage audit.

The PR-2 gradcheck sweep iterates a hardcoded module tuple, which means
a brand-new ``_ops`` file would silently escape the sweep.  This module
discovers Functions by walking the ``repro.nn._ops`` package with
:mod:`pkgutil` (plus ``repro.nn.autograd`` itself), so the coverage
test in ``tests/analysis/test_gradcheck_coverage.py`` fails the moment
an op lands without a gradcheck entry.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from typing import Dict, Type

from ..nn.autograd import Function

__all__ = ["discover_autograd_functions"]


def discover_autograd_functions() -> Dict[str, Type[Function]]:
    """Map Function name -> class for every op defined in the framework.

    Walks every module in ``repro.nn._ops`` plus ``repro.nn.autograd``,
    keeping only Function subclasses *defined* in the visited module
    (``__module__`` match) so re-exports are not double-counted.
    Raises on a name collision — two ops with the same class name would
    make gradcheck coverage ambiguous.
    """
    from ..nn import _ops

    module_names = ["repro.nn.autograd"] + [
        f"{_ops.__name__}.{info.name}"
        for info in pkgutil.iter_modules(_ops.__path__)
    ]
    functions: Dict[str, Type[Function]] = {}
    for module_name in sorted(module_names):
        module = importlib.import_module(module_name)
        for name, obj in sorted(vars(module).items()):
            if (
                inspect.isclass(obj)
                and issubclass(obj, Function)
                and obj is not Function
                and obj.__module__ == module.__name__
            ):
                if name in functions and functions[name] is not obj:
                    raise RuntimeError(
                        f"two autograd Functions share the name {name!r} "
                        f"({functions[name].__module__} and "
                        f"{obj.__module__}); rename one so gradcheck "
                        f"coverage stays unambiguous"
                    )
                functions[name] = obj
    return functions
