"""Static model auditor: symbolic shape/dtype propagation + tree audits.

The auditor answers "will this model run, and is it wired the way the
paper requires?" without ever executing a forward pass:

- :func:`shapecheck` propagates a symbolic ``(shape, dtype)`` pair
  through the module tree via per-type handlers, producing a
  layer-by-layer :class:`ShapeReport` and raising :class:`ShapeError`
  (with the partial trace) on the first mismatch — misconfigured
  encoder/head combinations fail before any data is loaded.
- :func:`audit_quantization` reports which conv/linear layers carry
  weight/activation fake-quant and which silently bypass it — the
  paper's Eq. 10 quantizer only augments features that actually pass
  through ``QConv2d``/``QLinear``, and a bypassing layer is invisible
  at runtime until accuracy tables drift.
- :func:`audit_parameters`, :func:`audit_batch_statistics`, and
  :func:`audit_state_dict` catch duplicate/unregistered parameters,
  batch-statistics modules that veto ``fuse_views``, and
  ``state_dict``/``load_state_dict`` key asymmetry.

Run ``python -m repro.analysis.graph`` to sweep every encoder in
:mod:`repro.models.registry` (the CI ``analysis`` job gates on it).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..nn.layers.activation import LeakyReLU, ReLU, ReLU6, Sigmoid, Tanh
from ..nn.layers.container import Identity, ModuleList, Sequential
from ..nn.layers.conv import Conv2d
from ..nn.layers.dropout import Dropout
from ..nn.layers.groupnorm import GroupNorm, LayerNorm
from ..nn.layers.linear import Linear
from ..nn.layers.norm import BatchNorm1d, BatchNorm2d
from ..nn.layers.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from ..nn.module import Module, Parameter
from .findings import ERROR, INFO, Finding, exit_code, render_json, render_text

__all__ = [
    "ShapeEntry",
    "ShapeReport",
    "ShapeError",
    "register_shape_handler",
    "shapecheck",
    "QuantLayerEntry",
    "QuantizationReport",
    "audit_quantization",
    "audit_parameters",
    "audit_batch_statistics",
    "audit_state_dict",
    "audit_model",
    "main",
]

Shape = Tuple[int, ...]


# ---------------------------------------------------------------------------
# shape/dtype propagation
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ShapeEntry:
    """One traced module: its path, type, and symbolic in/out signature."""

    path: str
    module: str
    input_shape: Shape
    output_shape: Shape
    dtype: str

    def render(self) -> str:
        return (
            f"{self.path:<40} {self.module:<16} "
            f"{str(self.input_shape):<20} -> {self.output_shape} [{self.dtype}]"
        )


@dataclasses.dataclass
class ShapeReport:
    """Layer-by-layer trace in execution order (composites after children)."""

    entries: List[ShapeEntry]
    input_shape: Shape
    output_shape: Shape
    dtype: str

    def render(self) -> str:
        header = (
            f"{'layer':<40} {'type':<16} {'input':<20} -> output [dtype]"
        )
        lines = [header] + [e.render() for e in self.entries]
        lines.append(f"output: {self.output_shape} [{self.dtype}]")
        return "\n".join(lines)

    def __iter__(self):
        return iter(self.entries)


class ShapeError(ValueError):
    """A shape/dtype mismatch found during symbolic propagation.

    Carries the offending module ``path`` and the partial ``entries``
    trace so callers (e.g. the experiment runner's preflight) can show a
    layer-by-layer report of everything that *did* check out.
    """

    def __init__(self, path: str, message: str,
                 entries: Sequence[ShapeEntry] = ()) -> None:
        self.path = path or "<root>"
        self.entries = list(entries)
        text = f"{self.path}: {message}"
        if self.entries:
            traced = "\n".join("  " + e.render() for e in self.entries)
            text += f"\nlayers traced before the failure:\n{traced}"
        super().__init__(text)


_SHAPE_HANDLERS: Dict[Type[Module], Callable] = {}


def register_shape_handler(*module_types: Type[Module]):
    """Register a shape handler for one or more module types.

    The handler receives ``(module, shape, dtype, path, tracer)`` and
    returns ``(output_shape, output_dtype)``.  Dispatch walks the
    module's MRO, so subclasses (e.g. ``QConv2d``) inherit their base
    handler unless they register their own.
    """

    def decorate(fn):
        for module_type in module_types:
            _SHAPE_HANDLERS[module_type] = fn
        return fn

    return decorate


class _Tracer:
    """Recursive dispatcher recording a ShapeEntry per visited module."""

    def __init__(self) -> None:
        self.entries: List[ShapeEntry] = []

    def fail(self, path: str, message: str) -> None:
        raise ShapeError(path, message, self.entries)

    def trace(self, module: Module, shape: Shape, dtype, path: str):
        handler = None
        for klass in type(module).__mro__:
            if klass in _SHAPE_HANDLERS:
                handler = _SHAPE_HANDLERS[klass]
                break
        shape = tuple(int(s) for s in shape)
        if handler is None and hasattr(module, "symbolic_shape"):
            # Fallback protocol: a module may describe its own signature
            # via ``symbolic_shape(shape, dtype) -> (shape, dtype)``,
            # raising ValueError on a mismatch.  This keeps modules that
            # analysis should not import directly (e.g. the lowered
            # integer kernels) traceable without a registry entry.
            try:
                out_shape, out_dtype = module.symbolic_shape(shape, dtype)
            except ValueError as exc:
                self.fail(path, f"{type(module).__name__}: {exc}")
            out_shape = tuple(int(s) for s in out_shape)
            self.entries.append(
                ShapeEntry(path or "<root>", type(module).__name__, shape,
                           out_shape, str(out_dtype))
            )
            return out_shape, out_dtype
        if handler is None:
            self.fail(
                path,
                f"no shape handler registered for "
                f"{type(module).__name__}; register one with "
                f"repro.analysis.register_shape_handler or give the "
                f"module a symbolic_shape(shape, dtype) method",
            )
        out_shape, out_dtype = handler(module, shape, dtype, path, self)
        out_shape = tuple(int(s) for s in out_shape)
        self.entries.append(
            ShapeEntry(path or "<root>", type(module).__name__, shape,
                       out_shape, str(out_dtype))
        )
        return out_shape, out_dtype


def shapecheck(model: Module, input_shape: Sequence[int],
               dtype="float32") -> ShapeReport:
    """Symbolically propagate ``input_shape`` through ``model``.

    No forward pass runs and no data is allocated: each layer's output
    shape is derived from its hyperparameters alone, and every
    constraint a real forward would hit (channel counts, feature dims,
    spatial collapse, residual-branch agreement) is checked on the way.
    Raises :class:`ShapeError` on the first violation.
    """
    input_shape = tuple(int(s) for s in input_shape)
    if any(s <= 0 for s in input_shape):
        raise ShapeError("<input>", f"non-positive input shape {input_shape}")
    tracer = _Tracer()
    out_shape, out_dtype = tracer.trace(model, input_shape,
                                        np.dtype(dtype), "")
    return ShapeReport(tracer.entries, input_shape, out_shape, str(out_dtype))


def _pair(value) -> Tuple[int, int]:
    return (value, value) if isinstance(value, int) else tuple(value)


def _pool_shape(shape: Shape, kernel, stride, padding, path: str,
                tracer: _Tracer, what: str) -> Shape:
    if len(shape) != 4:
        tracer.fail(path, f"{what} expects NCHW input, got {shape}")
    n, c, h, w = shape
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    ph, pw = _pair(padding)
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh < 1 or ow < 1:
        tracer.fail(
            path,
            f"{what} kernel {kh}x{kw} (stride {sh}x{sw}, padding "
            f"{ph}x{pw}) collapses spatial size {h}x{w} to {oh}x{ow}",
        )
    return (n, c, oh, ow)


@register_shape_handler(Conv2d)
def _shape_conv2d(module: Conv2d, shape, dtype, path, tracer):
    if len(shape) != 4:
        tracer.fail(path, f"Conv2d expects NCHW input, got {shape}")
    n, c, h, w = shape
    if c != module.in_channels:
        tracer.fail(
            path,
            f"Conv2d expects {module.in_channels} input channels, got {c} "
            f"(input shape {shape})",
        )
    kh, kw = module.kernel_size
    sh, sw = module.stride
    ph, pw = module.padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh < 1 or ow < 1:
        tracer.fail(
            path,
            f"Conv2d kernel {kh}x{kw} (stride {sh}x{sw}, padding "
            f"{ph}x{pw}) collapses spatial size {h}x{w} to {oh}x{ow}",
        )
    out_dtype = np.result_type(dtype, module.weight.data.dtype)
    return (n, module.out_channels, oh, ow), out_dtype


@register_shape_handler(Linear)
def _shape_linear(module: Linear, shape, dtype, path, tracer):
    if len(shape) < 2:
        tracer.fail(path, f"Linear expects >= 2-D input, got {shape}")
    if shape[-1] != module.in_features:
        tracer.fail(
            path,
            f"Linear expects {module.in_features} input features, got "
            f"{shape[-1]} (input shape {shape})",
        )
    out_dtype = np.result_type(dtype, module.weight.data.dtype)
    return shape[:-1] + (module.out_features,), out_dtype


@register_shape_handler(BatchNorm1d)
def _shape_bn1d(module: BatchNorm1d, shape, dtype, path, tracer):
    if len(shape) != 2:
        tracer.fail(path, f"BatchNorm1d expects (N, C) input, got {shape}")
    if shape[1] != module.num_features:
        tracer.fail(
            path,
            f"BatchNorm1d expects {module.num_features} features, got "
            f"{shape[1]}",
        )
    return shape, dtype


@register_shape_handler(BatchNorm2d)
def _shape_bn2d(module: BatchNorm2d, shape, dtype, path, tracer):
    if len(shape) != 4:
        tracer.fail(path, f"BatchNorm2d expects NCHW input, got {shape}")
    if shape[1] != module.num_features:
        tracer.fail(
            path,
            f"BatchNorm2d expects {module.num_features} channels, got "
            f"{shape[1]}",
        )
    return shape, dtype


@register_shape_handler(GroupNorm)
def _shape_groupnorm(module: GroupNorm, shape, dtype, path, tracer):
    if len(shape) != 4:
        tracer.fail(path, f"GroupNorm expects NCHW input, got {shape}")
    if shape[1] != module.num_channels:
        tracer.fail(
            path,
            f"GroupNorm expects {module.num_channels} channels, got "
            f"{shape[1]}",
        )
    return shape, dtype


@register_shape_handler(LayerNorm)
def _shape_layernorm(module: LayerNorm, shape, dtype, path, tracer):
    if not shape or shape[-1] != module.normalized_dim:
        tracer.fail(
            path,
            f"LayerNorm expects last dim {module.normalized_dim}, got "
            f"{shape}",
        )
    return shape, dtype


@register_shape_handler(ReLU, ReLU6, LeakyReLU, Sigmoid, Tanh, Identity,
                        Dropout)
def _shape_elementwise(module, shape, dtype, path, tracer):
    return shape, dtype


@register_shape_handler(MaxPool2d, AvgPool2d)
def _shape_pool(module, shape, dtype, path, tracer):
    out = _pool_shape(shape, module.kernel_size, module.stride,
                      module.padding, path, tracer,
                      type(module).__name__)
    return out, dtype


@register_shape_handler(GlobalAvgPool2d)
def _shape_global_pool(module, shape, dtype, path, tracer):
    if len(shape) != 4:
        tracer.fail(path, f"GlobalAvgPool2d expects NCHW input, got {shape}")
    return shape[:2], dtype


@register_shape_handler(Sequential)
def _shape_sequential(module: Sequential, shape, dtype, path, tracer):
    for name, child in module._modules.items():
        child_path = f"{path}.{name}" if path else name
        shape, dtype = tracer.trace(child, shape, dtype, child_path)
    return shape, dtype


@register_shape_handler(ModuleList)
def _shape_modulelist(module: ModuleList, shape, dtype, path, tracer):
    tracer.fail(
        path,
        "ModuleList has no implicit forward; trace its children from the "
        "owning module's handler instead",
    )


def _chain(tracer, path, shape, dtype, *steps):
    """Trace named children in sequence: steps are (name, module) pairs."""
    for name, child in steps:
        child_path = f"{path}.{name}" if path else name
        shape, dtype = tracer.trace(child, shape, dtype, child_path)
    return shape, dtype


def _register_model_handlers() -> None:
    """Handlers for the repo's composite modules.

    Kept in one function (called at import) so the per-layer handlers
    above stay importable without the model packages, and so the import
    graph stays one-directional (analysis -> models/contrastive/eval).
    """
    from ..contrastive.byol import BYOL
    from ..contrastive.moco import MoCo
    from ..contrastive.simclr import SimCLRModel
    from ..contrastive.simsiam import SimSiam
    from ..eval.finetune import ClassifierModel
    from ..models.heads import ProjectionHead
    from ..models.mobilenetv2 import InvertedResidual, MobileNetV2, _ConvBNReLU
    from ..models.resnet import BasicBlock, ResNet

    @register_shape_handler(BasicBlock)
    def _shape_basic_block(module, shape, dtype, path, tracer):
        out, d = _chain(
            tracer, path, shape, dtype,
            ("conv1", module.conv1), ("bn1", module.bn1),
            ("conv2", module.conv2), ("bn2", module.bn2),
        )
        short, ds = tracer.trace(module.shortcut, shape, dtype,
                                 f"{path}.shortcut" if path else "shortcut")
        if out != short:
            tracer.fail(
                path,
                f"residual mismatch: main branch produces {out} but "
                f"shortcut produces {short}",
            )
        return out, np.result_type(d, ds)

    @register_shape_handler(ResNet)
    def _shape_resnet(module, shape, dtype, path, tracer):
        s, d = _chain(
            tracer, path, shape, dtype,
            ("stem_conv", module.stem_conv), ("stem_bn", module.stem_bn),
        )
        if module.stem_kind == "imagenet":
            s = _pool_shape(s, 3, 2, 1, f"{path}.stem_pool" if path
                            else "stem_pool", tracer, "stem max-pool")
        for i, stage in enumerate(module.stages):
            stage_path = f"{path}.stages.{i}" if path else f"stages.{i}"
            s, d = tracer.trace(stage, s, d, stage_path)
        if len(s) != 4:
            tracer.fail(path, f"expected NCHW before pooling, got {s}")
        if s[1] != module.feature_dim:
            tracer.fail(
                path,
                f"final stage produces {s[1]} channels but feature_dim "
                f"claims {module.feature_dim}",
            )
        return (s[0], module.feature_dim), d

    @register_shape_handler(_ConvBNReLU)
    def _shape_conv_bn_relu(module, shape, dtype, path, tracer):
        return _chain(tracer, path, shape, dtype,
                      ("conv", module.conv), ("bn", module.bn))

    @register_shape_handler(InvertedResidual)
    def _shape_inverted_residual(module, shape, dtype, path, tracer):
        s, d = _chain(
            tracer, path, shape, dtype,
            ("body", module.body), ("project", module.project),
            ("project_bn", module.project_bn),
        )
        if module.use_residual and s != shape:
            tracer.fail(
                path,
                f"residual mismatch: block maps {shape} to {s} but "
                f"declares use_residual",
            )
        return s, d

    @register_shape_handler(MobileNetV2)
    def _shape_mobilenet(module, shape, dtype, path, tracer):
        s, d = _chain(
            tracer, path, shape, dtype,
            ("stem", module.stem), ("blocks", module.blocks),
            ("head", module.head),
        )
        if len(s) != 4:
            tracer.fail(path, f"expected NCHW before pooling, got {s}")
        if s[1] != module.feature_dim:
            tracer.fail(
                path,
                f"head produces {s[1]} channels but feature_dim claims "
                f"{module.feature_dim}",
            )
        return (s[0], module.feature_dim), d

    @register_shape_handler(ProjectionHead)  # PredictionHead via MRO
    def _shape_projection_head(module, shape, dtype, path, tracer):
        return _chain(tracer, path, shape, dtype,
                      ("fc1", module.fc1), ("bn", module.bn),
                      ("fc2", module.fc2))

    @register_shape_handler(SimCLRModel)
    def _shape_simclr(module, shape, dtype, path, tracer):
        return _chain(tracer, path, shape, dtype,
                      ("encoder", module.encoder),
                      ("projector", module.projector))

    @register_shape_handler(SimSiam)
    def _shape_simsiam(module, shape, dtype, path, tracer):
        s, d = _chain(tracer, path, shape, dtype,
                      ("encoder", module.encoder),
                      ("projector", module.projector))
        return _chain(tracer, path, s, d, ("predictor", module.predictor))

    @register_shape_handler(BYOL)
    def _shape_byol(module, shape, dtype, path, tracer):
        online, d = _chain(
            tracer, path, shape, dtype,
            ("online_encoder", module.online_encoder),
            ("online_projector", module.online_projector),
            ("predictor", module.predictor),
        )
        target, dt = _chain(
            tracer, path, shape, dtype,
            ("target_encoder", module.target_encoder),
            ("target_projector", module.target_projector),
        )
        if online != target:
            tracer.fail(
                path,
                f"online prediction {online} and target projection "
                f"{target} disagree; byol_loss requires equal shapes",
            )
        return online, np.result_type(d, dt)

    @register_shape_handler(MoCo)
    def _shape_moco(module, shape, dtype, path, tracer):
        query, d = _chain(
            tracer, path, shape, dtype,
            ("query_encoder", module.query_encoder),
            ("query_projector", module.query_projector),
        )
        key, dk = _chain(
            tracer, path, shape, dtype,
            ("key_encoder", module.key_encoder),
            ("key_projector", module.key_projector),
        )
        if query != key:
            tracer.fail(
                path,
                f"query projection {query} and key projection {key} "
                f"disagree; InfoNCE requires equal shapes",
            )
        if query[-1] != module.queue.shape[1]:
            tracer.fail(
                path,
                f"projection dim {query[-1]} does not match queue dim "
                f"{module.queue.shape[1]}",
            )
        return query, np.result_type(d, dk)

    @register_shape_handler(ClassifierModel)
    def _shape_classifier(module, shape, dtype, path, tracer):
        return _chain(tracer, path, shape, dtype,
                      ("encoder", module.encoder), ("head", module.head))

    from ..retrieval.trainer import _VQModel
    from ..retrieval.vq import ProductQuantizer, VectorQuantizer

    @register_shape_handler(VectorQuantizer)
    def _shape_vector_quantizer(module, shape, dtype, path, tracer):
        if len(shape) != 2 or shape[1] != module.dim:
            tracer.fail(
                path,
                f"VectorQuantizer({module.num_codes}, {module.dim}) "
                f"expects (N, {module.dim}) embeddings, got {shape}",
            )
        # Reconstructions are codebook rows: shape-preserving, float32.
        return shape, np.result_type(dtype, module.codebook.data.dtype)

    @register_shape_handler(ProductQuantizer)
    def _shape_product_quantizer(module, shape, dtype, path, tracer):
        if len(shape) != 2 or shape[1] != module.dim:
            tracer.fail(
                path,
                f"ProductQuantizer over {module.num_subspaces} x "
                f"{module.subdim} coordinates expects (N, {module.dim}) "
                f"embeddings, got {shape}",
            )
        d = dtype
        for m, sub in enumerate(module.quantizers):
            sub_path = (f"{path}.quantizers.{m}" if path
                        else f"quantizers.{m}")
            _, d = tracer.trace(sub, (shape[0], module.subdim), dtype,
                                sub_path)
        return shape, d

    @register_shape_handler(_VQModel)
    def _shape_vq_model(module, shape, dtype, path, tracer):
        return _chain(tracer, path, shape, dtype,
                      ("quantizer", module.quantizer))


_register_model_handlers()


# ---------------------------------------------------------------------------
# module/parameter tree audits
# ---------------------------------------------------------------------------

def _loc(model_name: str) -> str:
    return f"<model:{model_name}>"


@dataclasses.dataclass(frozen=True)
class QuantLayerEntry:
    """Quantization status of one conv/linear layer."""

    path: str
    kind: str
    quantized: bool
    precision: Optional[int]
    quantize_activations: bool
    per_channel_weights: bool


@dataclasses.dataclass
class QuantizationReport:
    """Which weight/activation paths pass through the Eq. 10 quantizer."""

    model_name: str
    entries: List[QuantLayerEntry]

    @property
    def total(self) -> int:
        return len(self.entries)

    @property
    def quantized(self) -> int:
        return sum(1 for e in self.entries if e.quantized)

    @property
    def coverage(self) -> float:
        """Fraction of conv/linear layers that are precision-switchable
        (1.0 for a model with no such layers)."""
        return self.quantized / self.total if self.total else 1.0

    def bypassing(self) -> List[QuantLayerEntry]:
        return [e for e in self.entries if not e.quantized]

    def findings(self) -> List[Finding]:
        loc = _loc(self.model_name)
        return [
            Finding(
                loc, 0, "AUD001", ERROR,
                f"{entry.kind} at {entry.path!r} bypasses fake-quant "
                f"(not a QuantizedModule); weight/activation paths "
                f"through it are never quantized",
            )
            for entry in self.bypassing()
        ]

    def render(self) -> str:
        lines = [
            f"quantization coverage for {self.model_name}: "
            f"{self.quantized}/{self.total} "
            f"({100.0 * self.coverage:.1f}%)"
        ]
        for e in self.entries:
            status = (
                f"precision={e.precision} "
                f"act={'on' if e.quantize_activations else 'off'} "
                f"per_channel={'on' if e.per_channel_weights else 'off'}"
                if e.quantized else "BYPASS"
            )
            lines.append(f"  {e.path:<40} {e.kind:<10} {status}")
        return "\n".join(lines)


def audit_quantization(model: Module,
                       model_name: str = "model") -> QuantizationReport:
    """Report fake-quant coverage over every conv/linear layer.

    Lowered integer kernels (:mod:`repro.quant.lowered`) count as
    quantized: they *are* the deployment quantization path.
    ``repro.quant.convert`` gates on this report reaching 100% coverage,
    so a conv/linear that slipped past lowering is a hard error there.
    """
    from ..quant.lowered import LoweredModule
    from ..quant.qmodules import QuantizedModule

    entries: List[QuantLayerEntry] = []
    for path, module in model.named_modules():
        if isinstance(module, LoweredModule):
            entries.append(QuantLayerEntry(
                path or "<root>", type(module).__name__, True,
                module.weight_bits, True, True,
            ))
            continue
        if not isinstance(module, (Conv2d, Linear)):
            continue
        if isinstance(module, QuantizedModule):
            entries.append(QuantLayerEntry(
                path or "<root>", type(module).__name__, True,
                module.precision, bool(module.quantize_activations),
                bool(module.per_channel_weights),
            ))
        else:
            entries.append(QuantLayerEntry(
                path or "<root>", type(module).__name__, False,
                None, False, False,
            ))
    return QuantizationReport(model_name, entries)


def audit_parameters(model: Module,
                     model_name: str = "model") -> List[Finding]:
    """Find duplicately-registered and unregistered parameters.

    - AUD002: one Parameter object reachable under several dotted names
      (state dicts silently collapse it; optimizers step it twice).
    - AUD003: a Parameter stored where ``Module.__setattr__`` cannot see
      it (inside a list/tuple/dict attribute), so it is invisible to
      ``parameters()``, optimizers, and checkpoints.
    """
    loc = _loc(model_name)
    findings: List[Finding] = []

    by_id: Dict[int, List[str]] = {}
    for name, param in model.named_parameters():
        by_id.setdefault(id(param), []).append(name)
    for names in by_id.values():
        if len(names) > 1:
            findings.append(Finding(
                loc, 0, "AUD002", ERROR,
                f"parameter registered under {len(names)} names: "
                f"{sorted(names)}; shared registration double-counts it "
                f"in state dicts and optimizer steps",
            ))

    registered = {id(p) for p in model.parameters()}
    for path, module in model.named_modules():
        for attr, value in vars(module).items():
            if attr.startswith("_"):
                continue
            container: Sequence = ()
            if isinstance(value, (list, tuple)):
                container = value
            elif isinstance(value, dict):
                container = list(value.values())
            for item in container:
                if isinstance(item, Parameter) and id(item) not in registered:
                    where = f"{path}.{attr}" if path else attr
                    findings.append(Finding(
                        loc, 0, "AUD003", ERROR,
                        f"Parameter hidden inside container attribute "
                        f"{where!r}; it is invisible to parameters(), "
                        f"optimizers, and state_dict()",
                    ))
    return findings


def audit_batch_statistics(model: Module,
                           model_name: str = "model") -> List[Finding]:
    """AUD004 (info): modules that veto fused multi-view forwards."""
    from ..nn.layers.norm import _BatchNorm

    loc = _loc(model_name)
    findings = []
    for path, module in model.named_modules():
        if isinstance(module, (_BatchNorm, Dropout)):
            findings.append(Finding(
                loc, 0, "AUD004", INFO,
                f"{type(module).__name__} at {path or '<root>'!r} couples "
                f"samples or consumes per-call RNG; fuse_views will be "
                f"vetoed for this model",
            ))
    return findings


def audit_state_dict(model: Module,
                     model_name: str = "model") -> List[Finding]:
    """AUD005: ``state_dict``/``load_state_dict`` key symmetry.

    Checks that parameter and buffer names do not collide, that
    ``state_dict()`` emits exactly the union of both namespaces, and
    that the produced dict loads back strictly.  (Loading copies the
    model's own values onto itself, so data is unchanged; parameter
    version counters advance, as any ``load_state_dict`` does.)
    """
    loc = _loc(model_name)
    findings: List[Finding] = []

    param_names = [name for name, _ in model.named_parameters()]
    buffer_names = [name for name, _ in model.named_buffers()]
    for clashing in sorted(set(param_names) & set(buffer_names)):
        findings.append(Finding(
            loc, 0, "AUD005", ERROR,
            f"name {clashing!r} is both a parameter and a buffer; "
            f"state_dict() silently keeps only one",
        ))
    seen: set = set()
    for name in param_names + buffer_names:
        if name in seen:
            findings.append(Finding(
                loc, 0, "AUD005", ERROR,
                f"duplicate state key {name!r}",
            ))
        seen.add(name)

    state = model.state_dict()
    expected = set(param_names) | set(buffer_names)
    missing = expected - set(state)
    extra = set(state) - expected
    if missing or extra:
        findings.append(Finding(
            loc, 0, "AUD005", ERROR,
            f"state_dict() keys diverge from the registered tree: "
            f"missing={sorted(missing)}, unexpected={sorted(extra)}",
        ))
    else:
        try:
            model.load_state_dict(state, strict=True)
        except Exception as exc:  # asymmetric override or shape drift
            findings.append(Finding(
                loc, 0, "AUD005", ERROR,
                f"load_state_dict(state_dict()) round trip failed: {exc}",
            ))
    return findings


def audit_model(model: Module, model_name: str = "model",
                include_batch_statistics: bool = True) -> List[Finding]:
    """Parameter, batch-statistics, and state-dict audits in one list.

    Quantization coverage is intentionally separate
    (:func:`audit_quantization`): on an unconverted float model every
    layer "bypasses" by design.
    """
    findings = audit_parameters(model, model_name)
    if include_batch_statistics:
        findings += audit_batch_statistics(model, model_name)
    findings += audit_state_dict(model, model_name)
    return findings


# ---------------------------------------------------------------------------
# CLI: sweep the model registry (the CI `analysis` job entry point)
# ---------------------------------------------------------------------------

def _check_registry_model(name: str, width: float, image_size: int,
                          batch: int, verbose: bool) -> List[Finding]:
    from ..models import create_encoder
    from ..quant import prepare

    loc = _loc(name)
    findings: List[Finding] = []
    encoder = create_encoder(name, width_multiplier=width,
                             rng=np.random.default_rng(0))
    input_shape = (batch, 3, image_size, image_size)
    try:
        report = shapecheck(encoder, input_shape)
    except ShapeError as exc:
        findings.append(Finding(loc, 0, "SHP001", ERROR,
                                str(exc).splitlines()[0]))
        return findings
    if report.output_shape != (batch, encoder.feature_dim):
        findings.append(Finding(
            loc, 0, "SHP001", ERROR,
            f"shapecheck output {report.output_shape} does not match "
            f"declared feature_dim {encoder.feature_dim}",
        ))
    if verbose:
        print(report.render())

    findings += audit_model(encoder, name, include_batch_statistics=False)

    prepare(encoder)
    coverage = audit_quantization(encoder, name)
    findings += coverage.findings()
    if coverage.coverage < 1.0:
        findings.append(Finding(
            loc, 0, "AUD001", ERROR,
            f"prepare() left coverage at "
            f"{100.0 * coverage.coverage:.1f}% "
            f"({coverage.quantized}/{coverage.total})",
        ))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Shapecheck + audit every registry encoder; nonzero on any error."""
    from ..models import available_encoders

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.graph",
        description="Static shape/quantization audit of registry models.",
    )
    parser.add_argument("--models", default=None,
                        help="comma-separated registry names "
                             "(default: all)")
    parser.add_argument("--width", type=float, default=0.125,
                        help="width multiplier for audited models")
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-layer shape traces")
    args = parser.parse_args(argv)

    names = (args.models.split(",") if args.models
             else available_encoders())
    findings: List[Finding] = []
    for name in names:
        findings += _check_registry_model(
            name.strip(), args.width, args.image_size, args.batch,
            args.verbose,
        )
        if not args.json:
            print(f"audited {name}: "
                  f"{'ok' if not findings else f'{len(findings)} finding(s) so far'}")
    print(render_json(findings) if args.json else render_text(findings))
    return exit_code(findings)


if __name__ == "__main__":
    sys.exit(main())
