"""Contrastive Quant (DAC 2022) — full-system reproduction.

Quantization noise, applied at randomly sampled precisions to weights and
activations, is used as an *augmentation* for contrastive learning.  The
package layout:

- :mod:`repro.nn` — numpy autograd / layers / optimizers (substrate).
- :mod:`repro.quant` — the paper's linear quantizer (Eq. 10), fake-quant
  with a straight-through estimator, precision-switchable modules.
- :mod:`repro.models` — ResNet-18/34/74/110/152 and MobileNetV2 encoders.
- :mod:`repro.data` — synthetic dataset generators and augmentations.
- :mod:`repro.contrastive` — SimCLR, BYOL, and the CQ-A/B/C/Quant pipelines.
- :mod:`repro.eval` — fine-tuning, linear evaluation, detection transfer,
  and t-SNE harnesses.
- :mod:`repro.experiments` — per-table experiment configs and runners.
- :mod:`repro.telemetry` — metrics registry, op-level profiler, and the
  trainer event/callback protocol (JSONL run logs, throughput meters).
- :mod:`repro.serving` — embedding service over converted models:
  versioned registry, request micro-batching, LRU cache, load generator.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "quant",
    "models",
    "data",
    "contrastive",
    "eval",
    "experiments",
    "telemetry",
    "serving",
]
