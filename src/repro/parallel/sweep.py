"""Process-parallel executor for independent experiment jobs.

A sweep is a list of :class:`SweepJob` entries — each a picklable
module-level callable plus kwargs (table rows, precision-set ablations,
multi-seed repeats).  :class:`SweepExecutor` runs them across a bounded
pool and returns a :class:`SweepResult` of structured per-job outcomes:

- **Crash isolation** — an exception inside a job is caught *in the
  worker* and comes back as a ``JobResult`` carrying the error type,
  message, and traceback text; the sweep keeps running.  Only a
  hard-killed worker (segfault, OOM kill) breaks the pool, and even then
  the affected jobs report structured ``BrokenProcessPool`` errors
  instead of raising out of the sweep.
- **Per-job telemetry** — with ``telemetry_root`` set, every job gets
  its own subdirectory injected as a ``telemetry_dir`` kwarg, so JSONL
  run logs from parallel jobs never interleave.
- **Merged results** — ``SweepResult.format_table()`` renders one
  aligned status table; ``values()`` collects successful payloads keyed
  by job name.

Backends: ``"process"`` (fork start method; the default where
available), ``"thread"``, and ``"serial"`` (inline, for debugging and
platforms without fork — also what ``"auto"`` degrades to for a single
worker).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import pathlib
import re
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Union

__all__ = ["SweepJob", "JobResult", "SweepResult", "SweepExecutor"]


def _job_slug(name: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-").lower()
    return slug or "job"


@dataclasses.dataclass
class SweepJob:
    """One unit of sweep work.

    ``fn`` must be importable from the module namespace (a top-level
    function) so the process backend can pickle it; ``kwargs`` must be
    picklable for the same reason.
    """

    name: str
    fn: Callable
    kwargs: Dict[str, object] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class JobResult:
    """Structured outcome of one job — success payload or error report."""

    name: str
    ok: bool
    value: object = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    seconds: float = 0.0
    telemetry_dir: Optional[str] = None

    def summary(self) -> str:
        if self.ok:
            return "ok"
        return f"{self.error_type}: {self.error}"


class SweepResult:
    """All job outcomes of one sweep, in submission order."""

    def __init__(self, results: List[JobResult], elapsed_seconds: float,
                 backend: str) -> None:
        self.results = results
        self.elapsed_seconds = elapsed_seconds
        self.backend = backend

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> List[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    def values(self) -> Dict[str, object]:
        """Successful payloads keyed by job name."""
        return {r.name: r.value for r in self.results if r.ok}

    def raise_failures(self) -> "SweepResult":
        """Raise a summary error if any job failed; else return self."""
        if self.failed:
            details = "; ".join(
                f"{r.name} ({r.error_type}: {r.error})" for r in self.failed
            )
            raise RuntimeError(
                f"{len(self.failed)}/{len(self.results)} sweep jobs "
                f"failed: {details}"
            )
        return self

    def format_table(self, title: str = "") -> str:
        """Merged status table (aligned text, one row per job)."""
        from ..experiments.tables import format_table

        rows = [
            [r.name, "ok" if r.ok else "FAILED", f"{r.seconds:.2f}s",
             "" if r.ok else f"{r.error_type}: {r.error}"]
            for r in self.results
        ]
        return format_table(["Job", "Status", "Time", "Error"], rows,
                            title=title)


def _run_job_isolated(fn: Callable, kwargs: Dict[str, object]) -> Dict[str, object]:
    """Execute one job, catching its failure *inside* the worker."""
    start = time.perf_counter()
    try:
        value = fn(**kwargs)
        return {
            "ok": True,
            "value": value,
            "seconds": time.perf_counter() - start,
        }
    except Exception as exc:  # crash isolation: report, don't propagate
        return {
            "ok": False,
            "error_type": type(exc).__name__,
            "error": str(exc),
            "traceback": traceback.format_exc(),
            "seconds": time.perf_counter() - start,
        }


class SweepExecutor:
    """Run independent jobs across a bounded worker pool."""

    def __init__(
        self,
        max_workers: int = 2,
        backend: str = "auto",
        telemetry_root: Optional[Union[str, pathlib.Path]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if backend not in ("auto", "process", "thread", "serial"):
            raise ValueError(
                f"backend must be auto/process/thread/serial, got {backend!r}"
            )
        if backend == "auto":
            if max_workers == 1:
                backend = "serial"
            elif "fork" in multiprocessing.get_all_start_methods():
                backend = "process"
            else:
                backend = "thread"
        if (backend == "process"
                and "fork" not in multiprocessing.get_all_start_methods()):
            raise ValueError(
                "process backend needs the fork start method; pass "
                "backend='auto' for the thread fallback"
            )
        self.max_workers = max_workers
        self.backend = backend
        self.telemetry_root = (
            None if telemetry_root is None else pathlib.Path(telemetry_root)
        )

    def _prepare(self, job: SweepJob) -> Dict[str, object]:
        kwargs = dict(job.kwargs)
        telemetry_dir = None
        if self.telemetry_root is not None and "telemetry_dir" not in kwargs:
            telemetry_dir = self.telemetry_root / _job_slug(job.name)
            telemetry_dir.mkdir(parents=True, exist_ok=True)
            kwargs["telemetry_dir"] = str(telemetry_dir)
        elif "telemetry_dir" in kwargs:
            telemetry_dir = kwargs["telemetry_dir"]
        return {
            "kwargs": kwargs,
            "telemetry_dir": None if telemetry_dir is None
            else str(telemetry_dir),
        }

    def _make_executor(self) -> concurrent.futures.Executor:
        if self.backend == "process":
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="sweep"
        )

    def run(self, jobs: Sequence[SweepJob]) -> SweepResult:
        """Execute ``jobs``; never raises for in-job failures."""
        start = time.perf_counter()
        prepared = [self._prepare(job) for job in jobs]
        if self.backend == "serial":
            payloads = [
                _run_job_isolated(job.fn, prep["kwargs"])
                for job, prep in zip(jobs, prepared)
            ]
        else:
            with self._make_executor() as executor:
                futures = [
                    executor.submit(_run_job_isolated, job.fn, prep["kwargs"])
                    for job, prep in zip(jobs, prepared)
                ]
                payloads = []
                for future in futures:
                    try:
                        payloads.append(future.result())
                    except Exception as exc:
                        # A hard-killed worker (BrokenProcessPool) or a
                        # submission pickling error: still a structured
                        # report, never a dead sweep.
                        payloads.append({
                            "ok": False,
                            "error_type": type(exc).__name__,
                            "error": str(exc),
                            "traceback": traceback.format_exc(),
                            "seconds": 0.0,
                        })
        results = [
            JobResult(name=job.name, telemetry_dir=prep["telemetry_dir"],
                      **payload)
            for job, prep, payload in zip(jobs, prepared, payloads)
        ]
        return SweepResult(results, time.perf_counter() - start,
                           backend=self.backend)
