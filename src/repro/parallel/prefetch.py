"""Prefetching batch pipeline over an order-independent loader.

The wrapped loader must use the order-independent seeding mode
(``DataLoader(seed=...)``): batch production is then a pure function of
``(epoch, indices)``, so it can run on any worker — or be replayed
inline — and produce the same bytes.  The pipeline keeps up to
``num_workers * prefetch_factor`` batches in flight and yields them in
epoch order, overlapping augmentation with the consumer's compute.

Backends:

- ``"fork"`` — a :class:`concurrent.futures.ProcessPoolExecutor` on the
  fork start method.  Workers inherit the dataset by copy-on-write (the
  pool initializer receives the loader object through the fork, never
  through pickle), so startup cost is independent of dataset size.
- ``"thread"`` — a thread pool; the automatic fallback on platforms
  without fork.  Same byte-identical results (collation is pure); the
  overlap is only as good as numpy's GIL release, so prefer fork where
  available.

``backend="auto"`` picks fork when the platform offers it.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from collections import deque
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["PrefetchLoader", "available_backends", "resolve_backend"]

#: Per-worker-process loader, installed by the pool initializer.  Each
#: worker process belongs to exactly one pool, so a single slot is safe.
_WORKER_LOADER = None


def _init_worker(loader) -> None:
    global _WORKER_LOADER
    _WORKER_LOADER = loader


def _collate_in_worker(epoch: int, indices: np.ndarray):
    return _WORKER_LOADER.collate(epoch, indices)


def available_backends() -> Tuple[str, ...]:
    """Backends usable on this platform, preferred first."""
    if "fork" in multiprocessing.get_all_start_methods():
        return ("fork", "thread")
    return ("thread",)


def resolve_backend(backend: str) -> str:
    """Map a requested backend (or ``"auto"``) to a usable one."""
    usable = available_backends()
    if backend == "auto":
        return usable[0]
    if backend not in ("fork", "thread"):
        raise ValueError(
            f"backend must be 'auto', 'fork', or 'thread', got {backend!r}"
        )
    if backend not in usable:
        raise ValueError(
            f"backend {backend!r} is unavailable on this platform "
            f"(usable: {usable}); pass 'auto' for the fallback"
        )
    return backend


class PrefetchLoader:
    """Iterate a seeded :class:`~repro.data.DataLoader` ahead of time.

    Drop-in batch source for ``TrainerBase.fit``: iterating it runs one
    epoch of the wrapped loader (advancing the loader's epoch counter),
    ``len()`` matches, and checkpoint state proxies through — so a
    resumed run with prefetching is bit-exact with an inline one.
    """

    def __init__(
        self,
        loader,
        num_workers: int = 2,
        prefetch_factor: int = 2,
        backend: str = "auto",
    ) -> None:
        if num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1 for prefetching (use the "
                f"loader directly for inline collation), got {num_workers}"
            )
        if prefetch_factor <= 0:
            raise ValueError(
                f"prefetch_factor must be >= 1, got {prefetch_factor}"
            )
        if getattr(loader, "seed", None) is None:
            raise ValueError(
                "PrefetchLoader needs a loader in order-independent "
                "seeding mode (DataLoader(seed=...)); a legacy rng= "
                "stream cannot be split across workers deterministically"
            )
        self.loader = loader
        self.num_workers = num_workers
        self.prefetch_factor = prefetch_factor
        self.backend = resolve_backend(backend)
        self.queue_depth = 0
        self._executor: Optional[concurrent.futures.Executor] = None

    # -- pool lifecycle ---------------------------------------------------
    def _ensure_executor(self) -> concurrent.futures.Executor:
        if self._executor is None:
            if self.backend == "fork":
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.num_workers,
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=_init_worker,
                    initargs=(self.loader,),
                )
            else:
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="prefetch",
                )
        return self._executor

    def _submit(self, executor, epoch: int, chunk: np.ndarray):
        if self.backend == "fork":
            return executor.submit(_collate_in_worker, epoch, chunk)
        return executor.submit(self.loader.collate, epoch, chunk)

    def close(self) -> None:
        """Shut the worker pool down (restarts lazily if iterated again)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self.queue_depth = 0

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- iteration --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.loader)

    def __iter__(self) -> Iterator:
        return self.iter_epoch()

    def iter_epoch(self) -> Iterator:
        """One epoch of prefetched batches, in order.

        Workers collate from the frozen ``(epoch, indices)`` recipe while
        the consumer processes earlier batches; the bounded in-flight
        window (``num_workers * prefetch_factor``) provides backpressure
        so an idle consumer does not buffer the whole epoch.
        """
        epoch = self.loader.next_epoch()
        chunks = iter(self.loader.epoch_batches(epoch))
        executor = self._ensure_executor()
        pending = deque()
        try:
            for _ in range(self.num_workers * self.prefetch_factor):
                chunk = next(chunks, None)
                if chunk is None:
                    break
                pending.append(self._submit(executor, epoch, chunk))
            while pending:
                batch = pending.popleft().result()
                chunk = next(chunks, None)
                if chunk is not None:
                    pending.append(self._submit(executor, epoch, chunk))
                self.queue_depth = len(pending)
                yield batch
        finally:
            for future in pending:
                future.cancel()
            self.queue_depth = 0

    # -- checkpoint state (proxied to the wrapped loader) -----------------
    def state_dict(self) -> dict:
        return self.loader.state_dict()

    def load_state_dict(self, state: dict) -> None:
        self.loader.load_state_dict(state)
