"""Parallel execution layer: prefetching data pipeline + sweep executor.

Two independent levers on wall-clock throughput:

- :class:`PrefetchLoader` materialises augmented batches ahead of the
  training step on a fork-based process pool (thread fallback), keyed by
  the order-independent seeding contract of
  :class:`repro.data.DataLoader` — prefetched batches are byte-identical
  to inline ones, so determinism and bit-exact resume survive.
- :class:`SweepExecutor` runs independent experiment jobs (table rows,
  ablation cells, seed repeats) across a bounded process pool with
  per-job telemetry directories and crash isolation: a failing job
  yields a structured :class:`JobResult` error instead of killing the
  sweep.

Lint rule RPR006 fences raw ``multiprocessing``/``concurrent.futures``
use to this package so worker seeding and crash handling stay in one
audited place.
"""

from .prefetch import PrefetchLoader, available_backends, resolve_backend
from .sweep import JobResult, SweepExecutor, SweepJob, SweepResult

__all__ = [
    "PrefetchLoader",
    "available_backends",
    "resolve_backend",
    "SweepExecutor",
    "SweepJob",
    "SweepResult",
    "JobResult",
]
