"""Summarize a JSONL run log directory::

    python -m repro.telemetry.report runs/            # latest run
    python -m repro.telemetry.report runs/run-x.jsonl # specific run

Prints final loss, throughput, and (when the log contains a ``profile``
record) the op-level wall-clock breakdown — the machine-readable summary
benchmark jobs grep out of CI logs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

from .callbacks import iter_records

__all__ = ["latest_run", "summarize", "format_summary", "main"]


def latest_run(directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Most recently modified ``*.jsonl`` file under ``directory``."""
    directory = pathlib.Path(directory)
    runs = sorted(directory.glob("*.jsonl"), key=lambda p: p.stat().st_mtime)
    if not runs:
        raise FileNotFoundError(f"no .jsonl run logs under {directory}")
    return runs[-1]


def summarize(records: List[Dict]) -> Dict[str, object]:
    """Reduce one run's records to the headline numbers."""
    steps = [r for r in records if r.get("event") == "step"]
    epochs = [r for r in records if r.get("event") == "epoch_end"]
    fit_start = next((r for r in records if r.get("event") == "fit_start"), None)
    fit_end = next(
        (r for r in records if r.get("event") == "fit_end"), None
    )
    profile = next(
        (r for r in records if r.get("event") == "profile"), None
    )

    summary: Dict[str, object] = {
        "trainer": (fit_start or {}).get("trainer")
        or (steps[0].get("trainer") if steps else None),
        "epochs": len(epochs),
        "steps": len(steps),
        "images": sum(int(r.get("batch_size", 0)) for r in steps),
        "final_loss": epochs[-1].get("loss") if epochs else None,
    }
    if steps and fit_start is not None:
        elapsed = float(steps[-1]["time"]) - float(fit_start["time"])
        summary["elapsed_seconds"] = elapsed
        if elapsed > 0:
            summary["steps_per_sec"] = summary["steps"] / elapsed
            summary["images_per_sec"] = summary["images"] / elapsed
    last_step = steps[-1] if steps else {}
    if "q1" in last_step:
        summary["last_precisions"] = (last_step["q1"], last_step["q2"])
    if "loss_terms" in last_step:
        summary["loss_terms"] = last_step["loss_terms"]
    timed_steps = [r for r in steps if "data_wait_seconds" in r]
    if timed_steps:
        data_wait = sum(float(r["data_wait_seconds"]) for r in timed_steps)
        compute = sum(float(r.get("compute_seconds", 0.0))
                      for r in timed_steps)
        summary["data_wait_seconds"] = data_wait
        summary["compute_seconds"] = compute
        total = data_wait + compute
        summary["data_stalled_fraction"] = data_wait / total if total else 0.0
    cache_steps = [r for r in steps if "quant_cache_hits" in r]
    if cache_steps:
        hits = sum(int(r["quant_cache_hits"]) for r in cache_steps)
        misses = sum(int(r.get("quant_cache_misses", 0)) for r in cache_steps)
        summary["quant_cache_hits"] = hits
        summary["quant_cache_misses"] = misses
        total = hits + misses
        summary["quant_cache_hit_rate"] = hits / total if total else 0.0
    engine_steps = [r for r in steps if "engine_plan_hits" in r]
    if engine_steps:
        plan_hits = sum(int(r["engine_plan_hits"]) for r in engine_steps)
        plan_misses = sum(
            int(r.get("engine_plan_misses", 0)) for r in engine_steps
        )
        retraces = sum(int(r.get("engine_retraces", 0)) for r in engine_steps)
        fallbacks = sum(
            int(r.get("engine_fallbacks", 0)) for r in engine_steps
        )
        summary["engine_plan_hits"] = plan_hits
        summary["engine_plan_misses"] = plan_misses
        summary["engine_retraces"] = retraces
        summary["engine_fallbacks"] = fallbacks
        total = plan_hits + plan_misses + fallbacks
        summary["engine_plan_hit_rate"] = plan_hits / total if total else 0.0
    if fit_end is not None and "history" in fit_end:
        summary["history_keys"] = sorted(fit_end["history"])
    if profile is not None:
        summary["op_categories"] = profile.get("categories", {})
        summary["top_ops"] = profile.get("ops", [])[:5]
    return summary


def format_summary(path: pathlib.Path, summary: Dict[str, object]) -> str:
    lines = [f"run log: {path}"]
    lines.append(
        f"trainer: {summary.get('trainer', '?')}  "
        f"epochs: {summary.get('epochs', 0)}  steps: {summary.get('steps', 0)}"
    )
    final_loss = summary.get("final_loss")
    if final_loss is not None:
        lines.append(f"final loss: {final_loss:.6f}")
    if "images_per_sec" in summary:
        lines.append(
            f"throughput: {summary['images_per_sec']:.1f} images/s "
            f"({summary['steps_per_sec']:.2f} steps/s over "
            f"{summary['elapsed_seconds']:.2f}s)"
        )
    if "last_precisions" in summary:
        q1, q2 = summary["last_precisions"]
        lines.append(f"last sampled precisions: (q1={q1}, q2={q2})")
    if "data_stalled_fraction" in summary:
        lines.append(
            f"data pipeline: stalled "
            f"{100.0 * summary['data_stalled_fraction']:.1f}% of step time "
            f"({summary['data_wait_seconds']:.2f}s waiting on batches, "
            f"{summary['compute_seconds']:.2f}s computing)"
        )
    if "quant_cache_hit_rate" in summary:
        lines.append(
            f"quant cache: {100.0 * summary['quant_cache_hit_rate']:.1f}% "
            f"hit rate ({summary['quant_cache_hits']} hits, "
            f"{summary['quant_cache_misses']} misses)"
        )
    if "engine_plan_hit_rate" in summary:
        lines.append(
            f"engine: {summary['engine_retraces']} retraces, "
            f"{100.0 * summary['engine_plan_hit_rate']:.1f}% plan hits "
            f"({summary['engine_plan_hits']} hits, "
            f"{summary['engine_plan_misses']} misses, "
            f"{summary['engine_fallbacks']} fallbacks)"
        )
    if "loss_terms" in summary:
        terms = ", ".join(
            f"{name}={value:.4f}"
            for name, value in summary["loss_terms"].items()
        )
        lines.append(f"last loss terms: {terms}")
    if "op_categories" in summary:
        cats = ", ".join(
            f"{name}={1e3 * seconds:.1f}ms"
            for name, seconds in summary["op_categories"].items()
        )
        lines.append(f"op time by category: {cats}")
    if summary.get("top_ops"):
        lines.append("top ops by wall-clock:")
        for op in summary["top_ops"]:
            lines.append(
                f"  {op['name']:<18} {1e3 * op['total_seconds']:>9.2f} ms "
                f"({op['calls']} fwd calls)"
            )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarize the latest JSONL run log in a directory.",
    )
    parser.add_argument(
        "path",
        help="a runs/ directory (latest run is picked) or a .jsonl file",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    args = parser.parse_args(argv)

    path = pathlib.Path(args.path)
    try:
        run = path if path.is_file() else latest_run(path)
    except FileNotFoundError as exc:
        parser.exit(2, f"{parser.prog}: error: {exc}\n")
    summary = summarize(list(iter_records(run)))
    if args.json:
        print(json.dumps({"run": str(run), **summary}, indent=2))
    else:
        print(format_summary(run, summary))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
