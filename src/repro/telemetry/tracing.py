"""Wall-clock tracing: timers, spans, and an autograd op profiler.

Two layers of granularity:

- :class:`Timer` / :func:`span` measure arbitrary code regions and can
  feed a :class:`~repro.telemetry.metrics.MetricsRegistry` histogram.
- :func:`profile` hooks :meth:`repro.nn.autograd.Function.apply` for the
  duration of a ``with`` block and aggregates per-op forward/backward
  wall-clock and call counts — the conv vs matmul vs elementwise
  breakdown needed to see where a quantized training step actually
  spends its time.  The hook is process-global (one profiler at a time)
  and is guaranteed to restore the original ``Function.apply`` on exit.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry

__all__ = ["Timer", "span", "OpProfiler", "OpStat", "profile"]


class Timer:
    """Re-usable wall-clock stopwatch (also a context manager).

    ``elapsed`` accumulates across start/stop cycles so one Timer can
    measure a recurring region (e.g. "data loading" across an epoch).
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: Optional[float] = None

    @property
    def running(self) -> bool:
        return self._started is not None

    def start(self) -> "Timer":
        if self._started is not None:
            raise RuntimeError("Timer is already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@contextlib.contextmanager
def span(name: str, registry: Optional[MetricsRegistry] = None):
    """Time a code region; optionally record it as a histogram sample.

    With a registry, each completed span observes its duration (seconds)
    into ``span_seconds{name=...}`` so repeated spans build a
    distribution (p50/p99 of an epoch, a checkpoint write, ...).
    """
    timer = Timer().start()
    try:
        yield timer
    finally:
        timer.stop()
        if registry is not None:
            registry.histogram("span_seconds", name=name).observe(timer.elapsed)


@dataclasses.dataclass
class OpStat:
    """Aggregated timings for one autograd op class."""

    name: str
    category: str
    calls: int = 0
    forward_seconds: float = 0.0
    backward_calls: int = 0
    backward_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "category": self.category,
            "calls": self.calls,
            "forward_seconds": self.forward_seconds,
            "backward_calls": self.backward_calls,
            "backward_seconds": self.backward_seconds,
            "total_seconds": self.total_seconds,
        }


def _category(cls) -> str:
    """Bucket an op class by its defining module (conv/matmul/...)."""
    return cls.__module__.rsplit(".", 1)[-1].lstrip("_")


class OpProfiler:
    """Aggregate per-op forward/backward wall-clock via ``Function.apply``.

    ``install`` replaces :meth:`Function.apply` with a timing wrapper;
    the wrapper additionally shims each recorded graph node's
    ``backward`` so the backward pass is attributed to the op that
    created the node.  Exactly one profiler may be installed at a time.
    """

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}
        self._original = None  # the classmethod object we displaced

    # -- recording ---------------------------------------------------------
    def _stat(self, cls) -> OpStat:
        stat = self.stats.get(cls.__name__)
        if stat is None:
            stat = OpStat(name=cls.__name__, category=_category(cls))
            self.stats[cls.__name__] = stat
        return stat

    def _record_forward(self, cls, seconds: float) -> None:
        stat = self._stat(cls)
        stat.calls += 1
        stat.forward_seconds += seconds

    def _record_backward(self, cls, seconds: float) -> None:
        stat = self._stat(cls)
        stat.backward_calls += 1
        stat.backward_seconds += seconds

    # -- hook management ---------------------------------------------------
    @property
    def installed(self) -> bool:
        return self._original is not None

    def install(self) -> None:
        from ..nn.autograd import Function

        if self._original is not None:
            raise RuntimeError("OpProfiler is already installed")
        current = Function.__dict__["apply"]
        if getattr(current, "_telemetry_profiler", None) is not None:
            raise RuntimeError(
                "another OpProfiler is already hooked into Function.apply"
            )
        self._original = current
        original_func = current.__func__
        profiler = self

        def apply(cls, *inputs, **kwargs):
            start = time.perf_counter()
            out = original_func(cls, *inputs, **kwargs)
            profiler._record_forward(cls, time.perf_counter() - start)
            ctx = getattr(out, "_ctx", None)
            if ctx is not None:
                original_backward = ctx.backward

                def backward(grad_output):
                    t0 = time.perf_counter()
                    result = original_backward(grad_output)
                    profiler._record_backward(
                        cls, time.perf_counter() - t0
                    )
                    return result

                ctx.backward = backward
            return out

        wrapped = classmethod(apply)
        wrapped._telemetry_profiler = self
        Function.apply = wrapped

    def uninstall(self) -> None:
        from ..nn.autograd import Function

        if self._original is None:
            return
        Function.apply = self._original
        self._original = None

    # -- reporting ---------------------------------------------------------
    def top(self, n: Optional[int] = None, by: str = "total") -> List[OpStat]:
        """Ops sorted by wall-clock (``total``, ``forward`` or ``backward``)."""
        keys = {
            "total": lambda s: s.total_seconds,
            "forward": lambda s: s.forward_seconds,
            "backward": lambda s: s.backward_seconds,
            "calls": lambda s: s.calls,
        }
        if by not in keys:
            raise ValueError(f"unknown sort key {by!r}; choose from {sorted(keys)}")
        ranked = sorted(self.stats.values(), key=keys[by], reverse=True)
        return ranked if n is None else ranked[:n]

    def by_category(self) -> Dict[str, float]:
        """Total seconds per op category (conv, matmul, elementwise, ...)."""
        totals: Dict[str, float] = {}
        for stat in self.stats.values():
            totals[stat.category] = (
                totals.get(stat.category, 0.0) + stat.total_seconds
            )
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable dump (used by run logs and the reporter)."""
        return {
            "ops": [s.as_dict() for s in self.top()],
            "categories": self.by_category(),
        }

    def format_table(self, n: Optional[int] = None) -> str:
        """Human-readable top-N table of op timings."""
        header = f"{'op':<18} {'cat':<12} {'calls':>6} {'fwd ms':>9} {'bwd ms':>9} {'total ms':>9}"
        lines = [header, "-" * len(header)]
        for stat in self.top(n):
            lines.append(
                f"{stat.name:<18} {stat.category:<12} {stat.calls:>6d} "
                f"{1e3 * stat.forward_seconds:>9.2f} "
                f"{1e3 * stat.backward_seconds:>9.2f} "
                f"{1e3 * stat.total_seconds:>9.2f}"
            )
        return "\n".join(lines)


@contextlib.contextmanager
def profile():
    """Profile every autograd op executed inside the block.

    Yields the :class:`OpProfiler`; ``Function.apply`` is restored even
    if the block raises::

        with telemetry.profile() as prof:
            trainer.train_step(v1, v2)
        print(prof.format_table(n=5))
    """
    profiler = OpProfiler()
    profiler.install()
    try:
        yield profiler
    finally:
        profiler.uninstall()
