"""Metrics, tracing, and trainer event telemetry.

Three cooperating layers:

- :mod:`repro.telemetry.metrics` — ``MetricsRegistry`` with labeled
  ``Counter`` / ``Gauge`` / ``Histogram`` series.
- :mod:`repro.telemetry.tracing` — ``Timer`` / ``span()`` region timing
  and ``profile()``, an opt-in autograd op profiler that aggregates
  per-op forward/backward wall-clock (conv vs matmul vs elementwise).
- :mod:`repro.telemetry.events` + :mod:`repro.telemetry.callbacks` —
  the ``Callback``/``EventBus`` protocol every trainer emits through
  (``on_fit_start/on_epoch_start/on_step/on_epoch_end/on_fit_end``) and
  the built-ins: ``JsonlLogger``, ``ConsoleProgress``,
  ``EarlyDivergenceGuard``, ``ThroughputMeter``.

Run logs written by ``JsonlLogger`` are summarised by
``python -m repro.telemetry.report <runs-dir>``.
"""

from .callbacks import (
    CheckpointCallback,
    ConsoleProgress,
    EarlyDivergenceGuard,
    JsonlLogger,
    ThroughputMeter,
    iter_records,
)
from .events import EVENTS, Callback, EventBus, TrainingDiverged
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SeriesView,
    format_series_name,
)
from .tracing import OpProfiler, OpStat, Timer, profile, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SeriesView",
    "format_series_name",
    "Timer",
    "span",
    "OpProfiler",
    "OpStat",
    "profile",
    "EVENTS",
    "Callback",
    "EventBus",
    "TrainingDiverged",
    "CheckpointCallback",
    "JsonlLogger",
    "ConsoleProgress",
    "EarlyDivergenceGuard",
    "ThroughputMeter",
    "iter_records",
]
