"""Labeled metric series: counters, gauges, and histograms.

A :class:`MetricsRegistry` owns every metric for one trainer/run.  Metrics
are identified by ``(name, labels)`` so the same logical quantity can be
tracked per series — e.g. ``loss{term="NCE(f1, f1+)"}`` alongside
``loss{term="NCE(f2, f2+)"}`` — in the style of Prometheus client
libraries, but storing full in-process history (this stack has no scrape
loop; benchmarks and the run reporter read the snapshot directly).

Metrics are written from more than one thread — the
:class:`~repro.serving.EmbeddingService` batcher thread increments
counters while the main thread reads snapshots — so every metric carries
its own lock and the registry guards its series table.  ``inc()`` is a
read-modify-write; without the lock, concurrent increments lose updates.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SeriesView",
    "format_series_name",
]

Labels = Tuple[Tuple[str, str], ...]


def format_series_name(name: str, labels: Labels) -> str:
    """Prometheus-style ``name{key="value", ...}`` rendering."""
    if not labels:
        return name
    inner = ", ".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class SeriesView(Sequence):
    """Read-only live view over a metric's recorded values.

    Used to expose internal telemetry series (e.g. the CQ trainer's
    ``grad_norms``) without letting callers mutate them.  Reads are
    single list operations (atomic under the GIL against the appends a
    Gauge performs), so the view itself carries no lock.
    """

    __slots__ = ("_values",)

    def __init__(self, values: List[float]) -> None:
        self._values = values

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index):
        result = self._values[index]
        return list(result) if isinstance(index, slice) else result

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"SeriesView({self._values!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SeriesView):
            return self._values == other._values
        if isinstance(other, (list, tuple)):
            return list(self._values) == list(other)
        return NotImplemented


class _Metric:
    """Common identity plumbing for all metric kinds.

    Each metric owns a non-reentrant lock; accessors must read raw state
    directly under it (never through another locked property, which
    would self-deadlock).
    """

    kind = "metric"

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def full_name(self) -> str:
        return format_series_name(self.name, self.labels)

    def snapshot(self) -> Dict[str, object]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (steps, images, events)."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"kind": self.kind, "value": self._value}


class Gauge(_Metric):
    """Point-in-time value that also remembers its full series.

    ``set()`` appends to the series; ``value`` is the latest sample.  The
    series makes gauges double as per-step traces (grad norm, epoch loss)
    without a separate time-series store.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self._series: List[float] = []

    def set(self, value: float) -> None:
        with self._lock:
            self._series.append(float(value))

    @property
    def value(self) -> Optional[float]:
        with self._lock:
            return self._series[-1] if self._series else None

    @property
    def series(self) -> Tuple[float, ...]:
        with self._lock:
            return tuple(self._series)

    def view(self) -> SeriesView:
        """Live read-only view (tracks future ``set()`` calls)."""
        with self._lock:
            return SeriesView(self._series)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "kind": self.kind,
                "value": self._series[-1] if self._series else None,
                "count": len(self._series),
            }


class Histogram(_Metric):
    """Distribution of observed values with exact percentiles.

    Observations are kept in full (runs here are small enough that exact
    quantiles beat bucketed approximations); ``percentile`` uses linear
    interpolation like ``numpy.percentile``.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def _copy_values(self) -> List[float]:
        with self._lock:
            return list(self._values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def sum(self) -> float:
        values = self._copy_values()
        return float(np.sum(values)) if values else 0.0

    @property
    def mean(self) -> float:
        values = self._copy_values()
        return float(np.mean(values)) if values else float("nan")

    @property
    def min(self) -> float:
        values = self._copy_values()
        return float(np.min(values)) if values else float("nan")

    @property
    def max(self) -> float:
        values = self._copy_values()
        return float(np.max(values)) if values else float("nan")

    def percentile(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        values = self._copy_values()
        if not values:
            return float("nan")
        return float(np.percentile(values, q))

    def snapshot(self) -> Dict[str, object]:
        # One consistent copy; computing from locked properties would
        # both re-acquire the lock and mix epochs between fields.
        values = self._copy_values()
        if not values:
            return {"kind": self.kind, "count": 0}
        return {
            "kind": self.kind,
            "count": len(values),
            "sum": float(np.sum(values)),
            "mean": float(np.mean(values)),
            "min": float(np.min(values)),
            "max": float(np.max(values)),
            "p50": float(np.percentile(values, 50)),
            "p90": float(np.percentile(values, 90)),
            "p99": float(np.percentile(values, 99)),
        }


MetricType = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Factory and store for one run's metric series.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: requesting
    the same ``(name, labels)`` twice returns the same object, so trainers
    and callbacks can share series without passing references around.

    The registry lock is an RLock because ``load_state_dict`` get-or-
    creates while already holding it; individual metric objects guard
    their own recorded data.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[Tuple[str, Labels], MetricType] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> Tuple[str, Labels]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get_or_create(
        self, cls: Type[MetricType], name: str, labels: Dict[str, object]
    ) -> MetricType:
        key = self._key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(key[0], key[1])
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {metric.full_name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name: str, /, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, /, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, /, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def series(self, name: str) -> List[MetricType]:
        """Every metric registered under ``name`` (across label sets)."""
        with self._lock:
            return [m for (n, _), m in self._metrics.items() if n == name]

    def __iter__(self) -> Iterator[MetricType]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return any(n == name for n, _ in self._metrics)

    def collect(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every series keyed by its rendered full name."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {m.full_name: m.snapshot() for m in metrics}

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Full JSON-friendly dump of every metric's recorded data.

        Unlike :meth:`collect` (a summary snapshot), this preserves the
        complete gauge/histogram series so a resumed run's metrics — and
        anything derived from them, like the CQ trainer's ``grad_norms``
        history — continue exactly where they left off.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        entries = []
        for metric in metrics:
            entry: Dict[str, object] = {
                "name": metric.name,
                "labels": [list(pair) for pair in metric.labels],
                "kind": metric.kind,
            }
            with metric._lock:
                if isinstance(metric, Counter):
                    entry["value"] = metric._value
                elif isinstance(metric, Gauge):
                    entry["series"] = list(metric._series)
                else:
                    entry["values"] = list(metric._values)
            entries.append(entry)
        return {"metrics": entries}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` dump.

        Metrics are get-or-created and refilled *in place*, so live
        :class:`SeriesView` objects handed out before the restore keep
        tracking the restored series.
        """
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        with self._lock:
            for entry in state["metrics"]:
                cls = kinds[entry["kind"]]
                labels = {key: value for key, value in entry["labels"]}
                metric = self._get_or_create(cls, entry["name"], labels)
                with metric._lock:
                    if cls is Counter:
                        metric._value = float(entry["value"])
                    elif cls is Gauge:
                        metric._series[:] = [float(v) for v in entry["series"]]
                    else:
                        metric._values[:] = [
                            float(v) for v in entry["values"]
                        ]
