"""Built-in callbacks: JSONL run logs, console progress, guards, meters."""

from __future__ import annotations

import itertools
import json
import math
import os
import pathlib
import sys
import time
from typing import Dict, Iterator, Optional, Union

import numpy as np

from .events import Callback, TrainingDiverged

__all__ = [
    "CheckpointCallback",
    "ConsoleProgress",
    "EarlyDivergenceGuard",
    "JsonlLogger",
    "ThroughputMeter",
    "iter_records",
]

#: Disambiguates run files created within the same second of one process.
_RUN_COUNTER = itertools.count()


def _jsonify(value):
    """Best-effort conversion of numpy scalars/arrays for json.dumps."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


def iter_records(path: Union[str, pathlib.Path]) -> Iterator[Dict]:
    """Parse a JSONL run log back into dicts (skipping blank lines)."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


class JsonlLogger(Callback):
    """Append-only JSONL run log under a ``runs/``-style directory.

    Every event becomes one JSON line ``{"event": ..., "time": ...,
    "trainer": ..., **payload}``; lines are flushed as written so a
    crashed run still leaves a parseable prefix.  Extra non-lifecycle
    records (e.g. an op-profile summary) can be appended with
    :meth:`log`.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path] = "runs",
        run_name: Optional[str] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if run_name is None:
            run_name = (
                f"run-{time.strftime('%Y%m%d-%H%M%S')}"
                f"-{os.getpid()}-{next(_RUN_COUNTER):03d}"
            )
        self.run_name = run_name
        self.path = self.directory / f"{run_name}.jsonl"

    def log(self, event: str, payload: Dict) -> None:
        """Append one record outside the trainer lifecycle."""
        record = {"event": event, "time": time.time(), **payload}
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, default=_jsonify) + "\n")

    def _write(self, event: str, trainer, payload: Dict) -> None:
        self.log(event, {"trainer": type(trainer).__name__, **payload})

    def on_fit_start(self, trainer, payload: Dict) -> None:
        self._write("fit_start", trainer, payload)

    def on_epoch_start(self, trainer, payload: Dict) -> None:
        self._write("epoch_start", trainer, payload)

    def on_step(self, trainer, payload: Dict) -> None:
        self._write("step", trainer, payload)

    def on_epoch_end(self, trainer, payload: Dict) -> None:
        self._write("epoch_end", trainer, payload)

    def on_fit_end(self, trainer, payload: Dict) -> None:
        self._write("fit_end", trainer, payload)


class ConsoleProgress(Callback):
    """Per-epoch progress lines on stdout (or a supplied stream)."""

    def __init__(self, stream=None, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.stream = stream
        self.every = every

    def _print(self, message: str) -> None:
        print(message, file=self.stream or sys.stdout, flush=True)

    def on_fit_start(self, trainer, payload: Dict) -> None:
        self._print(
            f"[{type(trainer).__name__}] fit: {payload.get('epochs', '?')} epochs"
        )

    def on_epoch_end(self, trainer, payload: Dict) -> None:
        epoch = payload.get("epoch", 0)
        if (epoch + 1) % self.every == 0:
            self._print(
                f"[{type(trainer).__name__}] epoch {epoch + 1}: "
                f"loss={payload.get('loss', float('nan')):.4f}"
            )

    def on_fit_end(self, trainer, payload: Dict) -> None:
        history = payload.get("history", {})
        losses = history.get("loss", [])
        final = losses[-1] if losses else float("nan")
        self._print(f"[{type(trainer).__name__}] done: final loss={final:.4f}")


class EarlyDivergenceGuard(Callback):
    """Abort on NaN/inf or exploding loss with an explanatory error.

    The paper observes CQ-B can diverge with exploding gradients; this
    guard turns hours of garbage epochs into an immediate
    :class:`TrainingDiverged` naming the offending step.
    """

    def __init__(self, max_loss: float = 1e6) -> None:
        if max_loss <= 0:
            raise ValueError(f"max_loss must be > 0, got {max_loss}")
        self.max_loss = max_loss

    def _check(self, trainer, payload: Dict, what: str) -> None:
        loss = payload.get("loss")
        if loss is None:
            return
        where = (
            f"{type(trainer).__name__} epoch {payload.get('epoch', '?')}"
            + (f" step {payload['step']}" if "step" in payload else "")
        )
        if not math.isfinite(loss):
            raise TrainingDiverged(
                f"{what} loss is {loss!r} at {where}: training diverged "
                "(consider max_grad_norm clipping or a smaller lr)"
            )
        if abs(loss) > self.max_loss:
            raise TrainingDiverged(
                f"{what} loss {loss:.3g} exceeds max_loss={self.max_loss:.3g} "
                f"at {where}: training diverged (consider max_grad_norm "
                "clipping or a smaller lr)"
            )

    def on_step(self, trainer, payload: Dict) -> None:
        self._check(trainer, payload, "step")

    def on_epoch_end(self, trainer, payload: Dict) -> None:
        self._check(trainer, payload, "epoch")


class CheckpointCallback(Callback):
    """Save trainer state through a checkpoint store at epoch boundaries.

    ``checkpointer`` is duck-typed — anything with a
    ``save(state, step, metric=..., metadata=...)`` method works; in
    practice it is a :class:`repro.checkpoint.Checkpointer`.  The trainer
    must expose ``state_dict()`` (all trainers derived from
    :class:`~repro.contrastive.base.TrainerBase` do).

    Saves every ``every`` epochs, plus the final epoch at fit end unless
    it was just saved.  The step index is the number of *completed*
    epochs, which is also the resume point ``fit(resume_from=...)``
    continues from.
    """

    def __init__(self, checkpointer, every: int = 1, save_final: bool = True) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.checkpointer = checkpointer
        self.every = every
        self.save_final = save_final
        self._last_saved: Optional[int] = None

    def _save(self, trainer, epoch: int, loss) -> None:
        metadata = {"epoch": epoch, "trainer": type(trainer).__name__}
        self.checkpointer.save(
            trainer.state_dict(),
            step=epoch + 1,
            metric=None if loss is None else float(loss),
            metadata=metadata,
        )
        self._last_saved = epoch

    def on_fit_start(self, trainer, payload: Dict) -> None:
        self._last_saved = None

    def on_epoch_end(self, trainer, payload: Dict) -> None:
        epoch = int(payload.get("epoch", 0))
        if (epoch + 1) % self.every == 0:
            self._save(trainer, epoch, payload.get("loss"))

    def on_fit_end(self, trainer, payload: Dict) -> None:
        if not self.save_final:
            return
        history = payload.get("history", {})
        losses = history.get("loss", [])
        if not losses:
            return
        epoch = len(losses) - 1
        if self._last_saved != epoch:
            self._save(trainer, epoch, losses[-1])


class ThroughputMeter(Callback):
    """Measure images/sec and steps/sec across one fit() call.

    Results are readable as properties while training and are pushed
    into the trainer's metrics registry (``throughput_images_per_sec``,
    ``throughput_steps_per_sec`` gauges) at fit end.
    """

    def __init__(self) -> None:
        self.steps = 0
        self.images = 0
        self._start: Optional[float] = None
        self._elapsed = 0.0

    @property
    def elapsed_seconds(self) -> float:
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    @property
    def steps_per_sec(self) -> float:
        elapsed = self.elapsed_seconds
        return self.steps / elapsed if elapsed > 0 else 0.0

    @property
    def images_per_sec(self) -> float:
        elapsed = self.elapsed_seconds
        return self.images / elapsed if elapsed > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "steps": self.steps,
            "images": self.images,
            "elapsed_seconds": self.elapsed_seconds,
            "steps_per_sec": self.steps_per_sec,
            "images_per_sec": self.images_per_sec,
        }

    def on_fit_start(self, trainer, payload: Dict) -> None:
        self.steps = 0
        self.images = 0
        self._elapsed = 0.0
        self._start = time.perf_counter()

    def on_step(self, trainer, payload: Dict) -> None:
        self.steps += 1
        self.images += int(payload.get("batch_size", 0))

    def on_fit_end(self, trainer, payload: Dict) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None
        metrics = getattr(trainer, "metrics", None)
        if metrics is not None:
            metrics.gauge("throughput_images_per_sec").set(self.images_per_sec)
            metrics.gauge("throughput_steps_per_sec").set(self.steps_per_sec)
