"""Trainer lifecycle events: the ``Callback`` protocol and ``EventBus``.

Trainers emit a fixed set of events (``EVENTS``) through an
:class:`EventBus`; callbacks subscribe by implementing the matching
method.  Every hook receives ``(trainer, payload)`` where ``payload`` is
a plain dict — the JSONL logger serialises it verbatim, so trainers keep
payloads JSON-friendly (floats, ints, strings, flat dicts).

Callbacks are invoked in registration order.  Exceptions propagate: that
is how :class:`~repro.telemetry.callbacks.EarlyDivergenceGuard` aborts a
diverging run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["EVENTS", "Callback", "EventBus", "TrainingDiverged"]

#: The trainer lifecycle, in emission order within one fit() call.
EVENTS = (
    "on_fit_start",
    "on_epoch_start",
    "on_step",
    "on_epoch_end",
    "on_fit_end",
)


class TrainingDiverged(RuntimeError):
    """Raised by a callback to abort a run whose loss is NaN/exploding."""


class Callback:
    """Base class with no-op handlers for every trainer event.

    Subclass and override the hooks you need.  Any object with matching
    method names works too — the bus dispatches by ``getattr`` — but
    subclassing documents intent and survives event additions.
    """

    def on_fit_start(self, trainer, payload: Dict) -> None:
        """Called once before the first epoch; payload has ``epochs``."""

    def on_epoch_start(self, trainer, payload: Dict) -> None:
        """Called before each epoch; payload has ``epoch``."""

    def on_step(self, trainer, payload: Dict) -> None:
        """Called after each optimizer step; payload has ``step``,
        ``epoch``, ``loss``, ``batch_size`` plus trainer extras."""

    def on_epoch_end(self, trainer, payload: Dict) -> None:
        """Called after each epoch; payload has ``epoch`` and ``loss``."""

    def on_fit_end(self, trainer, payload: Dict) -> None:
        """Called once after the last epoch; payload has ``history``."""


class EventBus:
    """Fan one trainer's events out to an ordered list of callbacks."""

    def __init__(self, callbacks: Iterable = ()) -> None:
        self.callbacks: List = list(callbacks)
        for callback in self.callbacks:
            if not any(callable(getattr(callback, e, None)) for e in EVENTS):
                raise TypeError(
                    f"{type(callback).__name__} implements none of {EVENTS}; "
                    "is it a telemetry callback?"
                )

    def __len__(self) -> int:
        return len(self.callbacks)

    def emit(self, event: str, trainer, payload: Dict) -> None:
        """Dispatch ``event`` to every callback, in registration order."""
        if event not in EVENTS:
            raise ValueError(f"unknown event {event!r}; expected one of {EVENTS}")
        for callback in self.callbacks:
            handler = getattr(callback, event, None)
            if handler is not None:
                handler(trainer, payload)
