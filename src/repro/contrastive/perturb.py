"""Gaussian weight-perturbation augmentation (the paper's future work).

Sec. 4.2 ("Insights") proposes exploring *other* weight/activation
perturbations beyond quantization.  This module implements the most
natural candidate — zero-mean Gaussian noise injected into the encoder's
weights, at a per-iteration sampled noise level — inside the same CQ-C
style loss assembly, so quantization-as-augmentation can be compared
against noise-as-augmentation under identical conditions
(``benchmarks/test_ablation_perturbation.py``).
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Sequence, Union

import numpy as np

from ..engine import run_backward
from ..nn.module import Module
from ..nn.optim import Optimizer
from ..nn.rng import ensure_rng
from ..nn.tensor import Tensor
from .base import TrainerBase
from .losses import nt_xent
from .simclr import SimCLRModel

__all__ = ["GaussianWeightNoise", "NoiseContrastiveTrainer"]


class GaussianWeightNoise:
    """Temporarily add N(0, (std * |w|_rms)^2) noise to a module's weights.

    Noise is scaled by each parameter's RMS so one ``std`` level means the
    same *relative* perturbation for every layer — mirroring how dynamic-
    range quantization scales its step to each tensor.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    @contextlib.contextmanager
    def applied(self, module: Module, std: float):
        if std < 0:
            raise ValueError(f"noise std must be non-negative, got {std}")
        originals: List[np.ndarray] = []
        params = list(module.parameters())
        for param in params:
            originals.append(param.data)
            if std > 0:
                rms = float(np.sqrt(np.mean(param.data.astype(np.float64) ** 2)))
                noise = self.rng.normal(0.0, std * max(rms, 1e-8),
                                        size=param.data.shape)
                param.data = (param.data + noise).astype(param.data.dtype)
        try:
            yield
        finally:
            for param, original in zip(params, originals):
                param.data = original


class NoiseContrastiveTrainer(TrainerBase):
    """CQ-C loss assembly with Gaussian weight noise instead of quantization.

    Each iteration samples two noise levels ``(s1, s2)`` from ``noise_set``
    and enforces (1) view consistency at each level and (2) cross-level
    consistency within each view — the direct analogue of Eq. 9.
    """

    def __init__(
        self,
        model: SimCLRModel,
        noise_set: Sequence[float],
        optimizer: Optimizer,
        rng: Optional[np.random.Generator] = None,
        temperature: float = 0.5,
    ) -> None:
        if not isinstance(model, SimCLRModel):
            raise TypeError(
                f"model must be a SimCLRModel, got {type(model).__name__}"
            )
        levels = sorted(float(s) for s in noise_set)
        if not levels:
            raise ValueError("noise_set must not be empty")
        if levels[0] < 0:
            raise ValueError(f"noise levels must be >= 0, got {levels[0]}")
        self.model = model
        self.noise_set = levels
        self.optimizer = optimizer
        self.rng = ensure_rng(rng)
        self.temperature = temperature
        self.injector = GaussianWeightNoise(self.rng)
        self._init_telemetry()

    def _sample_levels(self):
        picks = self.rng.choice(len(self.noise_set), size=2)
        return self.noise_set[picks[0]], self.noise_set[picks[1]]

    def _project(self, x: Tensor, std: float) -> Tensor:
        with self.injector.applied(self.model.encoder, std):
            return self.model(x)

    def compute_loss(self, view1: np.ndarray, view2: np.ndarray) -> Tensor:
        s1, s2 = self._sample_levels()
        v1, v2 = Tensor(view1), Tensor(view2)
        f1 = self._project(v1, s1)
        f1_pos = self._project(v2, s1)
        f2 = self._project(v1, s2)
        f2_pos = self._project(v2, s2)
        return (
            nt_xent(f1, f1_pos, self.temperature)
            + nt_xent(f2, f2_pos, self.temperature)
            + nt_xent(f1, f2, self.temperature)
            + nt_xent(f1_pos, f2_pos, self.temperature)
        )

    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        self.optimizer.zero_grad()
        loss = self.compute_loss(view1, view2)
        run_backward(loss)
        self.optimizer.step()
        return float(loss.data)

    def _aux_state(self):
        from ..checkpoint import get_rng_state

        return {"rng": get_rng_state(self.rng)}

    def _load_aux_state(self, aux) -> None:
        from ..checkpoint import set_rng_state

        if "rng" in aux:
            set_rng_state(self.rng, aux["rng"])
