"""BYOL: bootstrap your own latent.

Online network (encoder + projector + predictor) learns to predict the
target network's projection of the other view; the target is an
exponential moving average of the online network and receives no
gradients.  Following the paper's Sec. 3.4 adaptation notes: MSE/cosine
loss, projection + prediction heads, stop-gradient on the target, and both
views passed through both networks alternately (symmetric loss).
"""

from __future__ import annotations

import copy
from typing import Optional

import numpy as np

from .. import nn
from ..engine import run_backward
from ..models.heads import PredictionHead, ProjectionHead
from ..nn import functional as F
from ..nn.layers import contains_batch_statistics
from ..nn.optim import Optimizer
from ..nn.rng import ensure_rng
from ..nn.tensor import Tensor
from .base import TrainerBase
from .losses import byol_loss

__all__ = ["BYOL", "BYOLTrainer"]


class BYOL(nn.Module):
    """Online and target networks with EMA coupling.

    Only the online branch's parameters are trainable; call
    :meth:`update_target` after each optimizer step.
    """

    def __init__(
        self,
        encoder: nn.Module,
        projection_dim: int = 32,
        projection_hidden: Optional[int] = None,
        momentum: float = 0.99,
        rng: Optional[np.random.Generator] = None,
        head_norm: str = "batch",
    ) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        rng = ensure_rng(rng)
        self.momentum = momentum
        self.online_encoder = encoder
        self.online_projector = ProjectionHead(
            encoder.feature_dim, projection_hidden, projection_dim, rng=rng,
            norm=head_norm,
        )
        self.predictor = PredictionHead(
            projection_dim, projection_dim, projection_dim, rng=rng,
            norm=head_norm,
        )
        self.target_encoder = copy.deepcopy(encoder)
        self.target_projector = copy.deepcopy(self.online_projector)
        self._freeze(self.target_encoder)
        self._freeze(self.target_projector)

    @staticmethod
    def _freeze(module: nn.Module) -> None:
        for param in module.parameters():
            param.requires_grad = False

    def trainable_parameters(self):
        """Parameters the optimizer should update (online branch only)."""
        yield from self.online_encoder.parameters()
        yield from self.online_projector.parameters()
        yield from self.predictor.parameters()

    def online_forward(self, x) -> Tensor:
        """Online branch prediction ``q(g(f(x)))``."""
        return self.predictor(self.online_projector(self.online_encoder(x)))

    def target_forward(self, x) -> Tensor:
        """Target branch projection, detached (stop-gradient)."""
        with nn.no_grad():
            out = self.target_projector(self.target_encoder(x))
        return out.detach()

    def features(self, x) -> Tensor:
        """Online encoder features for downstream evaluation."""
        return self.online_encoder(x)

    def update_target(self) -> None:
        """EMA update: ``target <- m * target + (1 - m) * online``."""
        pairs = [
            (self.target_encoder, self.online_encoder),
            (self.target_projector, self.online_projector),
        ]
        m = self.momentum
        for target, online in pairs:
            online_params = dict(online.named_parameters())
            for name, param in target.named_parameters():
                param.data = m * param.data + (1 - m) * online_params[name].data
            online_buffers = dict(online.named_buffers())
            for module_name, module in target.named_modules():
                for buf_name in list(module._buffers):
                    full = f"{module_name}.{buf_name}" if module_name else buf_name
                    module.set_buffer(buf_name, online_buffers[full])


class BYOLTrainer(TrainerBase):
    """Vanilla BYOL pre-training loop (symmetric two-view loss)."""

    def __init__(
        self, model: BYOL, optimizer: Optimizer, fuse_views: bool = True
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        #: run each branch once on the concatenated views instead of twice;
        #: vetoed by batch-statistics layers (see SimCLRTrainer).
        self.fuse_views = bool(fuse_views)
        self._init_telemetry()

    @property
    def fusion_active(self) -> bool:
        return self.fuse_views and not contains_batch_statistics(self.model)

    def compute_loss(self, view1: np.ndarray, view2: np.ndarray) -> Tensor:
        v1, v2 = Tensor(view1), Tensor(view2)
        if self.fusion_active:
            n = v1.shape[0]
            both = F.concat([v1, v2], axis=0)
            self.metrics.counter("encoder_forwards").inc()
            p = self.model.online_forward(both)
            self.metrics.counter("target_forwards").inc()
            t = self.model.target_forward(both)
            # Symmetric: each view is predicted from the other.
            loss = byol_loss(p[:n], t[n:]) + byol_loss(p[n:], t[:n])
            return 0.5 * loss
        self.metrics.counter("encoder_forwards").inc(2)
        self.metrics.counter("target_forwards").inc(2)
        # Symmetric: each view is predicted from the other (historical
        # interleaved order — BatchNorm running stats depend on it).
        loss = byol_loss(self.model.online_forward(v1),
                         self.model.target_forward(v2))
        loss = loss + byol_loss(self.model.online_forward(v2),
                                self.model.target_forward(v1))
        return 0.5 * loss

    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        self.optimizer.zero_grad()
        loss = self.compute_loss(view1, view2)
        run_backward(loss)
        self.optimizer.step()
        self.model.update_target()
        return float(loss.data)
