"""Contrastive Quant: quantization as augmentation (the paper's core).

Per training iteration, two precisions ``(q1, q2)`` are sampled from a
:class:`~repro.quant.PrecisionSet` and the encoder's quantized modules are
switched between them, producing differently-augmented weights/activations.
The three pipelines of Fig. 1 combine this with input augmentations:

``CQ-A`` (Eq. 5)
    Sequential augmentation — each view is encoded at its own precision::

        Loss = NCE(F_q1(Aug1(x)), F_q2(Aug2(x)))

``CQ-B`` (Eqs. 6-8)
    Per-precision view consistency only::

        Loss = NCE(f1, f1+) + NCE(f2, f2+)

``CQ-C`` (Eq. 9)
    CQ-B plus explicit cross-precision consistency within each view::

        Loss = NCE(f1, f1+) + NCE(f2, f2+) + NCE(f1, f2) + NCE(f1+, f2+)

``CQ-Quant`` (Sec. 4.5 ablation)
    Quantization is the *only* augmentation::

        Loss = NCE(F_q1(x), F_q2(x))

where ``f_i = F_qi(Aug1(x))`` and ``f_i+ = F_qi(Aug2(x))``.

The same pipelines apply on top of BYOL with NCE replaced by BYOL's
regression loss; view-consistency terms regress online predictions onto the
(full-precision, stop-gradient) target projections, and the cross-precision
terms regress the two online predictions onto each other with alternating
stop-gradients (SimSiam-style) to preclude collapse.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..engine import ExecutionEngine, run_backward
from ..nn import functional as F
from ..nn.layers import contains_batch_statistics
from ..nn.optim import Optimizer
from ..nn.rng import ensure_rng
from ..nn.tensor import Tensor
from ..quant import (
    PrecisionSet,
    QuantCache,
    apply_precision,
    count_quantized_modules,
    precision,
    prepare,
)
from ..quant.qmodules import QuantizedModule
from ..telemetry import SeriesView
from .base import TrainerBase
from .byol import BYOL
from .losses import byol_loss, nt_xent
from .simclr import SimCLRModel

__all__ = ["CQVariant", "ContrastiveQuantTrainer"]


class CQVariant(enum.Enum):
    """The design pipelines of Fig. 1 (+ the quantization-only ablation)."""

    A = "cq-a"
    B = "cq-b"
    C = "cq-c"
    QUANT = "cq-quant"

    @classmethod
    def parse(cls, value: Union[str, "CQVariant"]) -> "CQVariant":
        if isinstance(value, cls):
            return value
        normalized = value.lower().replace("_", "-")
        for variant in cls:
            if normalized in (variant.value, variant.name.lower()):
                return variant
        raise ValueError(
            f"unknown CQ variant {value!r}; expected one of "
            f"{[v.value for v in cls]}"
        )

    def loss_terms(self) -> List[str]:
        """Human-readable inventory of the NCE terms (Fig. 1 / bench)."""
        if self is CQVariant.A:
            return ["NCE(F_q1(Aug1(x)), F_q2(Aug2(x)))"]
        if self is CQVariant.B:
            return ["NCE(f1, f1+)", "NCE(f2, f2+)"]
        if self is CQVariant.C:
            return [
                "NCE(f1, f1+)",
                "NCE(f2, f2+)",
                "NCE(f1, f2)",
                "NCE(f1+, f2+)",
            ]
        return ["NCE(F_q1(x), F_q2(x))"]


class ContrastiveQuantTrainer(TrainerBase):
    """Contrastive Quant on top of SimCLR or BYOL.

    Parameters
    ----------
    method:
        A :class:`SimCLRModel` or :class:`BYOL` instance.  The encoder (the
        online encoder for BYOL) is converted with
        :func:`repro.quant.prepare` if it has no quantized modules
        yet; projection/prediction heads stay full precision, matching the
        paper's "encoder quantized to different precisions".
    variant:
        One of :class:`CQVariant` (or its string name).
    precision_set:
        The per-iteration sampling set, e.g. ``"6-16"``.
    optimizer:
        Optimizer over the method's trainable parameters.
    rng:
        Precision-sampling generator (kept separate from data shuffling so
        runs stay reproducible).
    max_grad_norm:
        Optional global-norm gradient clipping — the paper observes CQ-B can
        diverge with exploding gradients; clipping is off by default so the
        phenomenon is observable, and benches may enable it.
    fuse_views:
        Encode both views of a same-precision pair as one concatenated
        2N-batch forward (SimCLR-style), halving forward count for CQ-B/C.
        Auto-disabled while the method contains batch-statistics layers
        (BatchNorm, Dropout), whose fused numerics would differ from two
        separate forwards; on batch-statistics-free models fused and
        unfused losses are byte-identical (activations are fake-quantized
        per view).
    weight_cache:
        Memoize fake-quantized weights across same-step forwards (see
        :class:`repro.quant.QuantCache`).  When False, lookups still count
        as misses so quant-sweep telemetry stays comparable.
    engine:
        ``"trace"`` (default) records the first eager step per plan
        signature into a :class:`repro.engine.ExecutionEngine` plan and
        replays it on subsequent steps — byte-identical to eager, with
        fused elementwise chains and arena-planned buffers.  Steps the
        engine cannot prove replayable (batch-statistics layers, active
        range observers) fall back to eager automatically.  ``"eager"``
        disables tracing entirely.
    """

    def __init__(
        self,
        method: Union[SimCLRModel, BYOL],
        variant: Union[str, CQVariant],
        precision_set: Union[str, PrecisionSet],
        optimizer: Optimizer,
        rng: Optional[np.random.Generator] = None,
        temperature: float = 0.5,
        max_grad_norm: Optional[float] = None,
        precision_sampler=None,
        fuse_views: bool = True,
        weight_cache: bool = True,
        engine: str = "trace",
    ) -> None:
        if not isinstance(method, (SimCLRModel, BYOL)):
            raise TypeError(
                f"method must be SimCLRModel or BYOL, got {type(method).__name__}"
            )
        self.method = method
        self.variant = CQVariant.parse(variant)
        self.precision_set = PrecisionSet.parse(precision_set)
        self.optimizer = optimizer
        self.rng = ensure_rng(rng)
        self.temperature = temperature
        self.max_grad_norm = max_grad_norm
        #: optional schedule object with ``next_pair() -> (q1, q2)``; when
        #: None the paper's uniform per-iteration sampling is used (see
        #: repro.quant.schedule for the CPT-style alternative).
        self.precision_sampler = precision_sampler
        self.fuse_views = bool(fuse_views)
        self.quant_cache = QuantCache(enabled=bool(weight_cache))
        self.engine = ExecutionEngine(mode=engine, training=True)
        self._last_pair: Optional[Tuple[int, int]] = None
        self._last_terms: Dict[str, float] = {}
        self._term_taps: Dict[str, Tensor] = {}
        self._last_cache: Optional[Tuple[int, int]] = None
        self._last_engine: Optional[Dict[str, int]] = None
        # Per-signature counter effects of one step (quant-cache hits,
        # forward counts), captured while tracing so replayed steps can
        # advance the same telemetry the eager step would have.
        self._traced_effects: Dict[object, Dict[str, float]] = {}
        self._init_telemetry()

        encoder = self._encoder()
        if count_quantized_modules(encoder) == 0:
            prepare(encoder)

    # -- plumbing ----------------------------------------------------------
    @property
    def is_byol(self) -> bool:
        return isinstance(self.method, BYOL)

    @property
    def grad_norms(self) -> SeriesView:
        """Per-step global gradient norms (read-only telemetry view).

        Populated through the ``grad_norm`` gauge; kept as an attribute
        for compatibility with pre-telemetry code that read the ad-hoc
        list.
        """
        return self.metrics.gauge("grad_norm").view()

    def _training_module(self):
        return self.method

    def _encoder(self):
        return (
            self.method.online_encoder if self.is_byol else self.method.encoder
        )

    @property
    def fusion_active(self) -> bool:
        """Whether two-view forwards currently fuse into one 2N batch.

        ``fuse_views`` requests fusion; batch-statistics layers anywhere in
        the method (BatchNorm coupling samples, Dropout consuming RNG per
        call) veto it so numerics stay identical to the unfused path.
        """
        return self.fuse_views and not contains_batch_statistics(self.method)

    def _forward_online(self, x: Tensor) -> Tensor:
        self.metrics.counter("encoder_forwards").inc()
        if self.is_byol:
            return self.method.online_forward(x)
        return self.method(x)

    def _project(self, x: Tensor, bits: int) -> Tensor:
        """Forward at precision ``bits`` through the full (SimCLR) model."""
        with precision(self._encoder(), bits, cache=self.quant_cache):
            return self._forward_online(x)

    def _project_pair(
        self, xa: Tensor, xb: Tensor, bits: int
    ) -> Tuple[Tensor, Tensor]:
        """Encode two views at the same precision.

        Fused: one 2N-batch forward, split back into the two views
        (activations fake-quantize per view chunk, so values match the
        unfused path exactly).  Unfused: two sequential forwards in the
        historical ``xa``-then-``xb`` order.
        """
        if self.fusion_active:
            fused = F.concat([xa, xb], axis=0)
            with precision(
                self._encoder(), bits, cache=self.quant_cache, views=2
            ):
                out = self._forward_online(fused)
            n = xa.shape[0]
            return out[:n], out[n:]
        return self._project(xa, bits), self._project(xb, bits)

    def _target(self, x: Tensor) -> Tensor:
        """BYOL target projection at full precision, detached."""
        target_encoder = self.method.target_encoder
        if count_quantized_modules(target_encoder) > 0:
            apply_precision(target_encoder, None)
        self.metrics.counter("target_forwards").inc()
        return self.method.target_forward(x)

    def _target_pair(self, xa: Tensor, xb: Tensor) -> Tuple[Tensor, Tensor]:
        """Both BYOL target projections; fused into one forward if safe."""
        if self.fusion_active:
            target_encoder = self.method.target_encoder
            if count_quantized_modules(target_encoder) > 0:
                apply_precision(target_encoder, None)
            self.metrics.counter("target_forwards").inc()
            out = self.method.target_forward(F.concat([xa, xb], axis=0))
            n = xa.shape[0]
            return out[:n], out[n:]
        return self._target(xa), self._target(xb)

    def _pair_loss(self, a: Tensor, b: Tensor) -> Tensor:
        """NT-Xent for SimCLR; symmetric detached regression for BYOL."""
        if self.is_byol:
            return 0.5 * (
                byol_loss(a, b.detach()) + byol_loss(b, a.detach())
            )
        return nt_xent(a, b, self.temperature)

    def _term(self, name: str, value: Tensor) -> Tensor:
        """Record a named loss term into telemetry and return it.

        Term names follow :meth:`CQVariant.loss_terms`; on the BYOL base
        "NCE" labels the corresponding regression term.  Each term feeds
        the labeled gauge series ``loss{term=...}`` and the per-step
        ``loss_terms`` event payload.
        """
        scalar = float(value.data)
        self._last_terms[name] = scalar
        self._term_taps[name] = value
        self.metrics.gauge("loss", term=name).set(scalar)
        return value

    # -- loss assembly (Fig. 1) -------------------------------------------------
    def compute_loss(self, view1: np.ndarray, view2: np.ndarray) -> Tensor:
        q1, q2 = self._sample_pair()
        v1, v2 = Tensor(view1), Tensor(view2)
        return self._loss_for_pair(v1, v2, q1, q2)

    def _sample_pair(self) -> Tuple[int, int]:
        """Draw this step's ``(q1, q2)`` and reset per-step term telemetry.

        Always runs eagerly (even when the step itself replays a plan) so
        the precision-sampling RNG stream advances identically in traced
        and eager runs.
        """
        if self.precision_sampler is not None:
            q1, q2 = self.precision_sampler.next_pair()
        else:
            q1, q2 = self.precision_set.sample_pair(self.rng)
        self._last_pair = (int(q1), int(q2))
        self.metrics.gauge("precision_q1").set(q1)
        self.metrics.gauge("precision_q2").set(q2)
        self._last_terms = {}
        self._term_taps = {}
        return int(q1), int(q2)

    def _loss_for_pair(self, v1: Tensor, v2: Tensor, q1: int, q2: int) -> Tensor:
        if self.variant is CQVariant.A:
            return self._loss_a(v1, v2, q1, q2)
        if self.variant is CQVariant.QUANT:
            return self._loss_quant(v1, q1, q2)
        return self._loss_bc(v1, v2, q1, q2)

    def _loss_a(self, v1, v2, q1, q2) -> Tensor:
        f = self._project(v1, q1)
        f_pos = self._project(v2, q2)
        if self.is_byol:
            t2, t1 = self._target_pair(v2, v1)
            loss = 0.5 * (byol_loss(f, t2) + byol_loss(f_pos, t1))
        else:
            loss = nt_xent(f, f_pos, self.temperature)
        return self._term("NCE(F_q1(Aug1(x)), F_q2(Aug2(x)))", loss)

    def _loss_quant(self, x, q1, q2) -> Tensor:
        f1 = self._project(x, q1)
        f2 = self._project(x, q2)
        return self._term("NCE(F_q1(x), F_q2(x))", self._pair_loss(f1, f2))

    def _loss_bc(self, v1, v2, q1, q2) -> Tensor:
        f1, f1_pos = self._project_pair(v1, v2, q1)
        f2, f2_pos = self._project_pair(v1, v2, q2)

        if self.is_byol:
            t1, t2 = self._target_pair(v1, v2)
            loss = self._term(
                "NCE(f1, f1+)",
                0.25 * (byol_loss(f1, t2) + byol_loss(f1_pos, t1)),
            ) + self._term(
                "NCE(f2, f2+)",
                0.25 * (byol_loss(f2, t2) + byol_loss(f2_pos, t1)),
            )
        else:
            loss = self._term(
                "NCE(f1, f1+)", nt_xent(f1, f1_pos, self.temperature)
            ) + self._term(
                "NCE(f2, f2+)", nt_xent(f2, f2_pos, self.temperature)
            )
        if self.variant is CQVariant.C:
            loss = (
                loss
                + self._term("NCE(f1, f2)", self._pair_loss(f1, f2))
                + self._term("NCE(f1+, f2+)", self._pair_loss(f1_pos, f2_pos))
            )
        return loss

    # -- training loop -------------------------------------------------------------
    def _parameters(self):
        if self.is_byol:
            return list(self.method.trainable_parameters())
        return list(self.method.parameters())

    def _engine_supported(self) -> bool:
        """Whether this step is safe to trace and replay.

        Batch-statistics layers update running buffers in module-level
        Python (outside the tape) and active range observers mutate their
        fitted range per forward — neither side effect survives a replay,
        so such steps are vetoed up front and run eagerly.
        """
        if contains_batch_statistics(self.method):
            return False
        return not any(
            isinstance(m, QuantizedModule) and m.observing
            for m in self.method.modules()
        )

    def _quant_state(self) -> Tuple:
        """Quantization config baked into a traced step's constants."""
        return tuple(
            (
                module.quantize_activations,
                module.per_channel_weights,
                module.frozen_range,
                module.activation_range,
            )
            for module in self._encoder().modules()
            if isinstance(module, QuantizedModule)
        )

    def _plan_signature(self, v1: Tensor, v2: Tensor, q1: int, q2: int):
        """Everything that determines a traced step's topology.

        The sampled bit-widths themselves are *symbols* (rebound per
        replay); only their equality class matters here — a same-precision
        pair collapses the second quantize of each weight into a cache
        hit, which is a different graph than a mixed pair.
        """
        return (
            "cq-step",
            self.variant.name,
            self.is_byol,
            self.fusion_active,
            self.quant_cache.enabled,
            v1.shape,
            str(v1.data.dtype),
            v2.shape,
            str(v2.data.dtype),
            q1 == q2,
            self._quant_state(),
        )

    def _execute_step(self, v1: Tensor, v2: Tensor, q1: int, q2: int):
        """One loss+backward pass through the execution engine."""
        sig = self._plan_signature(v1, v2, q1, q2)
        if not self._engine_supported():
            self.engine.veto(sig)

        def eager_fn():
            cache_before = (self.quant_cache.hits, self.quant_cache.misses)
            fwd_before = (
                self.metrics.counter("encoder_forwards").value,
                self.metrics.counter("target_forwards").value,
            )
            loss = self._loss_for_pair(v1, v2, q1, q2)
            run_backward(loss)
            self._traced_effects[sig] = {
                "cache_hits": self.quant_cache.hits - cache_before[0],
                "cache_misses": self.quant_cache.misses - cache_before[1],
                "encoder_forwards": (
                    self.metrics.counter("encoder_forwards").value
                    - fwd_before[0]
                ),
                "target_forwards": (
                    self.metrics.counter("target_forwards").value
                    - fwd_before[1]
                ),
            }
            return loss, dict(self._term_taps)

        before = self.engine.stats()
        result = self.engine.execute(
            sig,
            inputs={"view1": v1, "view2": v2},
            symbols={"q1": q1, "q2": q2},
            eager_fn=eager_fn,
        )
        self._last_engine = {
            key: int(value - before[key])
            for key, value in self.engine.stats().items()
        }
        for key, delta in self._last_engine.items():
            if delta:
                self.metrics.counter(f"engine_{key}").inc(delta)
        if result.replayed:
            self._apply_replayed_telemetry(sig, result)
        return result

    def _apply_replayed_telemetry(self, sig, result) -> None:
        """Advance the counters a replayed step's eager twin would have.

        A replay never enters module ``forward`` Python, so the quant
        cache and forward counters don't move on their own; the deltas
        recorded while tracing this signature are applied instead, and
        per-term losses are read from the plan's tapped outputs.
        """
        effects = self._traced_effects.get(sig)
        if effects is not None:
            self.quant_cache.hits += int(effects["cache_hits"])
            self.quant_cache.misses += int(effects["cache_misses"])
            if effects["encoder_forwards"]:
                self.metrics.counter("encoder_forwards").inc(
                    effects["encoder_forwards"]
                )
            if effects["target_forwards"]:
                self.metrics.counter("target_forwards").inc(
                    effects["target_forwards"]
                )
        for name, value in result.outputs.items():
            scalar = float(value)
            self._last_terms[name] = scalar
            self.metrics.gauge("loss", term=name).set(scalar)

    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        from ..nn.optim import clip_grad_norm, global_grad_norm

        self.optimizer.zero_grad()
        hits0, misses0 = self.quant_cache.hits, self.quant_cache.misses
        q1, q2 = self._sample_pair()
        v1, v2 = Tensor(view1), Tensor(view2)
        result = self._execute_step(v1, v2, q1, q2)
        loss_value = float(result.root)
        self._last_cache = (
            self.quant_cache.hits - hits0,
            self.quant_cache.misses - misses0,
        )
        self.metrics.counter("quant_cache_hits").inc(self._last_cache[0])
        self.metrics.counter("quant_cache_misses").inc(self._last_cache[1])
        params = self._parameters()
        if self.max_grad_norm is not None:
            norm = clip_grad_norm(params, self.max_grad_norm)
        else:
            norm = global_grad_norm(params)
        self.metrics.gauge("grad_norm").set(norm)
        self.optimizer.step()
        if self.is_byol:
            self.method.update_target()
        return loss_value

    def step_info(self) -> Dict[str, object]:
        """Sampled precisions, per-term losses, and grad norm for events."""
        info: Dict[str, object] = {}
        if self._last_pair is not None:
            info["q1"], info["q2"] = self._last_pair
        if self._last_terms:
            info["loss_terms"] = dict(self._last_terms)
        if self._last_cache is not None:
            info["quant_cache_hits"], info["quant_cache_misses"] = (
                self._last_cache
            )
        grad_norm = self.metrics.gauge("grad_norm").value
        if grad_norm is not None:
            info["grad_norm"] = grad_norm
        if self._last_engine is not None:
            for key, delta in self._last_engine.items():
                info[f"engine_{key}"] = delta
        return info

    def _history_dict(self) -> Dict[str, List[float]]:
        return {"loss": list(self.history), "grad_norm": list(self.grad_norms)}

    def _aux_state(self) -> Dict[str, object]:
        """Precision-sampling randomness: trainer RNG + sampler position.

        The sampled (q1, q2) sequence is part of the training trajectory,
        so a bit-exact resume must continue these streams exactly.
        """
        from ..checkpoint import get_rng_state

        aux: Dict[str, object] = {
            "rng": get_rng_state(self.rng),
            "quant_cache": self.quant_cache.stats(),
        }
        sampler = self.precision_sampler
        if sampler is not None:
            if getattr(sampler, "rng", None) is not None:
                aux["sampler_rng"] = get_rng_state(sampler.rng)
            if hasattr(sampler, "step_count"):
                aux["sampler_step_count"] = int(sampler.step_count)
        return aux

    def _load_aux_state(self, aux: Dict[str, object]) -> None:
        from ..checkpoint import set_rng_state

        if "rng" in aux:
            set_rng_state(self.rng, aux["rng"])
        cache_stats = aux.get("quant_cache")
        if cache_stats is not None:
            self.quant_cache.hits = int(cache_stats.get("hits", 0))
            self.quant_cache.misses = int(cache_stats.get("misses", 0))
        sampler = self.precision_sampler
        if sampler is not None:
            if "sampler_rng" in aux and getattr(sampler, "rng", None) is not None:
                set_rng_state(sampler.rng, aux["sampler_rng"])
            if "sampler_step_count" in aux and hasattr(sampler, "step_count"):
                sampler.step_count = int(aux["sampler_step_count"])

    def finalize(self) -> None:
        """Restore the encoder to full precision after pre-training."""
        apply_precision(self._encoder(), None)
        if self.is_byol and count_quantized_modules(self.method.target_encoder):
            apply_precision(self.method.target_encoder, None)
        self.quant_cache.clear()
        self.engine.invalidate()
