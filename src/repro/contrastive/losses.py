"""Contrastive loss functions.

- :func:`info_nce` — the generic NCE objective of the paper's Eq. 2.
- :func:`nt_xent` — SimCLR's normalized-temperature cross entropy; this is
  what the paper substitutes for Eq. 2 when building on SimCLR (Sec. 3.4).
- :func:`byol_loss` — BYOL's normalized MSE, equal to ``2 - 2 cos(p, z)``.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor, as_tensor

__all__ = ["info_nce", "nt_xent", "byol_loss"]


def info_nce(features: Tensor, positives: Tensor, temperature: float = 0.5):
    """InfoNCE (Eq. 2): positives are row-aligned; negatives are the rest.

    ``features`` and ``positives`` are (N, D); for row ``i`` the positive is
    ``positives[i]`` and the negatives are ``positives[j != i]``.
    """
    _check_pair(features, positives)
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    f = F.normalize(features, axis=1)
    fp = F.normalize(positives, axis=1)
    logits = F.matmul(f, F.transpose(fp)) / temperature  # (N, N)
    n = features.shape[0]
    targets = np.arange(n)
    log_probs = F.log_softmax(logits, axis=1)
    return -F.mean(log_probs[targets, targets])


def nt_xent(z1: Tensor, z2: Tensor, temperature: float = 0.5):
    """SimCLR's NT-Xent over a batch of positive pairs.

    Builds the 2N x 2N cosine-similarity matrix, masks the diagonal, and
    treats ``(i, i+N)`` as the positive pair in both directions.
    """
    _check_pair(z1, z2)
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    n = z1.shape[0]
    if n < 2:
        raise ValueError("nt_xent needs a batch of at least 2 pairs")
    z = F.normalize(F.concat([z1, z2], axis=0), axis=1)  # (2N, D)
    sim = F.matmul(z, F.transpose(z)) / temperature
    # Mask self-similarity with a large negative constant (additive mask
    # keeps the op graph simple and the softmax numerically safe).
    mask = Tensor(np.eye(2 * n, dtype=np.float32) * -1e9)
    log_probs = F.log_softmax(sim + mask, axis=1)
    targets = np.concatenate([np.arange(n, 2 * n), np.arange(0, n)])
    picked = log_probs[np.arange(2 * n), targets]
    return -F.mean(picked)


def byol_loss(prediction: Tensor, target: Tensor):
    """BYOL's regression loss: ``2 - 2 * cos(p, z)``, averaged over the batch.

    ``target`` must already be detached (stop-gradient) by the caller — the
    loss itself is symmetric machinery only.
    """
    _check_pair(prediction, target)
    cos = F.cosine_similarity(prediction, target, axis=1)
    return F.mean(2.0 - 2.0 * cos)


def _check_pair(a: Tensor, b: Tensor) -> None:
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"expected (N, D) feature matrices, got {a.shape} and {b.shape}"
        )
    if a.shape != b.shape:
        raise ValueError(f"feature shapes differ: {a.shape} vs {b.shape}")
