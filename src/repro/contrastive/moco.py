"""MoCo: momentum contrast with a negative-feature queue.

MoCo [He et al., CVPR 2020] is the paper's motivating related work
(Sec. 1).  A query encoder is trained against keys produced by a
momentum-updated key encoder, with negatives drawn from a FIFO queue of
past keys — decoupling the number of negatives from the batch size.

``precision_set`` optionally enables Contrastive Quant augmentation on the
query encoder (CQ-A style: each query batch is encoded at a freshly
sampled precision; the key encoder stays full precision for queue
consistency), demonstrating that the paper's mechanism ports beyond
SimCLR/BYOL.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import copy

import numpy as np

from .. import nn
from ..engine import run_backward
from ..models.heads import ProjectionHead
from ..nn import functional as F
from ..nn.optim import Optimizer
from ..nn.rng import ensure_rng
from ..nn.tensor import Tensor
from ..quant import (
    PrecisionSet,
    apply_precision,
    count_quantized_modules,
    precision,
    prepare,
)
from .base import TrainerBase

__all__ = ["MoCo", "MoCoTrainer"]


class MoCo(nn.Module):
    """Query/key encoders with projection heads and a key queue."""

    def __init__(
        self,
        encoder: nn.Module,
        projection_dim: int = 32,
        queue_size: int = 256,
        momentum: float = 0.99,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if queue_size < 2:
            raise ValueError(f"queue_size must be >= 2, got {queue_size}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        rng = ensure_rng(rng)
        self.momentum = momentum
        self.query_encoder = encoder
        self.query_projector = ProjectionHead(
            encoder.feature_dim, out_dim=projection_dim, rng=rng
        )
        self.key_encoder = copy.deepcopy(encoder)
        self.key_projector = copy.deepcopy(self.query_projector)
        for param in self.key_encoder.parameters():
            param.requires_grad = False
        for param in self.key_projector.parameters():
            param.requires_grad = False

        queue = rng.normal(size=(queue_size, projection_dim)).astype(np.float32)
        queue /= np.linalg.norm(queue, axis=1, keepdims=True) + 1e-8
        self.register_buffer("queue", queue)
        self.register_buffer("queue_ptr", np.array(0, dtype=np.int64))

    def trainable_parameters(self):
        yield from self.query_encoder.parameters()
        yield from self.query_projector.parameters()

    def query_forward(self, x) -> Tensor:
        return self.query_projector(self.query_encoder(x))

    def key_forward(self, x) -> Tensor:
        with nn.no_grad():
            keys = self.key_projector(self.key_encoder(x))
        return keys.detach()

    def update_key_encoder(self) -> None:
        """EMA update of the key branch from the query branch."""
        m = self.momentum
        for target, online in (
            (self.key_encoder, self.query_encoder),
            (self.key_projector, self.query_projector),
        ):
            online_params = dict(online.named_parameters())
            for name, param in target.named_parameters():
                param.data = m * param.data + (1 - m) * online_params[name].data

    def enqueue(self, keys: np.ndarray) -> None:
        """Push normalized keys into the FIFO queue (wrapping)."""
        keys = np.asarray(keys, dtype=np.float32)
        keys = keys / (np.linalg.norm(keys, axis=1, keepdims=True) + 1e-8)
        queue = self.queue.copy()
        ptr = int(self.queue_ptr)
        n = len(keys)
        size = len(queue)
        if n >= size:
            queue[:] = keys[-size:]
            ptr = 0
        else:
            end = ptr + n
            if end <= size:
                queue[ptr:end] = keys
            else:
                first = size - ptr
                queue[ptr:] = keys[:first]
                queue[: end % size] = keys[first:]
            ptr = end % size
        self.set_buffer("queue", queue)
        self.set_buffer("queue_ptr", np.array(ptr, dtype=np.int64))


class MoCoTrainer(TrainerBase):
    """MoCo training loop with optional Contrastive Quant augmentation.

    Loss: InfoNCE with the positive key from the key encoder and negatives
    from the queue.  With ``precision_set``, the query encoder is
    fake-quantized to a per-iteration sampled precision (CQ on MoCo).
    """

    def __init__(
        self,
        model: MoCo,
        optimizer: Optimizer,
        temperature: float = 0.2,
        precision_set: Optional[Union[str, PrecisionSet]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.temperature = temperature
        self.rng = ensure_rng(rng)
        self.precision_set = (
            PrecisionSet.parse(precision_set) if precision_set else None
        )
        if self.precision_set is not None:
            if count_quantized_modules(model.query_encoder) == 0:
                prepare(model.query_encoder)
        self._last_bits: Optional[int] = None
        self._init_telemetry()

    def compute_loss(self, view1: np.ndarray, view2: np.ndarray) -> Tensor:
        if self.precision_set is not None:
            self._last_bits = self.precision_set.sample(self.rng)
            self.metrics.gauge("precision_bits").set(self._last_bits)
            with precision(self.model.query_encoder, self._last_bits):
                q = self.model.query_forward(Tensor(view1))
        else:
            q = self.model.query_forward(Tensor(view1))
        q = F.normalize(q, axis=1)
        k = F.normalize(self.model.key_forward(Tensor(view2)), axis=1)
        self._last_keys = k.data

        positive = F.sum(q * k, axis=1, keepdims=True)  # (N, 1)
        negatives = F.matmul(q, Tensor(self.model.queue.T))  # (N, K)
        logits = F.concat([positive, negatives], axis=1) / self.temperature
        targets = np.zeros(q.shape[0], dtype=np.int64)
        return nn.losses.cross_entropy(logits, targets)

    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        self.optimizer.zero_grad()
        loss = self.compute_loss(view1, view2)
        run_backward(loss)
        self.optimizer.step()
        self.model.update_key_encoder()
        self.model.enqueue(self._last_keys)
        return float(loss.data)

    def step_info(self) -> Dict[str, object]:
        if self._last_bits is None:
            return {}
        return {"bits": self._last_bits}

    def _aux_state(self) -> Dict[str, object]:
        from ..checkpoint import get_rng_state

        return {"rng": get_rng_state(self.rng)}

    def _load_aux_state(self, aux: Dict[str, object]) -> None:
        from ..checkpoint import set_rng_state

        if "rng" in aux:
            set_rng_state(self.rng, aux["rng"])

    def finalize(self) -> None:
        """Restore the query encoder to full precision."""
        if self.precision_set is not None:
            apply_precision(self.model.query_encoder, None)
