"""SimCLR: encoder + projection head trained with NT-Xent.

This module provides the vanilla SimCLR baseline the paper compares
against; the Contrastive Quant variants reuse :class:`SimCLRModel` through
:class:`repro.contrastive.cq.ContrastiveQuantTrainer`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..engine import run_backward
from ..models.heads import ProjectionHead
from ..nn import functional as F
from ..nn.layers import contains_batch_statistics
from ..nn.optim import Optimizer
from ..nn.tensor import Tensor
from .base import TrainerBase
from .losses import nt_xent

__all__ = ["SimCLRModel", "SimCLRTrainer"]


class SimCLRModel(nn.Module):
    """Encoder ``f(.)`` followed by projection head ``g(.)``."""

    def __init__(
        self,
        encoder: nn.Module,
        projection_dim: int = 32,
        projection_hidden: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        head_norm: str = "batch",
    ) -> None:
        super().__init__()
        self.encoder = encoder
        self.projector = ProjectionHead(
            encoder.feature_dim,
            hidden_dim=projection_hidden,
            out_dim=projection_dim,
            rng=rng,
            norm=head_norm,
        )

    def forward(self, x) -> Tensor:
        """Projected representation ``g(f(x))`` used by the loss."""
        return self.projector(self.encoder(x))

    def features(self, x) -> Tensor:
        """Encoder representation ``f(x)`` used by downstream evaluation."""
        return self.encoder(x)


class SimCLRTrainer(TrainerBase):
    """Vanilla SimCLR pre-training loop.

    The loader must yield ``(view1, view2, labels)`` batches (use
    :class:`repro.data.TwoViewTransform`); labels are ignored — they exist
    so the same loader can be reused by evaluation code.  ``fit`` / events
    / ``metrics`` come from :class:`~repro.contrastive.base.TrainerBase`.
    """

    def __init__(
        self,
        model: SimCLRModel,
        optimizer: Optimizer,
        temperature: float = 0.5,
        fuse_views: bool = True,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.temperature = temperature
        #: encode both views as one concatenated 2N batch (the original
        #: SimCLR formulation); vetoed by batch-statistics layers so the
        #: numerics match the per-view path exactly.
        self.fuse_views = bool(fuse_views)
        self._init_telemetry()

    @property
    def fusion_active(self) -> bool:
        return self.fuse_views and not contains_batch_statistics(self.model)

    def compute_loss(self, view1: np.ndarray, view2: np.ndarray) -> Tensor:
        v1, v2 = Tensor(view1), Tensor(view2)
        if self.fusion_active:
            self.metrics.counter("encoder_forwards").inc()
            z = self.model(F.concat([v1, v2], axis=0))
            n = v1.shape[0]
            z1, z2 = z[:n], z[n:]
        else:
            self.metrics.counter("encoder_forwards").inc(2)
            z1 = self.model(v1)
            z2 = self.model(v2)
        return nt_xent(z1, z2, self.temperature)

    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        self.optimizer.zero_grad()
        loss = self.compute_loss(view1, view2)
        run_backward(loss)
        self.optimizer.step()
        return float(loss.data)
