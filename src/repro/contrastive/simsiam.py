"""SimSiam: siamese representation learning with stop-gradient only.

SimSiam [Chen & He, 2020] is the paper's reference [12]: no negatives, no
momentum encoder — one branch predicts the other's projection while the
target side is detached.  ``precision_set`` optionally applies
Contrastive Quant augmentation (CQ-C style cross-precision consistency)
to the shared encoder.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from .. import nn
from ..engine import run_backward
from ..models.heads import PredictionHead, ProjectionHead
from ..nn import functional as F
from ..nn.layers import contains_batch_statistics
from ..nn.optim import Optimizer
from ..nn.rng import ensure_rng
from ..nn.tensor import Tensor
from ..quant import (
    PrecisionSet,
    apply_precision,
    count_quantized_modules,
    precision,
    prepare,
)
from .base import TrainerBase
from .losses import byol_loss

__all__ = ["SimSiam", "SimSiamTrainer"]


class SimSiam(nn.Module):
    """Shared encoder + projector, with a predictor on the online path."""

    def __init__(
        self,
        encoder: nn.Module,
        projection_dim: int = 32,
        rng: Optional[np.random.Generator] = None,
        head_norm: str = "batch",
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.encoder = encoder
        self.projector = ProjectionHead(
            encoder.feature_dim, out_dim=projection_dim, rng=rng,
            norm=head_norm,
        )
        self.predictor = PredictionHead(
            projection_dim, projection_dim, projection_dim, rng=rng,
            norm=head_norm,
        )

    def project(self, x) -> Tensor:
        return self.projector(self.encoder(x))

    def predict(self, z: Tensor) -> Tensor:
        return self.predictor(z)


class SimSiamTrainer(TrainerBase):
    """Symmetric stop-gradient loss: D(p1, z2)/2 + D(p2, z1)/2.

    With ``precision_set``, each view's projection is computed at a
    per-iteration sampled precision, and the symmetric loss enforces
    cross-precision consistency — the CQ mechanism on a negative-free,
    EMA-free base.
    """

    def __init__(
        self,
        model: SimSiam,
        optimizer: Optimizer,
        precision_set: Optional[Union[str, PrecisionSet]] = None,
        rng: Optional[np.random.Generator] = None,
        fuse_views: bool = True,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.rng = ensure_rng(rng)
        self.precision_set = (
            PrecisionSet.parse(precision_set) if precision_set else None
        )
        if self.precision_set is not None:
            if count_quantized_modules(model.encoder) == 0:
                prepare(model.encoder)
        #: fuse same-precision view pairs into one 2N projection forward;
        #: vetoed by batch-statistics layers (see SimCLRTrainer).  Views
        #: sampled at different precisions always forward separately.
        self.fuse_views = bool(fuse_views)
        self._last_pair: Optional[Tuple[int, int]] = None
        self._init_telemetry()

    @property
    def fusion_active(self) -> bool:
        return self.fuse_views and not contains_batch_statistics(self.model)

    def _project(self, x: Tensor, bits: Optional[int]) -> Tensor:
        self.metrics.counter("encoder_forwards").inc()
        if self.precision_set is not None:
            with precision(self.model.encoder, bits):
                return self.model.project(x)
        return self.model.project(x)

    def _project_views(
        self, v1: Tensor, v2: Tensor, q1: Optional[int], q2: Optional[int]
    ) -> Tuple[Tensor, Tensor]:
        if self.fusion_active and q1 == q2:
            both = F.concat([v1, v2], axis=0)
            self.metrics.counter("encoder_forwards").inc()
            if self.precision_set is not None:
                with precision(self.model.encoder, q1, views=2):
                    z = self.model.project(both)
            else:
                z = self.model.project(both)
            n = v1.shape[0]
            return z[:n], z[n:]
        return self._project(v1, q1), self._project(v2, q2)

    def compute_loss(self, view1: np.ndarray, view2: np.ndarray) -> Tensor:
        if self.precision_set is not None:
            q1, q2 = self.precision_set.sample_pair(self.rng)
            self._last_pair = (q1, q2)
            self.metrics.gauge("precision_bits", which="q1").set(q1)
            self.metrics.gauge("precision_bits", which="q2").set(q2)
        else:
            q1 = q2 = None
        v1, v2 = Tensor(view1), Tensor(view2)
        z1, z2 = self._project_views(v1, v2, q1, q2)
        p1 = self.model.predict(z1)
        p2 = self.model.predict(z2)
        return 0.5 * (byol_loss(p1, z2.detach()) + byol_loss(p2, z1.detach()))

    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        self.optimizer.zero_grad()
        loss = self.compute_loss(view1, view2)
        run_backward(loss)
        self.optimizer.step()
        return float(loss.data)

    def step_info(self) -> Dict[str, object]:
        if self._last_pair is None:
            return {}
        q1, q2 = self._last_pair
        return {"q1": q1, "q2": q2}

    def _aux_state(self) -> Dict[str, object]:
        from ..checkpoint import get_rng_state

        return {"rng": get_rng_state(self.rng)}

    def _load_aux_state(self, aux: Dict[str, object]) -> None:
        from ..checkpoint import set_rng_state

        if "rng" in aux:
            set_rng_state(self.rng, aux["rng"])

    def finalize(self) -> None:
        if self.precision_set is not None:
            apply_precision(self.model.encoder, None)
