"""Contrastive learning: SimCLR, BYOL, and the Contrastive Quant framework.

The paper's contribution lives in :mod:`repro.contrastive.cq`: quantization
noise at randomly sampled precisions is treated as an augmentation of
weights and activations, combined with input augmentations according to one
of three pipelines (CQ-A, CQ-B, CQ-C) or used alone (CQ-Quant ablation).
"""

from .base import TrainerBase
from .byol import BYOL, BYOLTrainer
from .cq import CQVariant, ContrastiveQuantTrainer
from .losses import byol_loss, info_nce, nt_xent
from .moco import MoCo, MoCoTrainer
from .perturb import GaussianWeightNoise, NoiseContrastiveTrainer
from .simclr import SimCLRModel, SimCLRTrainer
from .simsiam import SimSiam, SimSiamTrainer

__all__ = [
    "TrainerBase",
    "info_nce",
    "nt_xent",
    "byol_loss",
    "SimCLRModel",
    "SimCLRTrainer",
    "BYOL",
    "BYOLTrainer",
    "MoCo",
    "MoCoTrainer",
    "SimSiam",
    "SimSiamTrainer",
    "CQVariant",
    "ContrastiveQuantTrainer",
    "GaussianWeightNoise",
    "NoiseContrastiveTrainer",
]
