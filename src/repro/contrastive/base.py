"""Shared trainer plumbing: unified ``fit()`` API + telemetry events.

Every trainer in :mod:`repro.contrastive` mixes in :class:`TrainerBase`
and gains the same contract:

- ``fit(loader, epochs, *, scheduler=None, callbacks=())`` returning a
  history dict whose ``"loss"`` entry is the per-epoch mean loss — so
  downstream code treats the five trainers interchangeably;
- per-step / per-epoch event emission through
  :class:`repro.telemetry.EventBus` (``on_fit_start``,
  ``on_epoch_start``, ``on_step``, ``on_epoch_end``, ``on_fit_end``);
- a per-trainer :class:`repro.telemetry.MetricsRegistry` (``metrics``)
  recording step loss, epoch loss, and step/image counters.

Subclasses implement ``train_step(view1, view2) -> float`` and may
override :meth:`step_info` to enrich the ``on_step`` payload (the CQ
trainer adds the sampled precision pair and per-term losses).

Backward compatibility: the historical positional-scheduler pattern
``fit(loader, epochs, scheduler)`` keeps working (with a
``DeprecationWarning``), and renamed kwargs (``lr_scheduler=``,
``callback=``) are shimmed to the new names instead of raising a bare
``TypeError``.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..telemetry import EventBus, MetricsRegistry

__all__ = ["TrainerBase"]

#: Renamed/removed fit() kwargs accepted (with a warning) for one cycle.
_FIT_KWARG_ALIASES = {
    "lr_scheduler": "scheduler",
    "schedule": "scheduler",
    "callback": "callbacks",
    "cbs": "callbacks",
}


#: Version tag for the trainer checkpoint tree layout.
TRAINER_STATE_FORMAT = 1


class TrainerBase:
    """Mixin giving trainers the unified fit/event/metrics contract."""

    def _init_telemetry(self) -> None:
        """Call from ``__init__`` before training starts."""
        self.history: List[float] = []
        self.metrics = MetricsRegistry()
        self._global_step = 0
        # Stashed during fit() so state_dict() can capture loader/scheduler
        # state when a CheckpointCallback fires at an epoch boundary.
        self._active_loader = None
        self._active_scheduler = None
        # Loader-RNG / loader / scheduler state loaded from a checkpoint
        # before the owning fit() call made those objects known.
        self._pending_loader_rng = None
        self._pending_loader_state = None
        self._pending_scheduler_state = None

    # -- hooks for subclasses ----------------------------------------------
    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        raise NotImplementedError

    def _training_module(self):
        """The module whose ``train()`` mode gates an epoch."""
        return self.model

    def step_info(self) -> Dict[str, object]:
        """Extra JSON-friendly fields merged into each ``on_step`` payload."""
        return {}

    def _history_dict(self) -> Dict[str, List[float]]:
        """The dict ``fit()`` returns; always contains ``"loss"``."""
        return {"loss": list(self.history)}

    def _aux_state(self) -> Dict[str, object]:
        """Trainer-specific auxiliary state beyond model/optimizer.

        Overridden by trainers owning extra randomness or schedules (the
        CQ trainer's precision sampler, MoCo/SimSiam's view-shuffling
        RNG).  Must return a JSON-friendly tree (numpy arrays allowed).
        """
        return {}

    def _load_aux_state(self, aux: Dict[str, object]) -> None:
        """Restore the tree produced by :meth:`_aux_state`."""

    # -- checkpoint state --------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Everything needed to resume training bit-exactly.

        Captures model parameters/buffers (including EMA targets and
        queues registered as submodules/buffers), optimizer slots, the
        scheduler position and loader RNG of an in-flight ``fit()``, the
        full metrics registry, loss history, the global step counter,
        and trainer-specific auxiliary state.
        """
        from ..checkpoint import get_rng_state

        state: Dict[str, object] = {
            "format": TRAINER_STATE_FORMAT,
            "trainer": type(self).__name__,
            "model": self._training_module().state_dict(),
            # Monotonic per-parameter version counters (quant-cache keys);
            # an optional key so format-1 checkpoints stay readable.
            "param_versions": {
                name: int(param.version)
                for name, param in self._training_module().named_parameters()
            },
            "history": [float(v) for v in self.history],
            "global_step": int(self._global_step),
            "metrics": self.metrics.state_dict(),
            "aux": self._aux_state(),
        }
        optimizer = getattr(self, "optimizer", None)
        if optimizer is not None:
            state["optimizer"] = optimizer.state_dict()
        if self._active_scheduler is not None:
            state["scheduler"] = self._active_scheduler.state_dict()
        loader_rng = getattr(self._active_loader, "rng", None)
        if loader_rng is not None:
            state["loader_rng"] = get_rng_state(loader_rng)
        # Loaders with their own state (the order-independent seeded
        # DataLoader's epoch counter, proxied by PrefetchLoader) join the
        # checkpoint so prefetched runs resume bit-exactly too.
        loader_state_dict = getattr(self._active_loader, "state_dict", None)
        if callable(loader_state_dict):
            state["loader_state"] = loader_state_dict()
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` tree into this trainer.

        The loader RNG and scheduler position are stashed and applied by
        ``fit(resume_from=...)`` once it knows which loader/scheduler the
        resumed run uses; everything else is restored immediately.
        """
        saved = state.get("trainer")
        if saved is not None and saved != type(self).__name__:
            raise ValueError(
                f"checkpoint is for {saved}, not {type(self).__name__}"
            )
        fmt = state.get("format", TRAINER_STATE_FORMAT)
        if fmt != TRAINER_STATE_FORMAT:
            raise ValueError(
                f"unsupported trainer state format {fmt} "
                f"(this build reads format {TRAINER_STATE_FORMAT})"
            )
        self._training_module().load_state_dict(state["model"])
        versions = state.get("param_versions")
        if versions:
            params = dict(self._training_module().named_parameters())
            for name, version in versions.items():
                if name in params:
                    params[name]._version = int(version)
        # Cached quantized weights derive from pre-restore parameter data;
        # drop them so the next forward recomputes from the loaded values.
        cache = getattr(self, "quant_cache", None)
        if cache is not None:
            cache.clear()
        # Compiled plans capture pre-restore constants; retrace after load.
        engine = getattr(self, "engine", None)
        if engine is not None:
            engine.invalidate()
        optimizer = getattr(self, "optimizer", None)
        if optimizer is not None and "optimizer" in state:
            optimizer.load_state_dict(state["optimizer"])
        self.history[:] = [float(v) for v in state.get("history", [])]
        self._global_step = int(state.get("global_step", 0))
        if "metrics" in state:
            self.metrics.load_state_dict(state["metrics"])
        self._load_aux_state(state.get("aux", {}))
        self._pending_scheduler_state = state.get("scheduler")
        self._pending_loader_rng = state.get("loader_rng")
        self._pending_loader_state = state.get("loader_state")

    # -- epoch / fit loops -------------------------------------------------
    def train_epoch(self, loader) -> float:
        """One epoch without callbacks (legacy per-epoch driving loop)."""
        return self._run_epoch(loader, EventBus(()), epoch=len(self.history))

    def _run_epoch(self, loader, bus: EventBus, epoch: int) -> float:
        self._training_module().train()
        losses: List[float] = []
        # Any iterable of (view1, view2[, labels, ...]) batches works as a
        # batch source — DataLoader, PrefetchLoader, or a plain generator.
        # Timing the fetch separately from the step separates data stalls
        # from compute, which is the number the prefetch pipeline moves.
        batches = iter(loader)
        while True:
            wait_start = time.perf_counter()
            try:
                batch = next(batches)
            except StopIteration:
                break
            data_wait = time.perf_counter() - wait_start
            if not isinstance(batch, (tuple, list)) or len(batch) < 2:
                raise ValueError(
                    "batch source must yield (view1, view2[, labels]) "
                    f"tuples, got {type(batch).__name__}"
                )
            view1, view2 = batch[0], batch[1]
            compute_start = time.perf_counter()
            loss = self.train_step(view1, view2)
            compute = time.perf_counter() - compute_start
            losses.append(loss)
            batch_size = int(np.asarray(view1).shape[0])
            self.metrics.gauge("step_loss").set(loss)
            self.metrics.counter("steps").inc()
            self.metrics.counter("images").inc(batch_size)
            self.metrics.histogram("data_wait_seconds").observe(data_wait)
            self.metrics.histogram("step_compute_seconds").observe(compute)
            queue_depth = getattr(loader, "queue_depth", None)
            if queue_depth is not None:
                self.metrics.gauge("prefetch_queue_depth").set(queue_depth)
            payload = {
                "epoch": epoch,
                "step": self._global_step,
                "loss": loss,
                "batch_size": batch_size,
                "data_wait_seconds": data_wait,
                "compute_seconds": compute,
            }
            payload.update(self.step_info())
            self._global_step += 1
            bus.emit("on_step", self, payload)
        if not losses:
            # A silent nan in the history poisons every downstream mean
            # and comparison; an exhausted or misconstructed loader is a
            # caller bug and must fail loudly.
            raise ValueError("empty loader")
        epoch_loss = float(np.mean(losses))
        self.history.append(epoch_loss)
        self.metrics.gauge("epoch_loss").set(epoch_loss)
        return epoch_loss

    def fit(
        self,
        loader,
        epochs: int,
        *args,
        scheduler=None,
        callbacks: Tuple = (),
        resume_from=None,
        **kwargs,
    ) -> Dict[str, List[float]]:
        """Run ``epochs`` of training, emitting telemetry events.

        Parameters
        ----------
        loader:
            Iterable of ``(view1, view2, labels)`` batches.
        epochs:
            Total passes over ``loader`` — when resuming, this is the
            overall target, not the number of *additional* epochs.
        scheduler:
            Optional LR scheduler with a ``step()`` method, stepped once
            per epoch before the epoch runs (matching the historical
            behaviour of the SimCLR/BYOL trainers).
        callbacks:
            Telemetry callbacks (see :mod:`repro.telemetry`); they
            receive the full event stream for this call.
        resume_from:
            Optional checkpoint source: a
            :class:`repro.checkpoint.Checkpointer`, a checkpoint
            directory, a single ``ckpt-*.npz`` path, or an
            already-loaded trainer state tree.  The trainer restores it
            (model, optimizer, RNG streams, history, metrics) and
            continues from the epoch after the checkpoint; the resumed
            run is bit-exact with the uninterrupted one.  An empty or
            fully corrupt checkpoint directory starts from scratch.
        """
        scheduler, callbacks = self._resolve_fit_args(
            args, kwargs, scheduler, callbacks
        )
        resumed = (
            resume_from is not None
            and self._restore_resume_source(resume_from)
        )
        self._active_loader = loader
        self._active_scheduler = scheduler
        try:
            if self._pending_loader_rng is not None:
                if getattr(loader, "rng", None) is not None:
                    from ..checkpoint import set_rng_state

                    set_rng_state(loader.rng, self._pending_loader_rng)
                self._pending_loader_rng = None
            if self._pending_loader_state is not None:
                if callable(getattr(loader, "load_state_dict", None)):
                    loader.load_state_dict(self._pending_loader_state)
                self._pending_loader_state = None
            if self._pending_scheduler_state is not None:
                if scheduler is not None:
                    scheduler.load_state_dict(self._pending_scheduler_state)
                self._pending_scheduler_state = None
            # Without a resume, epochs count from zero even if the trainer
            # has prior history (legacy repeated-fit behaviour).
            start_epoch = len(self.history) if resumed else 0
            bus = EventBus(callbacks)
            bus.emit(
                "on_fit_start",
                self,
                {
                    "epochs": int(epochs),
                    "trainer": type(self).__name__,
                    "start_epoch": start_epoch,
                },
            )
            for epoch in range(start_epoch, epochs):
                if scheduler is not None:
                    scheduler.step()
                bus.emit("on_epoch_start", self, {"epoch": epoch})
                epoch_loss = self._run_epoch(loader, bus, epoch)
                bus.emit(
                    "on_epoch_end", self, {"epoch": epoch, "loss": epoch_loss}
                )
            history = self._history_dict()
            bus.emit("on_fit_end", self, {"history": history})
            return history
        finally:
            self._active_loader = None
            self._active_scheduler = None

    def _restore_resume_source(self, resume_from) -> bool:
        """Load whatever ``resume_from`` names; True if state was restored."""
        if isinstance(resume_from, dict):
            self.load_state_dict(resume_from)
            return True
        from ..checkpoint import resolve_resume_state

        loaded = resolve_resume_state(resume_from)
        if loaded is None:
            return False
        self.load_state_dict(loaded.state)
        return True

    # -- backward-compatible argument handling -----------------------------
    def _resolve_fit_args(self, args, kwargs, scheduler, callbacks):
        if args:
            if len(args) > 1 or scheduler is not None:
                raise TypeError(
                    f"{type(self).__name__}.fit() takes (loader, epochs) "
                    f"plus keyword-only scheduler/callbacks; got "
                    f"{len(args)} extra positional argument(s)"
                )
            warnings.warn(
                f"{type(self).__name__}.fit(loader, epochs, scheduler) with "
                "a positional scheduler is deprecated; pass scheduler= by "
                "keyword",
                DeprecationWarning,
                stacklevel=3,
            )
            scheduler = args[0]
        for name, value in kwargs.items():
            target = _FIT_KWARG_ALIASES.get(name)
            if target is None:
                raise TypeError(
                    f"{type(self).__name__}.fit() got an unexpected keyword "
                    f"argument {name!r} (supported: scheduler, callbacks)"
                )
            warnings.warn(
                f"{type(self).__name__}.fit(..., {name}=) is deprecated; "
                f"use {target}= instead",
                DeprecationWarning,
                stacklevel=3,
            )
            if target == "scheduler":
                if scheduler is not None:
                    raise TypeError(
                        f"{type(self).__name__}.fit() got scheduler twice "
                        f"(via scheduler= and {name}=)"
                    )
                scheduler = value
            else:
                if callbacks:
                    raise TypeError(
                        f"{type(self).__name__}.fit() got callbacks twice "
                        f"(via callbacks= and {name}=)"
                    )
                callbacks = value if isinstance(value, (tuple, list)) else (value,)
        return scheduler, tuple(callbacks)
