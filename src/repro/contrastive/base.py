"""Shared trainer plumbing: unified ``fit()`` API + telemetry events.

Every trainer in :mod:`repro.contrastive` mixes in :class:`TrainerBase`
and gains the same contract:

- ``fit(loader, epochs, *, scheduler=None, callbacks=())`` returning a
  history dict whose ``"loss"`` entry is the per-epoch mean loss — so
  downstream code treats the five trainers interchangeably;
- per-step / per-epoch event emission through
  :class:`repro.telemetry.EventBus` (``on_fit_start``,
  ``on_epoch_start``, ``on_step``, ``on_epoch_end``, ``on_fit_end``);
- a per-trainer :class:`repro.telemetry.MetricsRegistry` (``metrics``)
  recording step loss, epoch loss, and step/image counters.

Subclasses implement ``train_step(view1, view2) -> float`` and may
override :meth:`step_info` to enrich the ``on_step`` payload (the CQ
trainer adds the sampled precision pair and per-term losses).

Backward compatibility: the historical positional-scheduler pattern
``fit(loader, epochs, scheduler)`` keeps working (with a
``DeprecationWarning``), and renamed kwargs (``lr_scheduler=``,
``callback=``) are shimmed to the new names instead of raising a bare
``TypeError``.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..telemetry import EventBus, MetricsRegistry

__all__ = ["TrainerBase"]

#: Renamed/removed fit() kwargs accepted (with a warning) for one cycle.
_FIT_KWARG_ALIASES = {
    "lr_scheduler": "scheduler",
    "schedule": "scheduler",
    "callback": "callbacks",
    "cbs": "callbacks",
}


class TrainerBase:
    """Mixin giving trainers the unified fit/event/metrics contract."""

    def _init_telemetry(self) -> None:
        """Call from ``__init__`` before training starts."""
        self.history: List[float] = []
        self.metrics = MetricsRegistry()
        self._global_step = 0

    # -- hooks for subclasses ----------------------------------------------
    def train_step(self, view1: np.ndarray, view2: np.ndarray) -> float:
        raise NotImplementedError

    def _training_module(self):
        """The module whose ``train()`` mode gates an epoch."""
        return self.model

    def step_info(self) -> Dict[str, object]:
        """Extra JSON-friendly fields merged into each ``on_step`` payload."""
        return {}

    def _history_dict(self) -> Dict[str, List[float]]:
        """The dict ``fit()`` returns; always contains ``"loss"``."""
        return {"loss": list(self.history)}

    # -- epoch / fit loops -------------------------------------------------
    def train_epoch(self, loader) -> float:
        """One epoch without callbacks (legacy per-epoch driving loop)."""
        return self._run_epoch(loader, EventBus(()), epoch=len(self.history))

    def _run_epoch(self, loader, bus: EventBus, epoch: int) -> float:
        self._training_module().train()
        losses: List[float] = []
        for view1, view2, _ in loader:
            loss = self.train_step(view1, view2)
            losses.append(loss)
            batch_size = int(np.asarray(view1).shape[0])
            self.metrics.gauge("step_loss").set(loss)
            self.metrics.counter("steps").inc()
            self.metrics.counter("images").inc(batch_size)
            payload = {
                "epoch": epoch,
                "step": self._global_step,
                "loss": loss,
                "batch_size": batch_size,
            }
            payload.update(self.step_info())
            self._global_step += 1
            bus.emit("on_step", self, payload)
        epoch_loss = float(np.mean(losses)) if losses else float("nan")
        self.history.append(epoch_loss)
        self.metrics.gauge("epoch_loss").set(epoch_loss)
        return epoch_loss

    def fit(
        self,
        loader,
        epochs: int,
        *args,
        scheduler=None,
        callbacks: Tuple = (),
        **kwargs,
    ) -> Dict[str, List[float]]:
        """Run ``epochs`` of training, emitting telemetry events.

        Parameters
        ----------
        loader:
            Iterable of ``(view1, view2, labels)`` batches.
        epochs:
            Number of passes over ``loader``.
        scheduler:
            Optional LR scheduler with a ``step()`` method, stepped once
            per epoch before the epoch runs (matching the historical
            behaviour of the SimCLR/BYOL trainers).
        callbacks:
            Telemetry callbacks (see :mod:`repro.telemetry`); they
            receive the full event stream for this call.
        """
        scheduler, callbacks = self._resolve_fit_args(
            args, kwargs, scheduler, callbacks
        )
        bus = EventBus(callbacks)
        bus.emit(
            "on_fit_start",
            self,
            {"epochs": int(epochs), "trainer": type(self).__name__},
        )
        for epoch in range(epochs):
            if scheduler is not None:
                scheduler.step()
            bus.emit("on_epoch_start", self, {"epoch": epoch})
            epoch_loss = self._run_epoch(loader, bus, epoch)
            bus.emit(
                "on_epoch_end", self, {"epoch": epoch, "loss": epoch_loss}
            )
        history = self._history_dict()
        bus.emit("on_fit_end", self, {"history": history})
        return history

    # -- backward-compatible argument handling -----------------------------
    def _resolve_fit_args(self, args, kwargs, scheduler, callbacks):
        if args:
            if len(args) > 1 or scheduler is not None:
                raise TypeError(
                    f"{type(self).__name__}.fit() takes (loader, epochs) "
                    f"plus keyword-only scheduler/callbacks; got "
                    f"{len(args)} extra positional argument(s)"
                )
            warnings.warn(
                f"{type(self).__name__}.fit(loader, epochs, scheduler) with "
                "a positional scheduler is deprecated; pass scheduler= by "
                "keyword",
                DeprecationWarning,
                stacklevel=3,
            )
            scheduler = args[0]
        for name, value in kwargs.items():
            target = _FIT_KWARG_ALIASES.get(name)
            if target is None:
                raise TypeError(
                    f"{type(self).__name__}.fit() got an unexpected keyword "
                    f"argument {name!r} (supported: scheduler, callbacks)"
                )
            warnings.warn(
                f"{type(self).__name__}.fit(..., {name}=) is deprecated; "
                f"use {target}= instead",
                DeprecationWarning,
                stacklevel=3,
            )
            if target == "scheduler":
                if scheduler is not None:
                    raise TypeError(
                        f"{type(self).__name__}.fit() got scheduler twice "
                        f"(via scheduler= and {name}=)"
                    )
                scheduler = value
            else:
                if callbacks:
                    raise TypeError(
                        f"{type(self).__name__}.fit() got callbacks twice "
                        f"(via callbacks= and {name}=)"
                    )
                callbacks = value if isinstance(value, (tuple, list)) else (value,)
        return scheduler, tuple(callbacks)
