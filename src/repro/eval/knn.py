"""k-nearest-neighbour evaluation of frozen representations.

A standard label-efficient SSL evaluation protocol (weighted k-NN on
cosine similarity over encoder features): no training at all, so it
isolates representation quality from probe optimization.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..data.datasets import ArrayDataset
from .linear_eval import extract_features

__all__ = ["knn_classify", "knn_evaluation"]


def knn_classify(
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    k: int = 5,
    temperature: float = 0.07,
) -> np.ndarray:
    """Weighted k-NN predictions on cosine similarity.

    Each neighbour votes with weight ``exp(cos / temperature)`` (the
    protocol of Wu et al.'s instance discrimination, also used to evaluate
    MoCo-style models).
    """
    if k < 1 or k > len(train_features):
        raise ValueError(
            f"k must be in [1, {len(train_features)}], got {k}"
        )
    train_norm = train_features / (
        np.linalg.norm(train_features, axis=1, keepdims=True) + 1e-8
    )
    test_norm = test_features / (
        np.linalg.norm(test_features, axis=1, keepdims=True) + 1e-8
    )
    similarity = test_norm @ train_norm.T  # (n_test, n_train)
    num_classes = int(train_labels.max()) + 1
    neighbours = np.argpartition(-similarity, kth=k - 1, axis=1)[:, :k]
    predictions = np.empty(len(test_features), dtype=np.int64)
    for i, idx in enumerate(neighbours):
        weights = np.exp(similarity[i, idx] / temperature)
        votes = np.zeros(num_classes)
        np.add.at(votes, train_labels[idx], weights)
        predictions[i] = int(votes.argmax())
    return predictions


def knn_evaluation(
    encoder: nn.Module,
    train: ArrayDataset,
    test: ArrayDataset,
    k: int = 5,
    temperature: float = 0.07,
    precision: Optional[int] = None,
) -> float:
    """k-NN accuracy of a frozen encoder's features (no training)."""
    train_features, train_labels = extract_features(encoder, train,
                                                    precision=precision)
    test_features, test_labels = extract_features(encoder, test,
                                                  precision=precision)
    predictions = knn_classify(train_features, train_labels,
                               test_features, k=k, temperature=temperature)
    return float((predictions == test_labels).mean())
