"""Semi-supervised fine-tuning (the paper's primary evaluation protocol).

A pretrained encoder receives a linear classification head and the whole
network is fine-tuned on a stratified 10% or 1% label subset with SGD
(momentum 0.9) and cosine learning-rate decay from 0.1 — the settings of
Sec. 4.1.  Evaluation runs either at full precision or with the encoder
fixed at 4-bit (``precision=4``), matching the paper's two deployment
columns.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from .. import nn
from ..data.datasets import ArrayDataset, DataLoader, Subset, stratified_label_fraction
from ..engine import run_backward
from ..nn.optim import SGD, CosineAnnealingLR
from ..nn.rng import ensure_rng
from ..nn.tensor import Tensor
from ..quant import apply_precision, count_quantized_modules
from .metrics import accuracy

__all__ = ["attach_classifier", "finetune", "FinetuneResult", "evaluate_classifier"]


class ClassifierModel(nn.Module):
    """Encoder + linear classification head."""

    def __init__(self, encoder: nn.Module, num_classes: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.encoder = encoder
        self.head = nn.Linear(encoder.feature_dim, num_classes, rng=rng)

    def forward(self, x):
        return self.head(self.encoder(x))


def attach_classifier(
    encoder: nn.Module,
    num_classes: int,
    rng: Optional[np.random.Generator] = None,
) -> ClassifierModel:
    """Attach a fresh linear head to a (pretrained) encoder."""
    if num_classes < 2:
        raise ValueError(f"need >= 2 classes, got {num_classes}")
    return ClassifierModel(encoder, num_classes, rng=rng)


@dataclasses.dataclass
class FinetuneResult:
    """Outcome of a fine-tuning run."""

    test_accuracy: float
    train_losses: List[float]
    label_fraction: float
    precision: Optional[int]

    @property
    def test_accuracy_percent(self) -> float:
        return 100.0 * self.test_accuracy


def evaluate_classifier(
    model: nn.Module,
    dataset: ArrayDataset,
    batch_size: int = 64,
    precision: Optional[int] = None,
) -> float:
    """Test accuracy of a classifier model over a dataset."""
    model.eval()
    if precision is not None:
        apply_precision(model.encoder, precision)
    logits_all, labels_all = [], []
    loader = DataLoader(dataset, batch_size=batch_size)
    with nn.no_grad():
        for images, labels in loader:
            logits_all.append(model(Tensor(images)).data)
            labels_all.append(labels)
    return accuracy(np.concatenate(logits_all), np.concatenate(labels_all))


def finetune(
    encoder: nn.Module,
    train: ArrayDataset,
    test: ArrayDataset,
    label_fraction: float = 0.1,
    precision: Optional[int] = None,
    epochs: int = 10,
    batch_size: int = 32,
    lr: float = 0.1,
    momentum: float = 0.9,
    rng: Optional[np.random.Generator] = None,
) -> FinetuneResult:
    """Fine-tune ``encoder`` + fresh head on a label fraction; report accuracy.

    ``precision`` fixes the encoder's quantized modules to that bit-width
    for both fine-tuning and evaluation (the paper's "4-bit" column keeps a
    fixed precision to stabilise weight/activation distributions); ``None``
    runs at full precision.  The encoder is modified in place — callers
    reload state dicts between runs.
    """
    rng = ensure_rng(rng)
    num_classes = train.num_classes
    model = attach_classifier(encoder, num_classes, rng=rng)

    if precision is not None:
        if count_quantized_modules(encoder) == 0:
            raise ValueError(
                "fixed-precision fine-tuning requires a quantized encoder "
                "(run repro.quant.prepare first)"
            )
        apply_precision(encoder, precision)
    elif count_quantized_modules(encoder) > 0:
        apply_precision(encoder, None)

    indices = stratified_label_fraction(train.labels, label_fraction, rng)
    subset = Subset(train, indices)
    loader = DataLoader(subset, batch_size=batch_size, shuffle=True, rng=rng)

    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum)
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)

    train_losses: List[float] = []
    for _ in range(epochs):
        scheduler.step()
        model.train()
        batch_losses = []
        for images, labels in loader:
            optimizer.zero_grad()
            loss = nn.losses.cross_entropy(model(Tensor(images)), labels)
            run_backward(loss)
            optimizer.step()
            batch_losses.append(float(loss.data))
        train_losses.append(float(np.mean(batch_losses)))

    test_acc = evaluate_classifier(model, test, precision=precision)
    return FinetuneResult(
        test_accuracy=test_acc,
        train_losses=train_losses,
        label_fraction=label_fraction,
        precision=precision,
    )
