"""Deployment-precision robustness: accuracy across a bit-width sweep.

An extension experiment suggested by the paper's premise: if quantization
augmentation teaches feature consistency across precisions, a CQ-trained
encoder should degrade more gracefully when deployed at precisions it was
never fine-tuned for.  :func:`precision_sweep` measures a linear-probe
accuracy curve over bit-widths (see
``benchmarks/test_ablation_robustness.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .. import nn
from ..data.datasets import ArrayDataset
from ..nn.rng import ensure_rng
from ..quant import count_quantized_modules
from .linear_eval import linear_evaluation

__all__ = ["precision_sweep", "area_under_precision_curve"]


def precision_sweep(
    encoder: nn.Module,
    train: ArrayDataset,
    test: ArrayDataset,
    bit_widths: Sequence[int] = (2, 3, 4, 6, 8, 16),
    epochs: int = 15,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, float]:
    """Linear-probe accuracy (%) at each deployment bit-width.

    The encoder must already be quantized (``repro.quant.prepare``); the probe
    is retrained per precision because feature scales shift with the
    quantization level.
    """
    if count_quantized_modules(encoder) == 0:
        raise ValueError(
            "precision_sweep requires a quantized encoder "
            "(run repro.quant.prepare first)"
        )
    rng = ensure_rng(rng)
    curve: Dict[int, float] = {}
    for bits in bit_widths:
        seed = int(rng.integers(0, 2**31))
        curve[int(bits)] = 100.0 * linear_evaluation(
            encoder, train, test, epochs=epochs, precision=int(bits),
            rng=np.random.default_rng(seed),
        )
    return curve


def area_under_precision_curve(curve: Dict[int, float]) -> float:
    """Mean accuracy over the sweep — a single robustness score."""
    if not curve:
        raise ValueError("empty precision curve")
    return float(np.mean(list(curve.values())))
