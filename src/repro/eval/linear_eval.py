"""Linear evaluation: frozen encoder, trained linear probe.

Features are extracted once with the encoder in eval mode, then a linear
softmax classifier is trained on them — the standard protocol for judging
representation quality (Tables 2 and 5).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..data.datasets import ArrayDataset, DataLoader
from ..engine import run_backward
from ..nn.optim import SGD, CosineAnnealingLR
from ..nn.rng import ensure_rng
from ..nn.tensor import Tensor
from ..quant import apply_precision, count_quantized_modules
from .metrics import accuracy

__all__ = ["extract_features", "linear_evaluation"]


def extract_features(
    encoder: nn.Module,
    dataset: ArrayDataset,
    batch_size: int = 64,
    precision: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the frozen encoder over a dataset; returns (features, labels)."""
    encoder.eval()
    if precision is not None and count_quantized_modules(encoder) > 0:
        apply_precision(encoder, precision)
    elif count_quantized_modules(encoder) > 0:
        apply_precision(encoder, None)
    features, labels_all = [], []
    with nn.no_grad():
        for images, labels in DataLoader(dataset, batch_size=batch_size):
            features.append(encoder(Tensor(images)).data)
            labels_all.append(labels)
    return np.concatenate(features), np.concatenate(labels_all)


def linear_evaluation(
    encoder: nn.Module,
    train: ArrayDataset,
    test: ArrayDataset,
    epochs: int = 30,
    lr: float = 0.1,
    batch_size: int = 64,
    precision: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Train a linear probe on frozen features; return test accuracy."""
    rng = ensure_rng(rng)
    x_train, y_train = extract_features(encoder, train, batch_size, precision)
    x_test, y_test = extract_features(encoder, test, batch_size, precision)

    # Standardise features — the usual probe conditioning step.
    mean = x_train.mean(axis=0, keepdims=True)
    std = x_train.std(axis=0, keepdims=True) + 1e-6
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std

    probe = nn.Linear(x_train.shape[1], int(y_train.max()) + 1, rng=rng)
    optimizer = SGD(probe.parameters(), lr=lr, momentum=0.9)
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)

    n = len(x_train)
    for _ in range(epochs):
        scheduler.step()
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            optimizer.zero_grad()
            loss = nn.losses.cross_entropy(
                probe(Tensor(x_train[idx])), y_train[idx]
            )
            run_backward(loss)
            optimizer.step()

    with nn.no_grad():
        logits = probe(Tensor(x_test)).data
    return accuracy(logits, y_test)
