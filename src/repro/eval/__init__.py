"""Evaluation harnesses: the paper's four measurement protocols.

- :mod:`finetune` — semi-supervised fine-tuning (10% / 1% labels) at full
  precision or a fixed 4-bit precision (Tables 1, 4, 6, 7, 8).
- :mod:`linear_eval` — frozen-encoder linear probe (Tables 2, 5, 8).
- :mod:`detection` — YOLO-lite transfer to the synthetic detection task
  with AP / AP50 / AP75 (Table 3).
- :mod:`tsne` — from-scratch t-SNE embedding + separability score (Fig. 2).
"""

from .detection import DetectionModel, YoloLiteHead, evaluate_detection, train_detector
from .finetune import FinetuneResult, attach_classifier, finetune
from .knn import knn_classify, knn_evaluation
from .linear_eval import extract_features, linear_evaluation
from .metrics import accuracy, confusion_matrix, topk_accuracy
from .robustness import area_under_precision_curve, precision_sweep
from .tsne import linear_separability, tsne

__all__ = [
    "accuracy",
    "topk_accuracy",
    "confusion_matrix",
    "attach_classifier",
    "finetune",
    "FinetuneResult",
    "extract_features",
    "linear_evaluation",
    "knn_classify",
    "knn_evaluation",
    "YoloLiteHead",
    "DetectionModel",
    "train_detector",
    "evaluate_detection",
    "tsne",
    "linear_separability",
    "precision_sweep",
    "area_under_precision_curve",
]
