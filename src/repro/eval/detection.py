"""Detection transfer: YOLO-lite head, training loop, and AP evaluation.

Substitutes the paper's Pascal-VOC + YOLOv4 transfer experiment (Table 3):
a pretrained backbone's spatial features feed a single-scale, single-anchor
YOLO-style head; AP is computed COCO-style (mean over IoU 0.5:0.05:0.95)
along with AP50 and AP75 via greedy matching on a precision-recall sweep.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..data.detection import Box, SyntheticDetection
from ..engine import run_backward
from ..nn import functional as F
from ..nn.losses import bce_with_logits, cross_entropy, mse_loss
from ..nn.optim import SGD, CosineAnnealingLR
from ..nn.rng import ensure_rng
from ..nn.tensor import Tensor

__all__ = [
    "YoloLiteHead",
    "DetectionModel",
    "Prediction",
    "train_detector",
    "evaluate_detection",
    "box_iou",
]


@dataclasses.dataclass(frozen=True)
class Prediction:
    """A decoded detection: class, confidence, normalized center-size box."""

    class_id: int
    score: float
    cx: float
    cy: float
    w: float
    h: float

    def corners(self) -> Tuple[float, float, float, float]:
        return (
            self.cx - self.w / 2,
            self.cy - self.h / 2,
            self.cx + self.w / 2,
            self.cy + self.h / 2,
        )


def box_iou(a, b) -> float:
    """IoU of two objects exposing ``corners() -> (x1, y1, x2, y2)``."""
    ax1, ay1, ax2, ay2 = a.corners()
    bx1, by1, bx2, by2 = b.corners()
    ix1, iy1 = max(ax1, bx1), max(ay1, by1)
    ix2, iy2 = min(ax2, bx2), min(ay2, by2)
    iw, ih = max(0.0, ix2 - ix1), max(0.0, iy2 - iy1)
    inter = iw * ih
    union = (ax2 - ax1) * (ay2 - ay1) + (bx2 - bx1) * (by2 - by1) - inter
    if union <= 0:
        return 0.0
    return inter / union


class YoloLiteHead(nn.Module):
    """Single-scale, single-anchor detection head.

    Produces ``(N, 5 + C, S, S)``: objectness logit, in-cell offsets
    (tx, ty), normalized sizes (tw, th), and class logits.
    """

    def __init__(self, in_channels: int, num_classes: int,
                 hidden: int = 32,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.num_classes = num_classes
        self.conv1 = nn.Conv2d(in_channels, hidden, 3, padding=1, rng=rng)
        self.bn = nn.BatchNorm2d(hidden)
        self.conv2 = nn.Conv2d(hidden, 5 + num_classes, 1, rng=rng)

    def forward(self, fmap):
        return self.conv2(F.relu(self.bn(self.conv1(fmap))))


class DetectionModel(nn.Module):
    """Backbone (``forward_spatial``) + YOLO-lite head."""

    def __init__(self, backbone: nn.Module, num_classes: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.backbone = backbone
        self.head = YoloLiteHead(backbone.feature_dim, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x):
        return self.head(self.backbone.forward_spatial(x))


def _build_targets(
    boxes_batch: Sequence[Sequence[Box]], grid: int, num_classes: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense training targets from ground-truth boxes.

    Returns (objectness (N,S,S), box targets (N,4,S,S), class ids (N,S,S));
    cells without an object carry class id -1.
    """
    n = len(boxes_batch)
    obj = np.zeros((n, grid, grid), dtype=np.float32)
    box = np.zeros((n, 4, grid, grid), dtype=np.float32)
    cls = np.full((n, grid, grid), -1, dtype=np.int64)
    for b, boxes in enumerate(boxes_batch):
        for gt in boxes:
            col = min(int(gt.cx * grid), grid - 1)
            row = min(int(gt.cy * grid), grid - 1)
            obj[b, row, col] = 1.0
            box[b, 0, row, col] = gt.cx * grid - col  # in-cell offset x
            box[b, 1, row, col] = gt.cy * grid - row  # in-cell offset y
            box[b, 2, row, col] = gt.w
            box[b, 3, row, col] = gt.h
            cls[b, row, col] = gt.class_id
    return obj, box, cls


def yolo_loss(raw: Tensor, boxes_batch: Sequence[Sequence[Box]],
              num_classes: int,
              box_weight: float = 5.0) -> Tensor:
    """YOLO-style composite loss on the raw head output."""
    n, _, grid, _ = raw.shape
    obj_t, box_t, cls_t = _build_targets(boxes_batch, grid, num_classes)

    obj_logits = raw[:, 0]
    loss = bce_with_logits(obj_logits, Tensor(obj_t))

    responsible = np.argwhere(obj_t > 0.5)
    if len(responsible):
        bi, ri, ci = responsible.T
        pred_box = F.sigmoid(raw[:, 1:5])
        pred_cells = pred_box[bi, :, ri, ci]
        target_cells = Tensor(box_t[bi, :, ri, ci])
        loss = loss + box_weight * mse_loss(pred_cells, target_cells)

        class_logits = raw[:, 5:]
        pred_classes = class_logits[bi, :, ri, ci]
        loss = loss + cross_entropy(pred_classes, cls_t[bi, ri, ci])
    return loss


def _decode(
    raw: np.ndarray,
    score_threshold: float = 0.3,
    nms_iou: float = 0.5,
    max_detections: int = 10,
) -> List[Prediction]:
    """Decode one image's raw grid into NMS-filtered predictions."""
    grid = raw.shape[1]
    obj = 1.0 / (1.0 + np.exp(-raw[0]))
    txy_wh = 1.0 / (1.0 + np.exp(-raw[1:5]))
    class_logits = raw[5:]
    class_probs = np.exp(class_logits - class_logits.max(axis=0, keepdims=True))
    class_probs /= class_probs.sum(axis=0, keepdims=True)

    candidates: List[Prediction] = []
    for row in range(grid):
        for col in range(grid):
            score = float(obj[row, col])
            if score < score_threshold:
                continue
            cls = int(class_probs[:, row, col].argmax())
            candidates.append(
                Prediction(
                    class_id=cls,
                    score=score * float(class_probs[cls, row, col]),
                    cx=(col + float(txy_wh[0, row, col])) / grid,
                    cy=(row + float(txy_wh[1, row, col])) / grid,
                    w=float(txy_wh[2, row, col]),
                    h=float(txy_wh[3, row, col]),
                )
            )
    candidates.sort(key=lambda p: -p.score)
    kept: List[Prediction] = []
    for cand in candidates:
        if len(kept) >= max_detections:
            break
        if all(
            box_iou(cand, k) < nms_iou or k.class_id != cand.class_id
            for k in kept
        ):
            kept.append(cand)
    return kept


def train_detector(
    backbone: nn.Module,
    dataset: SyntheticDetection,
    epochs: int = 10,
    batch_size: int = 8,
    lr: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> DetectionModel:
    """Fine-tune a detection model (backbone + fresh head) on scenes."""
    rng = ensure_rng(rng)
    model = DetectionModel(backbone, dataset.num_classes, rng=rng)
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)

    indices = np.arange(len(dataset))
    for _ in range(epochs):
        scheduler.step()
        model.train()
        rng.shuffle(indices)
        for start in range(0, len(indices), batch_size):
            chunk = indices[start : start + batch_size]
            images = np.stack([dataset[i][0] for i in chunk])
            boxes = [dataset[i][1] for i in chunk]
            optimizer.zero_grad()
            raw = model(Tensor(images))
            loss = yolo_loss(raw, boxes, dataset.num_classes)
            run_backward(loss)
            optimizer.step()
    return model


def _average_precision(
    matches: List[Tuple[float, bool]], total_gt: int
) -> float:
    """All-point-interpolated AP from (score, is_true_positive) pairs."""
    if total_gt == 0:
        return 0.0
    if not matches:
        return 0.0
    matches.sort(key=lambda pair: -pair[0])
    tp = np.cumsum([1.0 if hit else 0.0 for _, hit in matches])
    fp = np.cumsum([0.0 if hit else 1.0 for _, hit in matches])
    recall = tp / total_gt
    precision = tp / np.maximum(tp + fp, 1e-12)
    # All-point interpolation: precision envelope integrated over recall.
    ap = 0.0
    previous_recall = 0.0
    for i in range(len(recall)):
        envelope = precision[i:].max()
        ap += (recall[i] - previous_recall) * envelope
        previous_recall = recall[i]
    return float(ap)


def evaluate_detection(
    model: DetectionModel,
    dataset: SyntheticDetection,
    iou_thresholds: Sequence[float] = tuple(np.arange(0.5, 1.0, 0.05)),
    score_threshold: float = 0.1,
) -> Dict[str, float]:
    """COCO-style metrics: AP (mean over thresholds), AP50, AP75 — in %."""
    model.eval()
    all_predictions: List[Tuple[int, Prediction]] = []
    all_gt: List[Tuple[int, Box]] = []
    with nn.no_grad():
        for i in range(len(dataset)):
            image, boxes = dataset[i]
            raw = model(Tensor(image[None])).data[0]
            for pred in _decode(raw, score_threshold=score_threshold):
                all_predictions.append((i, pred))
            for gt in boxes:
                all_gt.append((i, gt))

    def ap_at(threshold: float) -> float:
        class_aps = []
        for cls in range(dataset.num_classes):
            gt_cls = [(img, g) for img, g in all_gt if g.class_id == cls]
            preds = [
                (img, p) for img, p in all_predictions if p.class_id == cls
            ]
            preds.sort(key=lambda pair: -pair[1].score)
            matched = set()
            records: List[Tuple[float, bool]] = []
            for img, pred in preds:
                best_iou, best_key = 0.0, None
                for k, (gt_img, gt) in enumerate(gt_cls):
                    if gt_img != img or k in matched:
                        continue
                    iou = box_iou(pred, gt)
                    if iou > best_iou:
                        best_iou, best_key = iou, k
                if best_key is not None and best_iou >= threshold:
                    matched.add(best_key)
                    records.append((pred.score, True))
                else:
                    records.append((pred.score, False))
            class_aps.append(_average_precision(records, len(gt_cls)))
        return float(np.mean(class_aps)) if class_aps else 0.0

    per_threshold = {t: ap_at(t) for t in iou_thresholds}
    ap50 = per_threshold.get(0.5, ap_at(0.5))
    ap75 = min(per_threshold, key=lambda t: abs(t - 0.75))
    return {
        "AP": 100.0 * float(np.mean(list(per_threshold.values()))),
        "AP50": 100.0 * ap50,
        "AP75": 100.0 * per_threshold[ap75],
    }
