"""From-scratch t-SNE (Fig. 2) and a quantitative separability score.

Exact (non-approximated) t-SNE: Gaussian affinities with per-point
perplexity calibration by binary search, symmetrised, then KL-divergence
gradient descent with momentum and early exaggeration — the original
van der Maaten & Hinton recipe.  Figure 2 is qualitative in the paper; we
additionally report :func:`linear_separability` so "better linear
separability" becomes a measurable claim.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["tsne", "linear_separability"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    norms = (x ** 2).sum(axis=1)
    d2 = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _calibrated_affinities(
    d2: np.ndarray, perplexity: float, tol: float = 1e-4, max_iter: int = 50
) -> np.ndarray:
    """Row-stochastic affinities whose entropy matches log(perplexity)."""
    n = d2.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        lo, hi = 1e-20, 1e20
        beta = 1.0  # precision 1 / (2 sigma^2)
        row = np.delete(d2[i], i)
        for _ in range(max_iter):
            logits = -beta * row
            logits -= logits.max()
            exp = np.exp(logits)
            prob = exp / exp.sum()
            entropy = -np.sum(prob * np.log(prob + 1e-12))
            if abs(entropy - target_entropy) < tol:
                break
            if entropy > target_entropy:
                lo = beta
                beta = beta * 2 if hi >= 1e20 else (beta + hi) / 2
            else:
                hi = beta
                beta = beta / 2 if lo <= 1e-20 else (beta + lo) / 2
        p[i, np.arange(n) != i] = prob
    return p


def tsne(
    features: np.ndarray,
    n_components: int = 2,
    perplexity: float = 10.0,
    iterations: int = 300,
    learning_rate: float = 100.0,
    early_exaggeration: float = 4.0,
    exaggeration_iters: int = 50,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Embed ``features`` (N, D) into ``n_components`` dimensions.

    Returns the (N, n_components) embedding.  ``perplexity`` must satisfy
    ``3 * perplexity < N`` (the usual sanity bound).
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if n < 5:
        raise ValueError(f"t-SNE needs at least 5 points, got {n}")
    if 3 * perplexity >= n:
        raise ValueError(
            f"perplexity {perplexity} too large for {n} points"
        )
    rng = rng or np.random.default_rng(0)

    p = _calibrated_affinities(_pairwise_sq_dists(features), perplexity)
    p = (p + p.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    y = 1e-4 * rng.normal(size=(n, n_components))
    update = np.zeros_like(y)
    gains = np.ones_like(y)

    for iteration in range(iterations):
        exaggeration = early_exaggeration if iteration < exaggeration_iters else 1.0
        d2 = _pairwise_sq_dists(y)
        q_num = 1.0 / (1.0 + d2)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)

        pq = (exaggeration * p - q) * q_num
        grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

        momentum = 0.5 if iteration < 100 else 0.8
        same_sign = np.sign(grad) == np.sign(update)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        update = momentum * update - learning_rate * gains * grad
        y = y + update
        y = y - y.mean(axis=0, keepdims=True)
    return y


def kl_divergence(features: np.ndarray, embedding: np.ndarray,
                  perplexity: float = 10.0) -> float:
    """KL(P || Q) of a t-SNE embedding — lower means a more faithful map."""
    n = features.shape[0]
    p = _calibrated_affinities(_pairwise_sq_dists(
        np.asarray(features, dtype=np.float64)), perplexity)
    p = np.maximum((p + p.T) / (2.0 * n), 1e-12)
    d2 = _pairwise_sq_dists(np.asarray(embedding, dtype=np.float64))
    q_num = 1.0 / (1.0 + d2)
    np.fill_diagonal(q_num, 0.0)
    q = np.maximum(q_num / q_num.sum(), 1e-12)
    return float(np.sum(p * np.log(p / q)))


def linear_separability(
    embedding: np.ndarray,
    labels: np.ndarray,
    l2: float = 1e-2,
) -> float:
    """Accuracy of a one-vs-rest ridge classifier on the embedding.

    Quantifies Fig. 2's visual claim: higher means the classes are more
    linearly separable in the embedded space.
    """
    embedding = np.asarray(embedding, dtype=np.float64)
    labels = np.asarray(labels)
    if len(embedding) != len(labels):
        raise ValueError(
            f"{len(embedding)} points vs {len(labels)} labels"
        )
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("need at least two classes")
    x = np.concatenate([embedding, np.ones((len(embedding), 1))], axis=1)
    onehot = (labels[:, None] == classes[None, :]).astype(np.float64)
    w = np.linalg.solve(
        x.T @ x + l2 * np.eye(x.shape[1]), x.T @ onehot
    )
    predictions = classes[np.argmax(x @ w, axis=1)]
    return float((predictions == labels).mean())
