"""Classification metrics."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["accuracy", "topk_accuracy", "confusion_matrix"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] from (N, C) logits and (N,) labels."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if len(logits) != len(labels):
        raise ValueError(f"{len(logits)} logits vs {len(labels)} labels")
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float((logits.argmax(axis=1) == labels).mean())


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy: fraction of labels within the k highest logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if k < 1 or k > logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    topk = np.argsort(-logits, axis=1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """(C, C) counts with rows = true class, columns = predicted class."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
