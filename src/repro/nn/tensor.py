"""The :class:`Tensor` — a numpy array with reverse-mode autograd.

Arithmetic operators and most methods are installed by
:mod:`repro.nn.functional` at import time so that the operation
implementations can live in small per-topic modules without creating
circular imports.  Importing :mod:`repro.nn` guarantees installation.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Optional, Tuple, Union

import numpy as np

from . import autograd

__all__ = ["Tensor", "as_tensor", "forbid_silent_downcast"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_DEFAULT_DTYPE = np.float32


class _DowncastGuard(threading.local):
    depth = 0
    label = ""


_downcast_guard = _DowncastGuard()


@contextlib.contextmanager
def forbid_silent_downcast(label: str = "a float64-exact computation"):
    """Turn :class:`Tensor`'s silent float64→float32 downcast into an error.

    Constructing a Tensor from a float64 array without an explicit
    ``dtype=`` normally casts to float32 (the framework default).  Inside
    computations whose correctness *depends* on float64 — the integer
    quantization grids, where ``step * code`` must dequantize exactly —
    that silent cast is a data-corruption bug, so the code wraps itself
    in this guard and the constructor raises ``TypeError`` instead.
    """
    _downcast_guard.depth += 1
    previous = _downcast_guard.label
    _downcast_guard.label = label
    try:
        yield
    finally:
        _downcast_guard.depth -= 1
        _downcast_guard.label = previous


class Tensor:
    """A multi-dimensional array that records operations for autograd.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Floating-point data defaults to
        float32 to match the conventions of deep-learning frameworks.
    requires_grad:
        When True, operations involving this tensor are recorded and
        ``backward()`` will populate ``.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_ctx", "_retain_grad")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data, dtype=dtype)
        if dtype is None and array.dtype == np.float64:
            if _downcast_guard.depth:
                raise TypeError(
                    f"silent float64->float32 downcast inside "
                    f"{_downcast_guard.label}; pass dtype= explicitly "
                    f"(dtype=np.float64 to keep the wide grid)"
                )
            array = array.astype(_DEFAULT_DTYPE)
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._ctx: Optional[autograd.Function] = None
        self._retain_grad: bool = False

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._ctx is None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    # -- gradient plumbing ----------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (see :func:`autograd.backward`)."""
        autograd.backward(self, grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def retain_grad(self) -> "Tensor":
        """Request that ``.grad`` be kept for this non-leaf tensor."""
        self._retain_grad = True
        return self

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a copy that participates in the graph (identity op)."""
        from . import functional as F

        return F.identity(self)

    # -- conversions ------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from autograd."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item(self)

    def astype(self, dtype: np.dtype) -> "Tensor":
        """Return a detached copy cast to ``dtype``."""
        return Tensor(self.data.astype(dtype), requires_grad=False,
                      dtype=dtype)

    # NumPy interop: allow np.asarray(tensor).
    def __array__(self, dtype=None) -> np.ndarray:
        return self.data.astype(dtype) if dtype is not None else self.data


def _raise_item(t: Tensor) -> float:
    raise ValueError(f"item() requires a single-element tensor, got shape {t.shape}")


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor`, passing Tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
