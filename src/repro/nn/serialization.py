"""Checkpoint serialization: state dicts and nested state trees to ``.npz``.

Two layers:

- flat state dicts (``save_state`` / ``load_state``) and model checkpoints
  with scalar metadata (``save_checkpoint`` / ``load_checkpoint``);
- nested *state trees* (``pack_state`` / ``unpack_state``): arbitrarily
  nested dicts/lists mixing numpy arrays with JSON-friendly scalars
  (ints, floats, strs, bools, None).  Arrays are stored as native npz
  entries (bit-exact, including float64 optimizer moments); everything
  else round-trips through a JSON skeleton stored alongside them.  This
  is the on-disk format of :mod:`repro.checkpoint` full-training
  checkpoints (model + optimizer + scheduler + RNG streams).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

import numpy as np

from .module import Module

__all__ = [
    "save_state",
    "load_state",
    "save_checkpoint",
    "load_checkpoint",
    "pack_state",
    "unpack_state",
]

_META_PREFIX = "__meta__"
_META_JSON_KEY = "__meta_json__"

#: Reserved npz entry holding the JSON skeleton of a packed state tree.
_TREE_KEY = "__state_tree__"
#: Prefix for npz entries holding the arrays extracted from the tree.
_ARRAY_PREFIX = "__arr_"
#: JSON marker object referencing an extracted array by index.
_ARRAY_MARKER = "__ndarray__"
#: Current pack_state format version (bump on incompatible layout changes).
PACK_FORMAT_VERSION = 1


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (.npz, compressed)."""
    if not state:
        raise ValueError("refusing to save an empty state dict")
    np.savez_compressed(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def _check_metadata_value(key: str, value: Any) -> None:
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    raise TypeError(
        f"metadata {key!r} must be a scalar (int/float/str/bool/None), "
        f"got {type(value).__name__}"
    )


def _json_scalar(value: Any) -> Any:
    """Convert numpy scalar types to their Python equivalents."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def save_checkpoint(model: Module, path: str, **metadata: Any) -> None:
    """Save a model checkpoint with optional scalar metadata.

    Metadata values (e.g. ``epoch=10, run_id="cq-c"``) may be ints,
    floats, strings, bools, or None; they are stored as JSON under a
    reserved key and returned separately by :func:`load_checkpoint`
    with their types preserved (``epoch=10`` comes back as ``int``).
    """
    state = dict(model.state_dict())
    if _META_JSON_KEY in state:
        raise ValueError(
            f"model state uses the reserved key {_META_JSON_KEY!r}"
        )
    for key, value in metadata.items():
        _check_metadata_value(key, value)
        if f"{_META_PREFIX}{key}" in state:
            raise ValueError(f"metadata key collides with parameter: {key}")
    if metadata:
        payload = json.dumps(
            {key: _json_scalar(value) for key, value in metadata.items()}
        )
        state[_META_JSON_KEY] = np.array(payload)
    save_state(state, path)


def load_checkpoint(model: Module, path: str) -> Dict[str, Any]:
    """Load a checkpoint into ``model``; returns the metadata dict.

    Reads both the current JSON metadata format and the legacy format
    that stored every value as a float array.
    """
    state = load_state(path)
    metadata: Dict[str, Any] = {}
    json_blob = state.pop(_META_JSON_KEY, None)
    if json_blob is not None:
        metadata.update(json.loads(str(json_blob)))
    model_state = {}
    for key, value in state.items():
        if key.startswith(_META_PREFIX):
            # Legacy checkpoints stored metadata as scalar float arrays.
            metadata.setdefault(key[len(_META_PREFIX):], float(value))
        else:
            model_state[key] = value
    model.load_state_dict(model_state)
    return metadata


def pack_state(tree: Any) -> Dict[str, np.ndarray]:
    """Flatten a nested state tree into an npz-ready mapping.

    The tree may nest dicts (string keys) and lists/tuples, with numpy
    arrays and JSON scalars (int/float/str/bool/None) at the leaves.
    Tuples are returned as lists by :func:`unpack_state`.
    """
    arrays: List[np.ndarray] = []

    def encode(node: Any) -> Any:
        if isinstance(node, np.ndarray):
            arrays.append(node)
            return {_ARRAY_MARKER: len(arrays) - 1}
        if isinstance(node, dict):
            out = {}
            for key, value in node.items():
                if not isinstance(key, str):
                    raise TypeError(
                        f"state tree keys must be strings, got "
                        f"{type(key).__name__}: {key!r}"
                    )
                if key == _ARRAY_MARKER:
                    raise ValueError(
                        f"state tree uses the reserved key {_ARRAY_MARKER!r}"
                    )
                out[key] = encode(value)
            return out
        if isinstance(node, (list, tuple)):
            return [encode(item) for item in node]
        scalar = _json_scalar(node)
        if scalar is None or isinstance(scalar, (bool, int, float, str)):
            return scalar
        raise TypeError(
            f"state tree leaves must be arrays or JSON scalars, got "
            f"{type(node).__name__}"
        )

    skeleton = {"format": PACK_FORMAT_VERSION, "tree": encode(tree)}
    packed: Dict[str, np.ndarray] = {
        _TREE_KEY: np.array(json.dumps(skeleton))
    }
    for i, array in enumerate(arrays):
        packed[f"{_ARRAY_PREFIX}{i}"] = np.asarray(array)
    return packed


def unpack_state(mapping: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`pack_state` (accepts a dict or an open NpzFile)."""
    if _TREE_KEY not in mapping:
        raise ValueError(
            f"not a packed state tree: missing {_TREE_KEY!r} entry"
        )
    skeleton = json.loads(str(mapping[_TREE_KEY][()]))
    version = skeleton.get("format")
    if version != PACK_FORMAT_VERSION:
        raise ValueError(
            f"unsupported packed state format {version!r} "
            f"(expected {PACK_FORMAT_VERSION})"
        )

    def decode(node: Any) -> Any:
        if isinstance(node, dict):
            if set(node) == {_ARRAY_MARKER}:
                index = node[_ARRAY_MARKER]
                key = f"{_ARRAY_PREFIX}{index}"
                if key not in mapping:
                    raise ValueError(f"packed state missing array entry {key}")
                return np.array(mapping[key], copy=True)
            return {key: decode(value) for key, value in node.items()}
        if isinstance(node, list):
            return [decode(item) for item in node]
        return node

    return decode(skeleton["tree"])
