"""Checkpoint serialization: state dicts to/from ``.npz`` files."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_checkpoint", "load_checkpoint"]

_META_PREFIX = "__meta__"


def save_state(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (.npz, compressed)."""
    if not state:
        raise ValueError("refusing to save an empty state dict")
    np.savez_compressed(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_checkpoint(model: Module, path: str, **metadata: float) -> None:
    """Save a model checkpoint with optional scalar metadata.

    Metadata values (e.g. ``epoch=10, loss=1.5``) are stored under reserved
    keys and returned separately by :func:`load_checkpoint`.
    """
    state = dict(model.state_dict())
    for key, value in metadata.items():
        meta_key = f"{_META_PREFIX}{key}"
        if meta_key in state:
            raise ValueError(f"metadata key collides with parameter: {key}")
        state[meta_key] = np.asarray(float(value))
    save_state(state, path)


def load_checkpoint(model: Module, path: str) -> Dict[str, float]:
    """Load a checkpoint into ``model``; returns the scalar metadata."""
    state = load_state(path)
    metadata = {
        key[len(_META_PREFIX):]: float(value)
        for key, value in state.items()
        if key.startswith(_META_PREFIX)
    }
    model_state = {
        key: value for key, value in state.items()
        if not key.startswith(_META_PREFIX)
    }
    model.load_state_dict(model_state)
    return metadata
