"""Supervised loss functions."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor, as_tensor

__all__ = ["cross_entropy", "mse_loss", "l1_loss", "nll_loss", "bce_with_logits"]


def cross_entropy(logits, targets, reduction: str = "mean"):
    """Softmax cross-entropy with integer class targets.

    Parameters
    ----------
    logits:
        (N, C) unnormalised scores.
    targets:
        (N,) integer class indices (numpy array or Tensor).
    """
    logits = as_tensor(logits)
    log_probs = F.log_softmax(logits, axis=-1)
    return nll_loss(log_probs, targets, reduction=reduction)


def nll_loss(log_probs, targets, reduction: str = "mean"):
    """Negative log-likelihood on precomputed log-probabilities."""
    log_probs = as_tensor(log_probs)
    target_idx = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets
    ).astype(np.int64)
    n = log_probs.shape[0]
    if target_idx.shape != (n,):
        raise ValueError(
            f"targets must be shape ({n},), got {target_idx.shape}"
        )
    picked = log_probs[np.arange(n), target_idx]
    return _reduce(-picked, reduction)


def mse_loss(prediction, target, reduction: str = "mean"):
    """Mean-squared error."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    return _reduce(diff * diff, reduction)


def l1_loss(prediction, target, reduction: str = "mean"):
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return _reduce(F.abs(prediction - target), reduction)


def bce_with_logits(logits, targets, reduction: str = "mean"):
    """Numerically stable binary cross-entropy on logits.

    Uses ``max(x, 0) - x*t + log(1 + exp(-|x|))``.
    """
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    relu_x = F.relu(logits)
    loss = relu_x - logits * targets + F.log(1.0 + F.exp(-F.abs(logits)))
    return _reduce(loss, reduction)


def _reduce(values, reduction: str):
    if reduction == "mean":
        return F.mean(values)
    if reduction == "sum":
        return F.sum(values)
    if reduction == "none":
        return values
    raise ValueError(f"unknown reduction {reduction!r}")
