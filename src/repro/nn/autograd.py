"""Reverse-mode automatic differentiation engine.

This module provides the two building blocks of the autograd system:

- :class:`Function` — the base class for differentiable operations.  Each
  operation subclasses it, implements ``forward`` (on raw numpy arrays) and
  ``backward`` (mapping the upstream gradient to per-input gradients), and is
  invoked through :meth:`Function.apply`, which records the graph edge.
- the backward engine — :func:`backward` walks the recorded graph in reverse
  topological order and accumulates gradients into ``Tensor.grad``.

Gradient recording can be suspended with :func:`no_grad` (used by evaluation
loops and optimizer updates) or queried with :func:`is_grad_enabled`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Function",
    "backward",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "unbroadcast",
]


class _GradMode(threading.local):
    """Thread-local flag controlling whether operations record the graph."""

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


class _TraceState(threading.local):
    """Thread-local slot for the active :mod:`repro.engine` tracer.

    ``Function.apply`` checks this slot on every call; when a tracer is
    installed it receives ``(cls, ctx, inputs, kwargs, out)`` for each op.
    The check is a single attribute read so the eager path pays nothing
    measurable when no trace is running.
    """

    def __init__(self) -> None:
        self.tracer = None


_trace_state = _TraceState()


def _set_tracer(tracer) -> None:
    """Install (or clear, with None) the active tracer for this thread."""
    _trace_state.tracer = tracer


def _active_tracer():
    return _trace_state.tracer


def is_grad_enabled() -> bool:
    """Return True when operations currently record the autograd graph."""
    return _grad_mode.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording within its block."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables graph recording within its block."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = True
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Broadcasting during the forward pass implicitly replicates the smaller
    operand; the chain rule therefore requires summing the upstream gradient
    over every broadcast dimension.
    """
    if grad.shape == tuple(shape):
        return grad
    # Sum away leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Base class for differentiable operations.

    Subclasses implement ``forward(self, *arrays, **kwargs) -> ndarray`` and
    ``backward(self, grad_output) -> tuple`` returning one gradient array (or
    ``None``) per tensor input, in order.  Use :meth:`apply` to invoke.
    """

    def __init__(self) -> None:
        self.parents: Tuple[Any, ...] = ()
        self.needs_input_grad: Tuple[bool, ...] = ()

    # -- to be provided by subclasses -------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        raise NotImplementedError

    # -- graph construction -------------------------------------------------
    @classmethod
    def apply(cls, *inputs: Any, **kwargs: Any):
        """Run the op, wrapping the result in a Tensor linked to its inputs.

        ``inputs`` may mix Tensors and plain arrays/scalars; only Tensor
        inputs participate in gradient flow.
        """
        from .tensor import Tensor  # local import avoids a cycle

        ctx = cls()
        tensor_inputs = tuple(x for x in inputs if isinstance(x, Tensor))
        raw = tuple(x.data if isinstance(x, Tensor) else x for x in inputs)
        out_data = ctx.forward(*raw, **kwargs)

        requires_grad = is_grad_enabled() and any(
            t.requires_grad for t in tensor_inputs
        )
        # Preserve the op's output dtype: the float32 default only applies
        # to user-constructed tensors, not to intermediate graph nodes
        # (float64 inputs must stay float64 for gradient checking).
        out = Tensor(out_data, requires_grad=requires_grad, dtype=out_data.dtype)
        if requires_grad:
            ctx.parents = tensor_inputs
            ctx.needs_input_grad = tuple(t.requires_grad for t in tensor_inputs)
            out._ctx = ctx
        tracer = _trace_state.tracer
        if tracer is not None:
            tracer.record(cls, ctx, inputs, kwargs, out)
        return out


def _topological_order(root) -> List[Any]:
    """Return tensors reachable from ``root`` in reverse-usable topo order."""
    order: List[Any] = []
    visited = set()
    stack = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        if node._ctx is not None:
            for parent in node._ctx.parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
    return order


def backward(root, grad: Optional[np.ndarray] = None) -> None:
    """Backpropagate from ``root``, accumulating into ``Tensor.grad``.

    ``grad`` defaults to ones for scalar roots; non-scalar roots require an
    explicit upstream gradient, mirroring the usual autograd contract.
    """
    if not root.requires_grad:
        raise RuntimeError(
            "backward() called on a tensor that does not require grad"
        )
    if grad is None:
        if root.data.size != 1:
            raise RuntimeError(
                "grad must be provided for non-scalar outputs "
                f"(got shape {root.data.shape})"
            )
        grad = np.ones_like(root.data)
    grad = np.asarray(grad, dtype=root.data.dtype)

    grads = {id(root): grad}
    for node in reversed(_topological_order(root)):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        is_leaf = node._ctx is None
        if (node.requires_grad and is_leaf) or node._retain_grad:
            node.grad = node_grad if node.grad is None else node.grad + node_grad
        ctx = node._ctx
        if ctx is None:
            continue
        input_grads = ctx.backward(node_grad)
        if not isinstance(input_grads, (tuple, list)):
            input_grads = (input_grads,)
        if len(input_grads) != len(ctx.parents):
            raise RuntimeError(
                f"{type(ctx).__name__}.backward returned "
                f"{len(input_grads)} gradients for {len(ctx.parents)} inputs"
            )
        for parent, parent_grad, needs in zip(
            ctx.parents, input_grads, ctx.needs_input_grad
        ):
            if parent_grad is None or not needs:
                continue
            parent_grad = np.asarray(parent_grad)
            if parent_grad.shape != parent.data.shape:
                raise RuntimeError(
                    f"{type(ctx).__name__} produced gradient of shape "
                    f"{parent_grad.shape} for input of shape {parent.data.shape}"
                )
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + parent_grad
            else:
                grads[key] = parent_grad


def accumulate_parameter_grads(parameters: Iterable[Any]) -> None:
    """Ensure every parameter has a zero gradient buffer (test helper)."""
    for p in parameters:
        if p.grad is None:
            p.grad = np.zeros_like(p.data)
