"""Pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from .. import functional as F
from ..module import Module

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]

_IntPair = Union[int, Tuple[int, int]]


class MaxPool2d(Module):
    def __init__(
        self,
        kernel_size: _IntPair,
        stride: Optional[_IntPair] = None,
        padding: _IntPair = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x):
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(
        self,
        kernel_size: _IntPair,
        stride: Optional[_IntPair] = None,
        padding: _IntPair = 0,
    ) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x):
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    """Average each channel over its full spatial extent -> (N, C)."""

    def forward(self, x):
        return F.global_avg_pool2d(x)
