"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..rng import ensure_rng

__all__ = ["Linear"]


class Linear(Module):
    """Affine transform ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for weight init; a fresh default generator is used
        when omitted (non-reproducible — experiments always pass one).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got {in_features}x{out_features}"
            )
        rng = ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,)))
        else:
            self.bias = None

    def forward(self, x):
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )
