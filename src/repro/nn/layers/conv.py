"""2-D convolution layer."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..rng import ensure_rng

__all__ = ["Conv2d"]

_IntPair = Union[int, Tuple[int, int]]


def _pair(value: _IntPair) -> Tuple[int, int]:
    return (value, value) if isinstance(value, int) else tuple(value)


class Conv2d(Module):
    """Grouped 2-D convolution over NCHW input.

    ``groups == in_channels`` gives a depthwise convolution (MobileNetV2).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: _IntPair,
        stride: _IntPair = 1,
        padding: _IntPair = 0,
        groups: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}->{out_channels}) must be divisible "
                f"by groups={groups}"
            )
        rng = ensure_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = groups
        weight_shape = (out_channels, in_channels // groups) + self.kernel_size
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng))
        if bias:
            self.bias: Optional[Parameter] = Parameter(init.zeros((out_channels,)))
        else:
            self.bias = None

    def forward(self, x):
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, groups={self.groups})"
        )
