"""Container modules: Sequential, ModuleList, Identity."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..module import Module

__all__ = ["Sequential", "ModuleList", "Identity"]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """List of registered submodules (no implicit forward)."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._size = 0
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(self._size), module)
        self._size += 1
        return self

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, str(i)) for i in range(self._size))

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> Module:
        if isinstance(index, slice):
            return ModuleList(list(self)[index])
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for {self._size} modules")
        return getattr(self, str(index))


class Identity(Module):
    """Pass-through module (useful as a disabled-branch placeholder)."""

    def forward(self, x):
        return x
