"""Activation layers (thin Module wrappers over functional ops)."""

from __future__ import annotations

from .. import functional as F
from ..module import Module

__all__ = ["ReLU", "ReLU6", "LeakyReLU", "Sigmoid", "Tanh"]


class ReLU(Module):
    def forward(self, x):
        return F.relu(x)


class ReLU6(Module):
    """ReLU clamped at 6, as used throughout MobileNetV2."""

    def forward(self, x):
        return F.relu6(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x):
        return F.leaky_relu(x, self.negative_slope)


class Sigmoid(Module):
    def forward(self, x):
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x):
        return F.tanh(x)
