"""Dropout layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x):
        if self.training and self.p > 0.0 and self._rng is None:
            raise ValueError(
                "Dropout is active but was built without an rng; pass "
                "Dropout(p, rng=...) a managed np.random.Generator so "
                "checkpoint resume stays bit-exact"
            )
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
