"""Batch normalization layers (1-D and 2-D)."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["BatchNorm1d", "BatchNorm2d"]


class _BatchNorm(Module):
    """Shared batch-norm machinery; subclasses fix the reduction axes."""

    #: axes reduced to compute per-channel statistics
    _axes = (0,)
    #: broadcast shape builder for per-channel parameters
    _ndim = 2

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        affine: bool = True,
        track_running_stats: bool = True,
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        self.track_running_stats = track_running_stats
        if affine:
            self.weight = Parameter(np.ones(num_features, dtype=np.float32))
            self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        if track_running_stats:
            self.register_buffer(
                "running_mean", np.zeros(num_features, dtype=np.float32)
            )
            self.register_buffer(
                "running_var", np.ones(num_features, dtype=np.float32)
            )
            self.register_buffer("num_batches_tracked", np.array(0, dtype=np.int64))

    def _param_shape(self):
        shape = [1] * self._ndim
        shape[1] = self.num_features
        return tuple(shape)

    # -- folding hook --------------------------------------------------------
    @property
    def can_fold(self) -> bool:
        """Whether eval-mode output is an affine function of the input.

        Only then can the layer be absorbed into a preceding conv/linear
        (``repro.quant.fold``): it needs tracked running statistics, which
        replace the per-batch statistics at inference time.
        """
        return bool(self.track_running_stats)

    def fold_params(self):
        """Per-channel ``(scale, shift)`` of the eval-mode transform.

        ``y = scale * x + shift`` with ``scale = gamma / sqrt(var + eps)``
        and ``shift = beta - scale * mean`` (gamma=1, beta=0 when not
        affine).  Computed in float64 so folding into a float32 weight
        loses no precision beyond the final cast.
        """
        if not self.can_fold:
            raise ValueError(
                f"{type(self).__name__} tracks no running statistics; "
                f"its eval output is not an affine map and cannot be folded"
            )
        var = np.asarray(self.running_var, dtype=np.float64)
        mean = np.asarray(self.running_mean, dtype=np.float64)
        scale = 1.0 / np.sqrt(var + self.eps)
        if self.affine:
            scale = scale * np.asarray(self.weight.data, dtype=np.float64)
            shift = np.asarray(self.bias.data, dtype=np.float64) - scale * mean
        else:
            shift = -scale * mean
        return scale, shift

    def forward(self, x):
        shape = self._param_shape()
        if self.training or not self.track_running_stats:
            mean = F.mean(x, axis=self._axes, keepdims=True)
            centered = x - mean
            var = F.mean(centered * centered, axis=self._axes, keepdims=True)
            if self.track_running_stats:
                batch_mean = mean.data.reshape(-1)
                n = x.data.size / self.num_features
                unbiased = var.data.reshape(-1) * (n / max(n - 1.0, 1.0))
                m = self.momentum
                self.set_buffer(
                    "running_mean", (1 - m) * self.running_mean + m * batch_mean
                )
                self.set_buffer(
                    "running_var", (1 - m) * self.running_var + m * unbiased
                )
                self.set_buffer(
                    "num_batches_tracked", self.num_batches_tracked + 1
                )
            inv_std = (var + self.eps) ** -0.5
            out = centered * inv_std
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
            out = (x - mean) * ((var + self.eps) ** -0.5)
        if self.affine:
            out = out * F.reshape(self.weight, shape) + F.reshape(self.bias, shape)
        return out

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.num_features}, eps={self.eps}, "
            f"momentum={self.momentum}, affine={self.affine})"
        )


class BatchNorm1d(_BatchNorm):
    """Batch norm over (N, C) input."""

    _axes = (0,)
    _ndim = 2

    def forward(self, x):
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C) input, got {x.shape}")
        return super().forward(x)


class BatchNorm2d(_BatchNorm):
    """Batch norm over (N, C, H, W) input."""

    _axes = (0, 2, 3)
    _ndim = 4

    def forward(self, x):
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W) input, got {x.shape}")
        return super().forward(x)
