"""Neural-network layers built on the module system."""

from .activation import LeakyReLU, ReLU, ReLU6, Sigmoid, Tanh
from .container import Identity, ModuleList, Sequential
from .conv import Conv2d
from .dropout import Dropout
from .groupnorm import GroupNorm, LayerNorm
from .linear import Linear
from .norm import BatchNorm1d, BatchNorm2d
from .pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Sequential",
    "ModuleList",
    "Identity",
]
