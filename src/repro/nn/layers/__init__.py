"""Neural-network layers built on the module system."""

from .activation import LeakyReLU, ReLU, ReLU6, Sigmoid, Tanh
from .container import Identity, ModuleList, Sequential
from .conv import Conv2d
from .dropout import Dropout
from .groupnorm import GroupNorm, LayerNorm
from .linear import Linear
from .norm import BatchNorm1d, BatchNorm2d, _BatchNorm
from .pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d


def contains_batch_statistics(module) -> bool:
    """True if any submodule couples samples within a batch or consumes
    per-call randomness (BatchNorm statistics, Dropout masks).

    Such modules make a fused multi-sample forward numerically different
    from per-group forwards, so callers like the contrastive trainers'
    ``fuse_views`` path use this to fall back to separate forwards.
    """
    return any(
        isinstance(m, (_BatchNorm, Dropout)) for m in module.modules()
    )


__all__ = [
    "contains_batch_statistics",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Sequential",
    "ModuleList",
    "Identity",
]
