"""Group and layer normalization (batch-size-independent alternatives).

BatchNorm statistics degrade at the small batch sizes this CPU harness
favours; GroupNorm/LayerNorm normalize per sample and are provided as
substrate breadth for downstream users (they are not used by the paper's
reference architectures).
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module, Parameter

__all__ = ["GroupNorm", "LayerNorm"]


class GroupNorm(Module):
    """Normalize over channel groups and spatial dims of NCHW input."""

    def __init__(self, num_groups: int, num_channels: int,
                 eps: float = 1e-5, affine: bool = True) -> None:
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"{num_channels} channels not divisible by "
                f"{num_groups} groups"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_channels, dtype=np.float32))
            self.bias = Parameter(np.zeros(num_channels, dtype=np.float32))

    def forward(self, x):
        if x.ndim != 4:
            raise ValueError(f"GroupNorm expects NCHW input, got {x.shape}")
        n, c, h, w = x.shape
        if c != self.num_channels:
            raise ValueError(
                f"expected {self.num_channels} channels, got {c}"
            )
        grouped = F.reshape(x, (n, self.num_groups, -1))
        mean = F.mean(grouped, axis=2, keepdims=True)
        centered = grouped - mean
        var = F.mean(centered * centered, axis=2, keepdims=True)
        normalized = centered * ((var + self.eps) ** -0.5)
        out = F.reshape(normalized, (n, c, h, w))
        if self.affine:
            shape = (1, c, 1, 1)
            out = out * F.reshape(self.weight, shape) + F.reshape(
                self.bias, shape
            )
        return out

    def __repr__(self) -> str:
        return (
            f"GroupNorm({self.num_groups}, {self.num_channels}, "
            f"eps={self.eps})"
        )


class LayerNorm(Module):
    """Normalize over the last dimension of (N, ..., D) input."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5,
                 affine: bool = True) -> None:
        super().__init__()
        if normalized_dim <= 0:
            raise ValueError(
                f"normalized_dim must be positive, got {normalized_dim}"
            )
        self.normalized_dim = normalized_dim
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(normalized_dim,
                                            dtype=np.float32))
            self.bias = Parameter(np.zeros(normalized_dim,
                                           dtype=np.float32))

    def forward(self, x):
        if x.shape[-1] != self.normalized_dim:
            raise ValueError(
                f"expected last dim {self.normalized_dim}, got {x.shape}"
            )
        mean = F.mean(x, axis=-1, keepdims=True)
        centered = x - mean
        var = F.mean(centered * centered, axis=-1, keepdims=True)
        out = centered * ((var + self.eps) ** -0.5)
        if self.affine:
            out = out * self.weight + self.bias
        return out

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_dim}, eps={self.eps})"
