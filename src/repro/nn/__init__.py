"""``repro.nn`` — a compact numpy-based deep-learning substrate.

Provides reverse-mode autograd (:mod:`tensor`, :mod:`autograd`), layers,
optimizers, schedulers, and losses.  It substitutes for PyTorch in this
reproduction: the Contrastive Quant training pipelines only require
differentiable encoders with fake quantization in the forward pass, which
this package supplies end to end.
"""

from . import functional, init, losses, optim
from .autograd import enable_grad, is_grad_enabled, no_grad
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    GlobalAvgPool2d,
    GroupNorm,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ModuleList,
    ReLU,
    ReLU6,
    Sequential,
    Sigmoid,
    Tanh,
    contains_batch_statistics,
)
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "Module",
    "Parameter",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "losses",
    "optim",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Sequential",
    "ModuleList",
    "Identity",
    "contains_batch_statistics",
]
