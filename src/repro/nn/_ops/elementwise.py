"""Elementwise differentiable operations (arithmetic and pointwise maps)."""

from __future__ import annotations

import numpy as np

from ..autograd import Function, unbroadcast


class Add(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return a + b

    def backward(self, grad):
        grads = []
        if self.needs_input_grad and self.needs_input_grad[0]:
            grads.append(unbroadcast(grad, self.a_shape))
        else:
            grads.append(None)
        if len(self.parents) > 1:
            if self.needs_input_grad[1]:
                grads.append(unbroadcast(grad, self.b_shape))
            else:
                grads.append(None)
        return tuple(grads)


class Sub(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return a - b

    def backward(self, grad):
        grads = [unbroadcast(grad, self.a_shape)]
        if len(self.parents) > 1:
            grads.append(unbroadcast(-grad, self.b_shape))
        return tuple(grads)


class RSub(Function):
    """scalar - tensor (the tensor is the only differentiable input)."""

    def forward(self, a, scalar):
        self.a_shape = np.shape(a)
        return scalar - a

    def backward(self, grad):
        return (unbroadcast(-grad, self.a_shape),)


class Mul(Function):
    def forward(self, a, b):
        self.a, self.b = a, b
        return a * b

    def backward(self, grad):
        grads = [unbroadcast(grad * self.b, np.shape(self.a))]
        if len(self.parents) > 1:
            grads.append(unbroadcast(grad * self.a, np.shape(self.b)))
        return tuple(grads)


class Div(Function):
    def forward(self, a, b):
        self.a, self.b = a, b
        return a / b

    def backward(self, grad):
        grads = [unbroadcast(grad / self.b, np.shape(self.a))]
        if len(self.parents) > 1:
            grads.append(
                unbroadcast(-grad * self.a / (self.b * self.b), np.shape(self.b))
            )
        return tuple(grads)


class RDiv(Function):
    """scalar / tensor."""

    def forward(self, a, scalar):
        self.a, self.scalar = a, scalar
        return scalar / a

    def backward(self, grad):
        return (unbroadcast(-grad * self.scalar / (self.a * self.a), np.shape(self.a)),)


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad):
        return (-grad,)


class Pow(Function):
    """tensor ** exponent for a constant scalar exponent."""

    def forward(self, a, exponent):
        self.a, self.exponent = a, exponent
        return a ** exponent

    def backward(self, grad):
        return (grad * self.exponent * self.a ** (self.exponent - 1),)


class Exp(Function):
    def forward(self, a):
        self.out = np.exp(a)
        return self.out

    def backward(self, grad):
        return (grad * self.out,)


class Log(Function):
    def forward(self, a):
        self.a = a
        return np.log(a)

    def backward(self, grad):
        return (grad / self.a,)


class Sqrt(Function):
    def forward(self, a):
        self.out = np.sqrt(a)
        return self.out

    def backward(self, grad):
        return (grad / (2.0 * self.out),)


class Abs(Function):
    def forward(self, a):
        self.sign = np.sign(a)
        return np.abs(a)

    def backward(self, grad):
        return (grad * self.sign,)


class Clip(Function):
    """Clamp; gradients flow only through the un-clipped region."""

    def forward(self, a, low, high):
        self.mask = (a >= low) & (a <= high)
        return np.clip(a, low, high)

    def backward(self, grad):
        return (grad * self.mask,)


class Maximum(Function):
    """Elementwise maximum of two tensors (ties split evenly)."""

    def forward(self, a, b):
        self.a, self.b = a, b
        return np.maximum(a, b)

    def backward(self, grad):
        a_wins = self.a > self.b
        tie = self.a == self.b
        ga = grad * (a_wins + 0.5 * tie)
        gb = grad * (~a_wins & ~tie) + grad * 0.5 * tie
        grads = [unbroadcast(ga, np.shape(self.a))]
        if len(self.parents) > 1:
            grads.append(unbroadcast(gb, np.shape(self.b)))
        return tuple(grads)


class Identity(Function):
    def forward(self, a):
        return np.array(a, copy=True)

    def backward(self, grad):
        return (grad,)


class Relu(Function):
    def forward(self, a):
        self.mask = a > 0
        return a * self.mask

    def backward(self, grad):
        return (grad * self.mask,)


class Relu6(Function):
    def forward(self, a):
        self.mask = (a > 0) & (a < 6.0)
        return np.clip(a, 0.0, 6.0)

    def backward(self, grad):
        return (grad * self.mask,)


class LeakyRelu(Function):
    def forward(self, a, negative_slope=0.01):
        self.mask = a > 0
        self.negative_slope = negative_slope
        return np.where(self.mask, a, negative_slope * a)

    def backward(self, grad):
        return (np.where(self.mask, grad, self.negative_slope * grad),)


class Sigmoid(Function):
    def forward(self, a):
        self.out = 1.0 / (1.0 + np.exp(-a))
        return self.out

    def backward(self, grad):
        return (grad * self.out * (1.0 - self.out),)


class Tanh(Function):
    def forward(self, a):
        self.out = np.tanh(a)
        return self.out

    def backward(self, grad):
        return (grad * (1.0 - self.out * self.out),)
