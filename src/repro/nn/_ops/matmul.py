"""Matrix-multiplication operations."""

from __future__ import annotations

import numpy as np

from ..autograd import Function, unbroadcast


class MatMul(Function):
    """Matrix product supporting 2-D and batched (stacked) operands."""

    def forward(self, a, b):
        self.a, self.b = a, b
        return a @ b

    def backward(self, grad):
        a, b = self.a, self.b
        if a.ndim == 1:
            grad_a = grad @ np.swapaxes(b, -1, -2) if b.ndim > 1 else grad * b
        else:
            b_t = np.swapaxes(b, -1, -2) if b.ndim > 1 else b[None, :]
            grad_a = grad @ b_t if b.ndim > 1 else np.outer(grad, b)
        if b.ndim == 1:
            grad_b = np.swapaxes(a, -1, -2) @ grad if a.ndim > 1 else grad * a
        else:
            a_t = np.swapaxes(a, -1, -2) if a.ndim > 1 else a[:, None]
            grad_b = a_t @ grad
        grads = [unbroadcast(np.asarray(grad_a), a.shape)]
        if len(self.parents) > 1:
            grads.append(unbroadcast(np.asarray(grad_b), b.shape))
        return tuple(grads)


class Linear(Function):
    """Fused affine map ``x @ W.T + b`` used by the Linear layer.

    Fusing the bias addition keeps one graph node per layer, which matters
    for the deep CIFAR ResNets (hundreds of layers) on this CPU-only stack.
    """

    def forward(self, x, weight, bias=None):
        self.x, self.weight = x, weight
        self.has_bias = bias is not None
        out = x @ weight.T
        if bias is not None:
            out = out + bias
        return out

    def backward(self, grad):
        grad_x = grad @ self.weight
        grad_w = grad.reshape(-1, grad.shape[-1]).T @ self.x.reshape(
            -1, self.x.shape[-1]
        )
        grads = [grad_x, grad_w]
        if self.has_bias:
            grads.append(grad.reshape(-1, grad.shape[-1]).sum(axis=0))
        return tuple(grads[: len(self.parents)])
