"""Shape-manipulation operations (reshape, transpose, slicing, concat, pad)."""

from __future__ import annotations

import numpy as np

from ..autograd import Function


class Reshape(Function):
    def forward(self, a, shape):
        self.in_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad):
        return (grad.reshape(self.in_shape),)


class Transpose(Function):
    """Axis permutation (numpy ``transpose`` semantics)."""

    def forward(self, a, axes=None):
        self.axes = tuple(axes) if axes is not None else tuple(
            reversed(range(a.ndim))
        )
        return np.transpose(a, self.axes)

    def backward(self, grad):
        inverse = np.argsort(self.axes)
        return (np.transpose(grad, inverse),)


class GetItem(Function):
    """Basic and advanced indexing; backward scatters with accumulation."""

    def forward(self, a, index):
        self.in_shape = a.shape
        self.index = index
        return a[index]

    def backward(self, grad):
        out = np.zeros(self.in_shape, dtype=grad.dtype)
        np.add.at(out, self.index, grad)
        return (out,)


class Concat(Function):
    """Concatenate tensors along ``axis``."""

    def forward(self, *arrays, axis=0):
        self.axis = axis
        self.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad):
        splits = np.cumsum(self.sizes)[:-1]
        return tuple(np.split(grad, splits, axis=self.axis))


class Stack(Function):
    """Stack tensors along a new axis."""

    def forward(self, *arrays, axis=0):
        self.axis = axis
        return np.stack(arrays, axis=axis)

    def backward(self, grad):
        parts = np.split(grad, grad.shape[self.axis], axis=self.axis)
        return tuple(np.squeeze(p, axis=self.axis) for p in parts)


class Pad(Function):
    """Zero padding with numpy ``pad_width`` semantics."""

    def forward(self, a, pad_width):
        self.pad_width = pad_width
        return np.pad(a, pad_width, mode="constant")

    def backward(self, grad):
        slices = tuple(
            slice(before, grad.shape[i] - after)
            for i, (before, after) in enumerate(self.pad_width)
        )
        return (grad[slices],)


class BroadcastTo(Function):
    def forward(self, a, shape):
        self.in_shape = a.shape
        return np.broadcast_to(a, shape).copy()

    def backward(self, grad):
        from ..autograd import unbroadcast

        return (unbroadcast(grad, self.in_shape),)
