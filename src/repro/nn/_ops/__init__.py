"""Internal differentiable-operation implementations.

Each submodule defines :class:`~repro.nn.autograd.Function` subclasses for a
family of operations.  The public entry points live in
:mod:`repro.nn.functional`; client code should not import from here.
"""
