"""Fused elementwise chains used by the tracing engine's plan compiler.

Each fused op composes the *exact* arithmetic of its constituent ops in
their original order — fusion here means one graph node (one dispatch,
no intermediate Tensor, reusable scratch) rather than a new arithmetic
kernel, which is what keeps replayed plans byte-identical to eager
execution.  The backward methods replay the constituent backward
formulas verbatim, innermost-last, so gradient bytes match too.

These are registered alongside the primitives so they can also be used
directly (they are ordinary :class:`Function` subclasses); the engine's
fusion pass only substitutes them where the interior value has a single
consumer and is not itself a requested output.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Function, unbroadcast

__all__ = ["FusedMulAdd", "FusedAddRelu", "FusedMulAddRelu"]


class FusedMulAdd(Function):
    """``(a * b) + c`` — the norm/affine tail (scale then shift)."""

    def forward(self, a, b, c):
        self.a, self.b = a, b
        mul = a * b
        self.mul_shape = mul.shape
        self.c_shape = np.shape(c)
        return mul + c

    def backward(self, grad):
        # Add.backward first (outermost), then Mul.backward — the same
        # formulas eager runs at the two original schedule positions.
        g_mul = unbroadcast(grad, self.mul_shape)
        grads = [
            unbroadcast(g_mul * self.b, np.shape(self.a)),
            unbroadcast(g_mul * self.a, np.shape(self.b)),
            unbroadcast(grad, self.c_shape),
        ]
        return tuple(grads[: len(self.parents)])


class FusedAddRelu(Function):
    """``relu(a + b)`` — residual-join + activation."""

    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        s = a + b
        self.mask = s > 0
        return s * self.mask

    def backward(self, grad):
        g = grad * self.mask
        grads = [unbroadcast(g, self.a_shape)]
        if len(self.parents) > 1:
            grads.append(unbroadcast(g, self.b_shape))
        return tuple(grads)


class FusedMulAddRelu(Function):
    """``relu((a * b) + c)`` — affine tail feeding an activation."""

    def forward(self, a, b, c):
        self.a, self.b = a, b
        mul = a * b
        self.mul_shape = mul.shape
        self.c_shape = np.shape(c)
        s = mul + c
        self.mask = s > 0
        return s * self.mask

    def backward(self, grad):
        g = grad * self.mask
        g_mul = unbroadcast(g, self.mul_shape)
        grads = [
            unbroadcast(g_mul * self.b, np.shape(self.a)),
            unbroadcast(g_mul * self.a, np.shape(self.b)),
            unbroadcast(g, self.c_shape),
        ]
        return tuple(grads[: len(self.parents)])
