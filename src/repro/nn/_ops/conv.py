"""2-D convolution via im2col, with stride, padding, and groups support.

Groups are handled fully vectorised: the im2col buffer is laid out as
``(N, groups, C_in/groups * kh * kw, OH * OW)`` and contracted against the
weight viewed as ``(groups, C_out/groups, C_in/groups * kh * kw)`` with a
single batched matmul.  Depthwise convolution (MobileNetV2) is therefore as
fast as a grouped GEMM rather than a Python loop over channels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..autograd import Function


def conv2d_output_shape(
    in_size: Tuple[int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[int, int]:
    """Spatial output size of a conv/pool with the given geometry."""
    oh = (in_size[0] + 2 * padding[0] - kernel_size[0]) // stride[0] + 1
    ow = (in_size[1] + 2 * padding[1] - kernel_size[1]) // stride[1] + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"convolution output would be empty: input {in_size}, "
            f"kernel {kernel_size}, stride {stride}, padding {padding}"
        )
    return oh, ow


def _im2col(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """Return patches of shape (N, C, kh, kw, OH, OW) from padded input."""
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]  # (N, C, OH, OW, kh, kw)
    return np.ascontiguousarray(windows.transpose(0, 1, 4, 5, 2, 3))


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, ...],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
) -> np.ndarray:
    """Scatter-add patches (N, C, kh, kw, OH, OW) back to (N, C, H, W)."""
    n, c, h, w = x_shape
    out = np.zeros((n, c, h, w), dtype=cols.dtype)
    oh, ow = cols.shape[4], cols.shape[5]
    for i in range(kh):
        h_end = i + sh * oh
        for j in range(kw):
            w_end = j + sw * ow
            out[:, :, i:h_end:sh, j:w_end:sw] += cols[:, :, i, j]
    return out


class Conv2d(Function):
    """Grouped 2-D cross-correlation (deep-learning ``conv``)."""

    def forward(self, x, weight, bias=None, stride=(1, 1), padding=(0, 0), groups=1):
        self.stride, self.padding, self.groups = stride, padding, groups
        self.has_bias = bias is not None
        self.x_shape = x.shape
        n, c_in, h, w = x.shape
        c_out, c_in_g, kh, kw = weight.shape
        if c_in != c_in_g * groups:
            raise ValueError(
                f"input channels {c_in} incompatible with weight "
                f"{weight.shape} and groups={groups}"
            )
        ph, pw = padding
        if ph or pw:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
        self.padded_shape = x.shape
        oh, ow = conv2d_output_shape((h, w), (kh, kw), stride, padding)

        cols = _im2col(x, kh, kw, *stride)  # (N, C_in, kh, kw, OH, OW)
        cols = cols.reshape(n, groups, c_in_g * kh * kw, oh * ow)
        w_mat = weight.reshape(groups, c_out // groups, c_in_g * kh * kw)
        # (N, g, C_out/g, OH*OW)
        out = np.matmul(w_mat[None], cols)
        out = out.reshape(n, c_out, oh, ow)
        if bias is not None:
            # In place: `out` is freshly allocated by the matmul above, so
            # adding the bias into it avoids a second (N, C, OH, OW) buffer.
            out += bias.reshape(1, c_out, 1, 1)
        self.cols = cols
        self.weight = weight
        return out

    def backward(self, grad):
        n, c_out, oh, ow = grad.shape
        groups = self.groups
        c_out_g = c_out // groups
        kh, kw = self.weight.shape[2], self.weight.shape[3]
        c_in_g = self.weight.shape[1]
        sh, sw = self.stride
        ph, pw = self.padding

        grad_mat = grad.reshape(n, groups, c_out_g, oh * ow)

        # dL/dW: contract over batch and spatial positions.
        grad_w = np.einsum("ngop,ngkp->gok", grad_mat, self.cols)
        grad_w = grad_w.reshape(self.weight.shape)

        # dL/dcols -> dL/dx via col2im.
        w_mat = self.weight.reshape(groups, c_out_g, c_in_g * kh * kw)
        grad_cols = np.matmul(np.swapaxes(w_mat, 1, 2)[None], grad_mat)
        grad_cols = grad_cols.reshape(n, groups * c_in_g, kh, kw, oh, ow)
        grad_x_padded = _col2im(
            grad_cols, self.padded_shape, kh, kw, sh, sw
        )
        if ph or pw:
            h, w = self.x_shape[2], self.x_shape[3]
            grad_x = grad_x_padded[:, :, ph : ph + h, pw : pw + w]
        else:
            grad_x = grad_x_padded

        grads = [grad_x, grad_w]
        if self.has_bias:
            grads.append(grad.sum(axis=(0, 2, 3)))
        # The im2col buffer is the largest saved activation on deep models
        # (C_in * kh * kw * OH * OW floats per image); the engine calls
        # backward once per node, so drop it as soon as the grads exist.
        self.cols = None
        return tuple(grads[: len(self.parents)])
