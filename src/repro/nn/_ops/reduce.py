"""Reduction operations (sum, mean, max, logsumexp)."""

from __future__ import annotations

import numpy as np

from ..autograd import Function


def _normalize_axis(axis, ndim):
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _expand_for_broadcast(grad, in_shape, axes, keepdims):
    """Reshape a reduced gradient so it broadcasts back to ``in_shape``."""
    if not keepdims:
        shape = list(in_shape)
        for a in axes:
            shape[a] = 1
        grad = grad.reshape(shape)
    return grad


class Sum(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.in_shape = a.shape
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        return a.sum(axis=self.axes, keepdims=keepdims)

    def backward(self, grad):
        grad = _expand_for_broadcast(grad, self.in_shape, self.axes, self.keepdims)
        return (np.broadcast_to(grad, self.in_shape).copy(),)


class Mean(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.in_shape = a.shape
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        self.count = int(np.prod([a.shape[ax] for ax in self.axes]))
        return a.mean(axis=self.axes, keepdims=keepdims)

    def backward(self, grad):
        grad = _expand_for_broadcast(grad, self.in_shape, self.axes, self.keepdims)
        return (np.broadcast_to(grad / self.count, self.in_shape).copy(),)


class Max(Function):
    """Max reduction; gradient flows to the (first) maximal elements."""

    def forward(self, a, axis=None, keepdims=False):
        self.a = a
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        self.out = a.max(axis=self.axes, keepdims=True)
        return self.out if keepdims else np.squeeze(self.out, axis=self.axes)

    def backward(self, grad):
        grad = _expand_for_broadcast(grad, self.a.shape, self.axes, self.keepdims)
        mask = self.a == self.out
        counts = mask.sum(axis=self.axes, keepdims=True)
        return (np.broadcast_to(grad, self.a.shape) * mask / counts,)


class Min(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.a = a
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        self.out = a.min(axis=self.axes, keepdims=True)
        return self.out if keepdims else np.squeeze(self.out, axis=self.axes)

    def backward(self, grad):
        grad = _expand_for_broadcast(grad, self.a.shape, self.axes, self.keepdims)
        mask = self.a == self.out
        counts = mask.sum(axis=self.axes, keepdims=True)
        return (np.broadcast_to(grad, self.a.shape) * mask / counts,)


class LogSumExp(Function):
    """Numerically stable logsumexp reduction over ``axis``."""

    def forward(self, a, axis=-1, keepdims=False):
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        self.in_shape = a.shape
        a_max = a.max(axis=self.axes, keepdims=True)
        shifted = a - a_max
        sum_exp = np.exp(shifted).sum(axis=self.axes, keepdims=True)
        out = a_max + np.log(sum_exp)
        self.softmax = np.exp(shifted) / sum_exp
        return out if keepdims else np.squeeze(out, axis=self.axes)

    def backward(self, grad):
        grad = _expand_for_broadcast(grad, self.in_shape, self.axes, self.keepdims)
        return (np.broadcast_to(grad, self.in_shape) * self.softmax,)
