"""2-D pooling operations (max and average)."""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..autograd import Function
from .conv import conv2d_output_shape


def _pooled_windows(x, kernel, stride):
    """Return strided windows (N, C, OH, OW, kh, kw)."""
    kh, kw = kernel
    sh, sw = stride
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    return windows[:, :, ::sh, ::sw, :, :]


class MaxPool2d(Function):
    def forward(self, x, kernel_size=(2, 2), stride=None, padding=(0, 0)):
        stride = stride or kernel_size
        self.kernel, self.stride, self.padding = kernel_size, stride, padding
        self.x_shape = x.shape
        ph, pw = padding
        if ph or pw:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                mode="constant",
                constant_values=-np.inf,
            )
        self.padded_shape = x.shape
        windows = _pooled_windows(x, kernel_size, stride)
        n, c, oh, ow, kh, kw = windows.shape
        flat = windows.reshape(n, c, oh, ow, kh * kw)
        self.argmax = flat.argmax(axis=-1)
        return flat.max(axis=-1)

    def backward(self, grad):
        n, c, oh, ow = grad.shape
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        out = np.zeros(self.padded_shape, dtype=grad.dtype)
        # Scatter each pooled gradient to the argmax location of its window.
        idx_h = self.argmax // kw
        idx_w = self.argmax % kw
        n_idx, c_idx, oh_idx, ow_idx = np.indices((n, c, oh, ow))
        rows = oh_idx * sh + idx_h
        cols = ow_idx * sw + idx_w
        np.add.at(out, (n_idx, c_idx, rows, cols), grad)
        if ph or pw:
            h, w = self.x_shape[2], self.x_shape[3]
            out = out[:, :, ph : ph + h, pw : pw + w]
        return (out,)


class AvgPool2d(Function):
    def forward(self, x, kernel_size=(2, 2), stride=None, padding=(0, 0)):
        stride = stride or kernel_size
        self.kernel, self.stride, self.padding = kernel_size, stride, padding
        self.x_shape = x.shape
        ph, pw = padding
        if ph or pw:
            x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
        self.padded_shape = x.shape
        windows = _pooled_windows(x, kernel_size, stride)
        return windows.mean(axis=(-2, -1))

    def backward(self, grad):
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        oh, ow = grad.shape[2], grad.shape[3]
        out = np.zeros(self.padded_shape, dtype=grad.dtype)
        share = grad / (kh * kw)
        for i in range(kh):
            for j in range(kw):
                out[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += share
        if ph or pw:
            h, w = self.x_shape[2], self.x_shape[3]
            out = out[:, :, ph : ph + h, pw : pw + w]
        return (out,)
