"""Public functional API over the differentiable operations.

All functions accept :class:`~repro.nn.tensor.Tensor` inputs (scalars and
arrays are accepted where noted) and return Tensors wired into the autograd
graph.  Importing this module also installs the arithmetic operators on the
Tensor class.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ._ops import conv as _conv
from ._ops import elementwise as _ew
from ._ops import matmul as _mm
from ._ops import pool as _pool
from ._ops import reduce as _red
from ._ops import shape as _shape
from .tensor import Tensor, as_tensor

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt", "abs",
    "clip", "maximum", "identity", "relu", "relu6", "leaky_relu", "sigmoid",
    "tanh", "matmul", "linear", "sum", "mean", "max", "min", "logsumexp",
    "reshape", "flatten", "transpose", "getitem", "concat", "stack", "pad",
    "broadcast_to", "softmax", "log_softmax", "conv2d", "max_pool2d",
    "avg_pool2d", "global_avg_pool2d", "normalize", "cosine_similarity",
    "dropout", "squeeze", "unsqueeze",
]

_IntPair = Union[int, Tuple[int, int]]


def _pair(value: _IntPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return tuple(value)  # type: ignore[return-value]


# -- arithmetic -----------------------------------------------------------------

def add(a, b):
    return _ew.Add.apply(as_tensor(a), b)


def sub(a, b):
    return _ew.Sub.apply(as_tensor(a), b)


def mul(a, b):
    return _ew.Mul.apply(as_tensor(a), b)


def div(a, b):
    return _ew.Div.apply(as_tensor(a), b)


def neg(a):
    return _ew.Neg.apply(as_tensor(a))


def pow(a, exponent: float):  # noqa: A001 - mirrors framework naming
    return _ew.Pow.apply(as_tensor(a), exponent=exponent)


def exp(a):
    return _ew.Exp.apply(as_tensor(a))


def log(a):
    return _ew.Log.apply(as_tensor(a))


def sqrt(a):
    return _ew.Sqrt.apply(as_tensor(a))


def abs(a):  # noqa: A001 - mirrors framework naming
    return _ew.Abs.apply(as_tensor(a))


def clip(a, low: float, high: float):
    return _ew.Clip.apply(as_tensor(a), low=low, high=high)


def maximum(a, b):
    return _ew.Maximum.apply(as_tensor(a), b)


def identity(a):
    return _ew.Identity.apply(as_tensor(a))


# -- activations ------------------------------------------------------------------

def relu(a):
    return _ew.Relu.apply(as_tensor(a))


def relu6(a):
    return _ew.Relu6.apply(as_tensor(a))


def leaky_relu(a, negative_slope: float = 0.01):
    return _ew.LeakyRelu.apply(as_tensor(a), negative_slope=negative_slope)


def sigmoid(a):
    return _ew.Sigmoid.apply(as_tensor(a))


def tanh(a):
    return _ew.Tanh.apply(as_tensor(a))


# -- linear algebra -----------------------------------------------------------------

def matmul(a, b):
    return _mm.MatMul.apply(as_tensor(a), as_tensor(b))


def linear(x, weight, bias=None):
    """Affine map ``x @ weight.T + bias`` as a single fused graph node."""
    if bias is None:
        return _mm.Linear.apply(as_tensor(x), weight)
    return _mm.Linear.apply(as_tensor(x), weight, bias)


# -- reductions ----------------------------------------------------------------------

def sum(a, axis=None, keepdims: bool = False):  # noqa: A001
    return _red.Sum.apply(as_tensor(a), axis=axis, keepdims=keepdims)


def mean(a, axis=None, keepdims: bool = False):
    return _red.Mean.apply(as_tensor(a), axis=axis, keepdims=keepdims)


def max(a, axis=None, keepdims: bool = False):  # noqa: A001
    return _red.Max.apply(as_tensor(a), axis=axis, keepdims=keepdims)


def min(a, axis=None, keepdims: bool = False):  # noqa: A001
    return _red.Min.apply(as_tensor(a), axis=axis, keepdims=keepdims)


def logsumexp(a, axis=-1, keepdims: bool = False):
    return _red.LogSumExp.apply(as_tensor(a), axis=axis, keepdims=keepdims)


# -- shape -------------------------------------------------------------------------------

def reshape(a, shape: Sequence[int]):
    return _shape.Reshape.apply(as_tensor(a), shape=tuple(shape))


def flatten(a, start_dim: int = 1):
    t = as_tensor(a)
    lead = t.shape[:start_dim]
    return reshape(t, lead + (-1,))


def transpose(a, axes: Optional[Sequence[int]] = None):
    return _shape.Transpose.apply(as_tensor(a), axes=axes)


def getitem(a, index):
    return _shape.GetItem.apply(as_tensor(a), index=index)


def concat(tensors: Sequence[Tensor], axis: int = 0):
    return _shape.Concat.apply(*[as_tensor(t) for t in tensors], axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0):
    return _shape.Stack.apply(*[as_tensor(t) for t in tensors], axis=axis)


def pad(a, pad_width):
    return _shape.Pad.apply(as_tensor(a), pad_width=tuple(tuple(p) for p in pad_width))


def broadcast_to(a, shape: Sequence[int]):
    return _shape.BroadcastTo.apply(as_tensor(a), shape=tuple(shape))


def squeeze(a, axis: int):
    t = as_tensor(a)
    shape = list(t.shape)
    if shape[axis] != 1:
        raise ValueError(f"cannot squeeze axis {axis} of shape {t.shape}")
    del shape[axis]
    return reshape(t, shape)


def unsqueeze(a, axis: int):
    t = as_tensor(a)
    shape = list(t.shape)
    shape.insert(axis if axis >= 0 else axis + t.ndim + 1, 1)
    return reshape(t, shape)


# -- softmax family ---------------------------------------------------------------------

def log_softmax(a, axis: int = -1):
    t = as_tensor(a)
    return sub(t, logsumexp(t, axis=axis, keepdims=True))


def softmax(a, axis: int = -1):
    return exp(log_softmax(a, axis=axis))


# -- convolution / pooling -----------------------------------------------------------------

def conv2d(
    x,
    weight,
    bias=None,
    stride: _IntPair = 1,
    padding: _IntPair = 0,
    groups: int = 1,
):
    """Grouped 2-D convolution over NCHW input."""
    args = [as_tensor(x), weight] + ([] if bias is None else [bias])
    return _conv.Conv2d.apply(
        *args, stride=_pair(stride), padding=_pair(padding), groups=groups
    )


def max_pool2d(x, kernel_size: _IntPair, stride: Optional[_IntPair] = None,
               padding: _IntPair = 0):
    return _pool.MaxPool2d.apply(
        as_tensor(x),
        kernel_size=_pair(kernel_size),
        stride=_pair(stride) if stride is not None else None,
        padding=_pair(padding),
    )


def avg_pool2d(x, kernel_size: _IntPair, stride: Optional[_IntPair] = None,
               padding: _IntPair = 0):
    return _pool.AvgPool2d.apply(
        as_tensor(x),
        kernel_size=_pair(kernel_size),
        stride=_pair(stride) if stride is not None else None,
        padding=_pair(padding),
    )


def global_avg_pool2d(x):
    """Average over the spatial dimensions of NCHW input -> (N, C)."""
    return mean(as_tensor(x), axis=(2, 3))


# -- misc -----------------------------------------------------------------------------------

def normalize(a, axis: int = -1, eps: float = 1e-12):
    """L2-normalise along ``axis`` (as used by contrastive losses).

    ``eps`` sits inside the square root so the gradient stays finite even
    for all-zero rows (sqrt'(0) is infinite otherwise).
    """
    t = as_tensor(a)
    norm = sqrt(add(sum(mul(t, t), axis=axis, keepdims=True), eps))
    return div(t, norm)


def cosine_similarity(a, b, axis: int = -1):
    return sum(mul(normalize(a, axis=axis), normalize(b, axis=axis)), axis=axis)


def dropout(a, p: float, training: bool, rng: Optional[np.random.Generator] = None):
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return as_tensor(a)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if rng is None:
        # An ad-hoc generator here could never be captured by
        # checkpoint get_rng_state(), silently breaking bit-exact
        # resume — so demand a managed one instead of guessing.
        raise ValueError(
            "dropout requires an explicit np.random.Generator when "
            "active; pass the trainer's managed rng so resume stays "
            "bit-exact"
        )
    t = as_tensor(a)
    mask = (rng.random(t.shape) >= p).astype(t.dtype) / (1.0 - p)
    return mul(t, Tensor(mask))


# -- operator installation ---------------------------------------------------------------------

def _swap_scalar(op):
    def method(self, other):
        return op(self, other)

    return method


def _install_tensor_ops() -> None:
    Tensor.__add__ = lambda self, other: add(self, _unwrap(other))
    Tensor.__radd__ = lambda self, other: add(self, _unwrap(other))
    Tensor.__sub__ = lambda self, other: sub(self, _unwrap(other))
    Tensor.__rsub__ = lambda self, other: _ew.RSub.apply(self, scalar=_raw(other))
    Tensor.__mul__ = lambda self, other: mul(self, _unwrap(other))
    Tensor.__rmul__ = lambda self, other: mul(self, _unwrap(other))
    Tensor.__truediv__ = lambda self, other: div(self, _unwrap(other))
    Tensor.__rtruediv__ = lambda self, other: _ew.RDiv.apply(self, scalar=_raw(other))
    Tensor.__neg__ = lambda self: neg(self)
    Tensor.__pow__ = lambda self, e: pow(self, e)
    Tensor.__matmul__ = lambda self, other: matmul(self, other)
    Tensor.__getitem__ = lambda self, index: getitem(self, index)
    Tensor.sum = lambda self, axis=None, keepdims=False: sum(self, axis, keepdims)
    Tensor.mean = lambda self, axis=None, keepdims=False: mean(self, axis, keepdims)
    Tensor.max = lambda self, axis=None, keepdims=False: max(self, axis, keepdims)
    Tensor.min = lambda self, axis=None, keepdims=False: min(self, axis, keepdims)
    Tensor.reshape = lambda self, *shape: reshape(
        self, shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    )
    Tensor.flatten = lambda self, start_dim=1: flatten(self, start_dim)
    Tensor.transpose = lambda self, axes=None: transpose(self, axes)
    Tensor.exp = lambda self: exp(self)
    Tensor.log = lambda self: log(self)
    Tensor.sqrt = lambda self: sqrt(self)


def _unwrap(other):
    """Pass Tensors and scalars through; coerce sequences/arrays to arrays."""
    if isinstance(other, Tensor):
        return other
    if isinstance(other, (int, float, np.floating, np.integer)):
        return float(other)
    return np.asarray(other, dtype=np.float32)


def _raw(other):
    if isinstance(other, Tensor):
        return other.data
    return other


_install_tensor_ops()
