"""Learning-rate schedulers driving ``Optimizer.lr``."""

from __future__ import annotations

import math
from typing import Dict, Sequence

from .optimizer import Optimizer

__all__ = [
    "LRScheduler",
    "ConstantLR",
    "CosineAnnealingLR",
    "WarmupCosineLR",
    "StepLR",
    "MultiStepLR",
]


class LRScheduler:
    """Base scheduler: subclasses map an epoch index to a learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.last_epoch += 1
        lr = self.get_lr(self.last_epoch)
        self.optimizer.lr = lr
        return lr

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of the scheduler position (JSON-friendly)."""
        return {
            "type": type(self).__name__,
            "base_lr": float(self.base_lr),
            "last_epoch": int(self.last_epoch),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot; the next ``step()`` continues the schedule."""
        saved_type = state.get("type")
        if saved_type is not None and saved_type != type(self).__name__:
            raise ValueError(
                f"scheduler state is for {saved_type}, not "
                f"{type(self).__name__}"
            )
        self.base_lr = float(state["base_lr"])
        self.last_epoch = int(state["last_epoch"])
        if self.last_epoch >= 0:
            self.optimizer.lr = self.get_lr(self.last_epoch)


class ConstantLR(LRScheduler):
    def get_lr(self, epoch: int) -> float:
        return self.base_lr


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``t_max`` epochs.

    This is the fine-tuning schedule of the paper (initial LR 0.1, cosine).
    """

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class WarmupCosineLR(LRScheduler):
    """Linear warmup followed by cosine decay (SimCLR pre-training)."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_epochs: int,
        total_epochs: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if total_epochs <= warmup_epochs:
            raise ValueError(
                f"total_epochs ({total_epochs}) must exceed "
                f"warmup_epochs ({warmup_epochs})"
            )
        self.warmup_epochs = warmup_epochs
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        if self.warmup_epochs > 0 and epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        span = self.total_epochs - self.warmup_epochs
        progress = min(epoch - self.warmup_epochs, span) / span
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class MultiStepLR(LRScheduler):
    """Multiply the LR by ``gamma`` at each epoch in ``milestones``."""

    def __init__(
        self,
        optimizer: Optimizer,
        milestones: Sequence[int],
        gamma: float = 0.1,
    ) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = len([m for m in self.milestones if m <= epoch])
        return self.base_lr * self.gamma ** passed
