"""Optimizers and learning-rate schedulers."""

from .adam import Adam
from .clip import clip_grad_norm, global_grad_norm
from .lars import LARS
from .lr_scheduler import (
    ConstantLR,
    CosineAnnealingLR,
    LRScheduler,
    MultiStepLR,
    StepLR,
    WarmupCosineLR,
)
from .optimizer import Optimizer
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LARS",
    "LRScheduler",
    "ConstantLR",
    "CosineAnnealingLR",
    "WarmupCosineLR",
    "StepLR",
    "MultiStepLR",
    "clip_grad_norm",
    "global_grad_norm",
]
