"""Stochastic gradient descent with momentum, Nesterov, and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with (optionally Nesterov) momentum and decoupled-style L2 decay.

    This mirrors the fine-tuning optimizer from the paper's Sec. 4.1 (SGD,
    momentum 0.9, cosine decay from 0.1).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _slot_arrays(self):
        return {"velocity": self._velocity}

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad.astype(np.float32, copy=False)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                if self.nesterov:
                    grad = grad + self.momentum * self._velocity[i]
                else:
                    grad = self._velocity[i]
            param.data = param.data - self.lr * grad
        self.step_count += 1
