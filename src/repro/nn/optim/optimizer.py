"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping.

    Subclasses implement :meth:`step`, reading ``param.grad`` and updating
    ``param.data`` in place.  The learning rate is exposed as a mutable
    attribute so schedulers can drive it.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointing -----------------------------------------------------
    def _slot_arrays(self) -> Dict[str, List[np.ndarray]]:
        """Per-parameter state arrays (momentum buffers, moments, ...).

        Subclasses return ``{"slot_name": [array per parameter]}``; the
        lists must be the live buffers so :meth:`load_state_dict` can
        restore into them in place.
        """
        return {}

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of the optimizer's mutable state (JSON + arrays).

        The result round-trips through
        :func:`repro.nn.serialization.pack_state`; restoring it into a
        same-configuration optimizer reproduces subsequent steps
        bit-exactly (slot arrays are copied at full dtype fidelity).
        """
        return {
            "type": type(self).__name__,
            "lr": float(self.lr),
            "step_count": int(self.step_count),
            "slots": {
                name: [np.array(a, copy=True) for a in arrays]
                for name, arrays in self._slot_arrays().items()
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict`.

        Validates the optimizer type and every slot array's shape so a
        checkpoint from a different run configuration fails loudly
        instead of silently corrupting training.
        """
        saved_type = state.get("type")
        if saved_type is not None and saved_type != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {saved_type}, not "
                f"{type(self).__name__}"
            )
        slots = state.get("slots", {})
        own = self._slot_arrays()
        if set(slots) != set(own):
            raise ValueError(
                f"optimizer slot mismatch: state has {sorted(slots)}, "
                f"{type(self).__name__} expects {sorted(own)}"
            )
        for name, arrays in slots.items():
            targets = own[name]
            if len(arrays) != len(targets):
                raise ValueError(
                    f"slot {name!r} has {len(arrays)} arrays for "
                    f"{len(targets)} parameters"
                )
            for i, (array, target) in enumerate(zip(arrays, targets)):
                array = np.asarray(array)
                if array.shape != target.shape:
                    raise ValueError(
                        f"slot {name!r}[{i}] shape {array.shape} does not "
                        f"match parameter shape {target.shape}"
                    )
                target[...] = array.astype(target.dtype, copy=False)
        self.lr = float(state["lr"])
        self.step_count = int(state["step_count"])

    def _grads(self):
        """Yield (param, grad) for parameters that received a gradient."""
        for param in self.parameters:
            if param.grad is not None:
                yield param, param.grad.astype(np.float32, copy=False)
