"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping.

    Subclasses implement :meth:`step`, reading ``param.grad`` and updating
    ``param.data`` in place.  The learning rate is exposed as a mutable
    attribute so schedulers can drive it.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def _grads(self):
        """Yield (param, grad) for parameters that received a gradient."""
        for param in self.parameters:
            if param.grad is not None:
                yield param, param.grad.astype(np.float32, copy=False)
