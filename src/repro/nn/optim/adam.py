"""Adam optimizer."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction and optional L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        # Moments are kept in float64: squared gradients can overflow
        # float32 during unstable phases (observed with BYOL warm-up).
        self._m = [np.zeros(p.data.shape, dtype=np.float64)
                   for p in self.parameters]
        self._v = [np.zeros(p.data.shape, dtype=np.float64)
                   for p in self.parameters]

    def _slot_arrays(self):
        return {"m": self._m, "v": self._v}

    def step(self) -> None:
        self.step_count += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1 ** self.step_count
        bias2 = 1.0 - b2 ** self.step_count
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad.astype(np.float64, copy=False)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[i] = b1 * self._m[i] + (1 - b1) * grad
            self._v[i] = b2 * self._v[i] + (1 - b2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            param.data = (param.data - update).astype(param.data.dtype)
