"""LARS (Layer-wise Adaptive Rate Scaling), the SimCLR pre-training optimizer.

SimCLR trains with LARS at large batch sizes; we include it so the
pre-training recipe matches the paper's reference settings.  Per-layer trust
ratios rescale the update so every layer moves a comparable relative amount.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..module import Parameter
from .optimizer import Optimizer

__all__ = ["LARS"]


class LARS(Optimizer):
    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 1e-6,
        trust_coefficient: float = 0.001,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.trust_coefficient = trust_coefficient
        self.eps = eps
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def _slot_arrays(self):
        return {"velocity": self._velocity}

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad.astype(np.float32, copy=False)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            w_norm = float(np.linalg.norm(param.data))
            g_norm = float(np.linalg.norm(grad))
            if w_norm > 0 and g_norm > 0:
                trust = self.trust_coefficient * w_norm / (g_norm + self.eps)
            else:
                trust = 1.0
            update = trust * grad
            self._velocity[i] = self.momentum * self._velocity[i] + update
            param.data = param.data - self.lr * self._velocity[i]
        self.step_count += 1
