"""Gradient clipping utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..module import Parameter

__all__ = ["global_grad_norm", "clip_grad_norm"]


def global_grad_norm(parameters: Iterable[Parameter]) -> float:
    """L2 norm of all gradients taken together (float64 accumulation)."""
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    return float(np.sqrt(total))


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global norm is at most ``max_norm``.

    Returns the pre-clipping norm (the usual contract, so callers can log
    divergence even when clipping is active).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = list(parameters)
    norm = global_grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm
