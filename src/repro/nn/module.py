"""Module system: parameter containers with nesting, modes, and state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


#: Slot descriptor of ``Tensor.data`` — the Parameter property below wraps
#: it so that reassignment can be observed without changing storage.
_TENSOR_DATA_SLOT = Tensor.__dict__["data"]


class Parameter(Tensor):
    """A Tensor registered as a trainable parameter of a Module.

    Every rebinding of ``.data`` (optimizer steps, ``load_state_dict``,
    EMA updates) bumps a monotonic :attr:`version` counter, so derived
    tensors — e.g. fake-quantized weight copies in
    :class:`repro.quant.QuantCache` — can be cache-keyed on
    ``(parameter, version)`` and invalidate exactly when the underlying
    values change.  In-place writes through ``param.data[...] = ...`` are
    *not* observed; call :meth:`bump_version` after such mutations.
    """

    def __init__(self, data, requires_grad: bool = True) -> None:
        self._version = 0
        super().__init__(data, requires_grad=requires_grad)

    @property
    def data(self) -> np.ndarray:
        return _TENSOR_DATA_SLOT.__get__(self, Parameter)

    @data.setter
    def data(self, value: np.ndarray) -> None:
        _TENSOR_DATA_SLOT.__set__(self, value)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter identifying the current value of ``.data``."""
        return self._version

    def bump_version(self) -> int:
        """Manually advance :attr:`version` (after in-place data edits)."""
        self._version += 1
        return self._version

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, requires_grad={self.requires_grad})"


class Module:
    """Base class for all neural-network modules.

    Assigning a :class:`Parameter`, :class:`Module`, or buffer (via
    :meth:`register_buffer`) as an attribute registers it, so traversal,
    ``state_dict`` round-trips, and train/eval propagation all work without
    explicit bookkeeping in subclasses.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_buffer_versions", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute interception --------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
            self._buffers.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
            if name in self._buffers:
                # Plain assignment to a registered buffer keeps it registered.
                self._buffers[name] = np.asarray(value)
                self._buffer_versions[name] += 1
                object.__setattr__(self, name, self._buffers[name])
                return
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved with the model (e.g. BN stats).

        Like :attr:`Parameter.version`, every (re-)registration or
        :meth:`set_buffer` call bumps a per-buffer version counter (see
        :meth:`buffer_version`), so derived caches — e.g. the lowered
        integer modules' GEMM operand matrices — can key on
        ``(id(buffer), version)`` and never serve values computed from a
        replaced buffer that happens to reuse the same storage.
        """
        self._buffers[name] = np.asarray(value)
        self._buffer_versions[name] = self._buffer_versions.get(name, -1) + 1
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of re-registration."""
        if name not in self._buffers:
            raise KeyError(f"{name!r} is not a registered buffer")
        self._buffers[name] = np.asarray(value)
        self._buffer_versions[name] += 1
        object.__setattr__(self, name, self._buffers[name])

    def buffer_version(self, name: str) -> int:
        """Monotonic counter identifying the current value of buffer ``name``."""
        if name not in self._buffer_versions:
            raise KeyError(f"{name!r} is not a registered buffer")
        return self._buffer_versions[name]

    # -- forward ------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, *args: Any, **kwargs: Any):
        return self.forward(*args, **kwargs)

    # -- traversal -----------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield (dotted-name, module) for self and every descendant."""
        yield prefix, self
        for name, module in self._modules.items():
            sub_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(sub_prefix)

    def modules(self) -> Iterator["Module"]:
        """Yield self and every descendant module."""
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) over the whole module tree."""
        for module_name, module in self.named_modules(prefix):
            for name, param in module._parameters.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, param

    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter in the module tree."""
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield (dotted-name, buffer) over the whole module tree."""
        for module_name, module in self.named_modules(prefix):
            for name, buf in module._buffers.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, buf

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        """Apply ``fn`` to every submodule (including self), depth-first."""
        for module in self.modules():
            fn(module)
        return self

    # -- modes ---------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode on self and every descendant."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Switch the whole module tree to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter in the tree."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of parameter elements in the tree."""
        return int(
            np.sum(
                [
                    p.size
                    for p in self.parameters()
                    if not trainable_only or p.requires_grad
                ]
            )
        )

    # -- serialization -----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter/buffer names to array copies."""
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load arrays produced by :meth:`state_dict` back into the model."""
        own_params = dict(self.named_parameters())
        own_buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for name in module._buffers:
                full = f"{module_name}.{name}" if module_name else name
                own_buffer_owners[full] = (module, name)

        missing = (set(own_params) | set(own_buffer_owners)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffer_owners))
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            if name in own_params:
                param = own_params[name]
                if param.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: model {param.data.shape} "
                        f"vs state {value.shape}"
                    )
                param.data = value.astype(param.data.dtype).copy()
            elif name in own_buffer_owners:
                module, short = own_buffer_owners[name]
                module.set_buffer(short, value.copy())

    def copy_from(self, other: "Module") -> None:
        """Copy parameters and buffers from a same-architecture module."""
        self.load_state_dict(other.state_dict())

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
