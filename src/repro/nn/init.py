"""Weight-initialization schemes.

All initializers take an explicit ``rng`` so model construction is fully
deterministic given a seed — a requirement for reproducible experiments on
this stack (there is no global framework seed).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "xavier_normal",
    "normal",
    "uniform",
    "zeros",
    "ones",
    "compute_fans",
]


def compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return (fan_in, fan_out) for dense or convolutional weight shapes."""
    if len(shape) < 1:
        raise ValueError("weight must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:  # (out, in)
        return shape[1], shape[0]
    receptive = int(np.prod(shape[2:]))  # (out, in, kh, kw)
    return shape[1] * receptive, shape[0] * receptive


def kaiming_normal(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    nonlinearity: str = "relu",
) -> np.ndarray:
    """He-normal initialization, suited to ReLU-family networks."""
    fan_in, _ = compute_fans(shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    nonlinearity: str = "relu",
) -> np.ndarray:
    """He-uniform initialization (bound = gain * sqrt(3/fan_in))."""
    fan_in, _ = compute_fans(shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization over fan_in + fan_out."""
    fan_in, fan_out = compute_fans(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal initialization over fan_in + fan_out."""
    fan_in, fan_out = compute_fans(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def normal(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    mean: float = 0.0,
    std: float = 0.01,
) -> np.ndarray:
    """Gaussian initialization with explicit mean/std."""
    return rng.normal(mean, std, size=shape).astype(np.float32)


def uniform(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    low: float = -0.05,
    high: float = 0.05,
) -> np.ndarray:
    """Uniform initialization over [low, high]."""
    return rng.uniform(low, high, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """All-zero initialization (biases, BN shifts)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """All-one initialization (BN scales)."""
    return np.ones(shape, dtype=np.float32)
