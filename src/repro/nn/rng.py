"""Managed-RNG helpers.

Every stochastic component in the library threads an explicit
:class:`numpy.random.Generator` so checkpoint resume can capture and
restore RNG state bit-exactly (see ``repro.checkpoint``).  The one
sanctioned fallback to a fresh OS-seeded generator lives here — lint
rule RPR001 flags ``np.random.default_rng()`` anywhere else in
``src/`` — so "who may mint an unseeded generator" is a one-line
allowlist instead of a convention.

Entry points (model constructors, eval harnesses) may call
:func:`ensure_rng` for an optional ``rng=None`` convenience parameter.
Code on the training path must *not* fall back: a silently-minted
generator cannot be restored on resume.  ``F.dropout`` and the
``Dropout`` layer therefore raise instead of calling this.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ensure_rng", "derive_rng"]


def ensure_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    """Return ``rng``, or a fresh OS-seeded generator when ``None``."""
    if rng is None:
        return np.random.default_rng()
    return rng


def derive_rng(*key: int) -> np.random.Generator:
    """Deterministic generator derived from an integer spawn key.

    The key is fed to :class:`numpy.random.SeedSequence` verbatim, so the
    same key always yields the same stream and distinct keys yield
    statistically independent streams.  This is the sanctioned way for
    parallel workers to mint per-sample RNGs (lint rule RPR006): a stream
    keyed on ``(base_seed, epoch, sample_index)`` is identical no matter
    which worker — or how many workers — produce it, which is what makes
    prefetched batches byte-identical to inline ones.
    """
    components = tuple(int(k) for k in key)
    if not components:
        raise ValueError("derive_rng needs at least one key component")
    for component in components:
        if component < 0:
            raise ValueError(
                f"derive_rng key components must be >= 0, got {components}"
            )
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence(components))
    )
