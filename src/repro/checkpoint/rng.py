"""Capture and restore numpy random generator streams.

Bit-exact resume requires every RNG in the training loop — the precision
sampler, the loader's shuffle/augmentation stream — to continue from the
exact draw it would have made in the uninterrupted run.  numpy exposes
that through ``Generator.bit_generator.state``, a JSON-friendly dict
(PCG64 state integers exceed 64 bits, which Python ints and JSON both
handle losslessly).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

__all__ = ["get_rng_state", "set_rng_state"]


def get_rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-serializable snapshot of a generator's position."""
    return rng.bit_generator.state


def set_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a snapshot from :func:`get_rng_state` into ``rng``.

    The generator keeps its identity (callers holding references see the
    restored stream); the underlying bit generator must match the one the
    snapshot came from.
    """
    expected = rng.bit_generator.state.get("bit_generator")
    saved = state.get("bit_generator")
    if saved != expected:
        raise ValueError(
            f"RNG state is for bit generator {saved!r}, "
            f"this generator uses {expected!r}"
        )
    rng.bit_generator.state = state
