"""Fault-tolerant checkpoint/resume for training runs.

The subsystem has three layers:

- :mod:`repro.checkpoint.rng` — capture/restore numpy ``Generator``
  streams so a resumed run draws the exact same random sequence.
- :mod:`repro.checkpoint.checkpointer` — :class:`Checkpointer`, an
  atomic (temp + fsync + rename), sha256-verified, retention-managed
  checkpoint store whose ``load_latest()`` falls back past corrupt
  files instead of crashing.
- :class:`~repro.telemetry.CheckpointCallback` (re-exported here) —
  the EventBus callback that saves trainer state at epoch boundaries.

Trainers integrate through ``TrainerBase.state_dict()`` /
``load_state_dict()`` and ``fit(..., resume_from=...)``; the CLI wires
it up via ``--checkpoint-dir`` / ``--resume``.
"""

from ..telemetry.callbacks import CheckpointCallback
from .checkpointer import (
    CheckpointError,
    Checkpointer,
    LoadedCheckpoint,
    resolve_resume_state,
)
from .rng import get_rng_state, set_rng_state

__all__ = [
    "CheckpointCallback",
    "CheckpointError",
    "Checkpointer",
    "LoadedCheckpoint",
    "get_rng_state",
    "set_rng_state",
    "resolve_resume_state",
]
