"""Crash-safe training checkpoints with integrity verification.

A :class:`Checkpointer` owns one directory of ``ckpt-<step>.npz`` files
plus a ``MANIFEST.json`` recording each file's sha256, step, and metric.
Guarantees:

- **Atomicity** — every file (checkpoint and manifest) is written to a
  temp path, flushed, fsynced, and ``os.replace``d into place, so a
  crash mid-write never leaves a half-written file under the final name.
- **Integrity** — loads verify the manifest sha256 before parsing; a
  truncated or bit-flipped file is detected and skipped.
- **Fallback** — :meth:`load_latest` walks checkpoints newest-first and
  returns the first one that verifies and parses, so resume never
  crashes on a corrupt file.  Corruption is reported through telemetry
  (``checkpoint_corrupt`` counter + optional JSONL log records).
- **Retention** — ``keep_last`` newest checkpoints are kept, plus the
  best-metric one when ``keep_best`` is set; older files are deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import tempfile
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union

import numpy as np

from ..nn.serialization import pack_state, unpack_state
from ..telemetry import MetricsRegistry

__all__ = [
    "CheckpointError",
    "Checkpointer",
    "LoadedCheckpoint",
    "resolve_resume_state",
]

MANIFEST_NAME = "MANIFEST.json"
_CKPT_PATTERN = re.compile(r"^ckpt-(\d+)\.npz$")


class CheckpointError(RuntimeError):
    """A checkpoint file failed verification or parsing."""


class LoadedCheckpoint(NamedTuple):
    """A successfully loaded checkpoint: its state tree and provenance."""

    state: Any
    path: pathlib.Path
    step: int
    metadata: Dict[str, Any]


def _sha256(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_write(path: pathlib.Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename)."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    tmp = pathlib.Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class Checkpointer:
    """Atomic, integrity-checked, retention-managed checkpoint store.

    Parameters
    ----------
    directory:
        Where checkpoints and the manifest live; created if missing.
    keep_last:
        How many of the newest checkpoints to retain (>= 1).
    keep_best:
        Also retain the checkpoint with the best metric seen so far.
    mode:
        ``"min"`` (loss-like metrics) or ``"max"`` (accuracy-like).
    telemetry:
        Optional sink with a ``log(event, payload)`` method (e.g.
        :class:`repro.telemetry.JsonlLogger`); receives
        ``checkpoint_saved`` / ``checkpoint_corrupt`` /
        ``checkpoint_fallback`` records.
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry`; defaults to a
        private registry.  Counters: ``checkpoints_saved``,
        ``checkpoints_corrupt``, ``checkpoints_pruned``.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        keep_last: int = 3,
        keep_best: bool = True,
        mode: str = "min",
        telemetry=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        self.keep_best = keep_best
        self.mode = mode
        self.telemetry = telemetry
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- telemetry ---------------------------------------------------------
    def _log(self, event: str, payload: Dict[str, Any]) -> None:
        if self.telemetry is not None:
            self.telemetry.log(event, payload)

    # -- manifest ----------------------------------------------------------
    @property
    def manifest_path(self) -> pathlib.Path:
        return self.directory / MANIFEST_NAME

    def read_manifest(self) -> Dict[str, Any]:
        """Parse the manifest; a missing/corrupt manifest yields an empty one.

        The manifest is an optimisation and an integrity record, never a
        single point of failure: checkpoints written before a manifest
        corruption remain loadable (unverified) via directory listing.
        """
        try:
            raw = self.manifest_path.read_text(encoding="utf-8")
            manifest = json.loads(raw)
            if not isinstance(manifest.get("checkpoints"), list):
                raise ValueError("manifest has no checkpoint list")
            return manifest
        except FileNotFoundError:
            return {"checkpoints": [], "best": None}
        except (ValueError, OSError) as exc:
            self.metrics.counter("checkpoints_corrupt").inc()
            self._log(
                "checkpoint_corrupt",
                {"file": MANIFEST_NAME, "reason": f"manifest unreadable: {exc}"},
            )
            return {"checkpoints": [], "best": None}

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        data = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode()
        _fsync_write(self.manifest_path, data)

    # -- save --------------------------------------------------------------
    def save(
        self,
        state: Any,
        step: int,
        metric: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Write one checkpoint atomically and update manifest + retention.

        ``state`` is any tree acceptable to
        :func:`repro.nn.serialization.pack_state`.  ``step`` orders
        checkpoints (epoch index or global step); saving the same step
        twice overwrites.  ``metric`` drives keep-best retention.
        """
        step = int(step)
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        path = self.directory / f"ckpt-{step:08d}.npz"
        packed = pack_state(state)

        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=str(self.directory)
        )
        tmp = pathlib.Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **packed)
                fh.flush()
                os.fsync(fh.fileno())
            digest = _sha256(tmp)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

        manifest = self.read_manifest()
        entries = [
            e for e in manifest["checkpoints"] if e.get("file") != path.name
        ]
        entries.append(
            {
                "file": path.name,
                "step": step,
                "sha256": digest,
                "metric": None if metric is None else float(metric),
                "metadata": dict(metadata or {}),
            }
        )
        entries.sort(key=lambda e: e.get("step", -1))
        manifest["checkpoints"] = entries
        manifest["best"] = self._best_entry(entries)
        self._prune(manifest)
        self._write_manifest(manifest)

        self.metrics.counter("checkpoints_saved").inc()
        self._log(
            "checkpoint_saved",
            {"file": path.name, "step": step, "metric": metric},
        )
        return path

    def _best_entry(self, entries: List[Dict[str, Any]]) -> Optional[str]:
        scored = [e for e in entries if e.get("metric") is not None]
        if not scored:
            return None
        pick = min if self.mode == "min" else max
        return pick(scored, key=lambda e: e["metric"])["file"]

    def _prune(self, manifest: Dict[str, Any]) -> None:
        entries = manifest["checkpoints"]
        keep = {e["file"] for e in entries[-self.keep_last:]}
        if self.keep_best and manifest.get("best"):
            keep.add(manifest["best"])
        pruned = [e for e in entries if e["file"] not in keep]
        for entry in pruned:
            (self.directory / entry["file"]).unlink(missing_ok=True)
            self.metrics.counter("checkpoints_pruned").inc()
        manifest["checkpoints"] = [e for e in entries if e["file"] in keep]

    # -- load --------------------------------------------------------------
    def _verify(self, path: pathlib.Path, expected_sha: Optional[str]) -> None:
        if not path.exists():
            raise CheckpointError(f"{path.name}: file missing")
        if expected_sha is not None:
            actual = _sha256(path)
            if actual != expected_sha:
                raise CheckpointError(
                    f"{path.name}: sha256 mismatch "
                    f"(manifest {expected_sha[:12]}…, file {actual[:12]}…)"
                )

    def load(
        self, path: Union[str, pathlib.Path], verify: bool = True
    ) -> Any:
        """Load one checkpoint file, verifying its manifest digest.

        Raises :class:`CheckpointError` on any verification or parse
        failure (use :meth:`load_latest` for fallback semantics).
        """
        path = pathlib.Path(path)
        expected = None
        if verify:
            for entry in self.read_manifest()["checkpoints"]:
                if entry.get("file") == path.name:
                    expected = entry.get("sha256")
                    break
        self._verify(path, expected)
        try:
            with np.load(path) as archive:
                return unpack_state(archive)
        except CheckpointError:
            raise
        except Exception as exc:  # zip/json/format damage of any kind
            raise CheckpointError(f"{path.name}: unreadable ({exc})") from exc

    def _candidates(self) -> List[Tuple[int, pathlib.Path, Optional[Dict]]]:
        """Every potential checkpoint, newest-first, manifest-joined.

        Includes files present on disk but absent from the manifest (a
        crash between the checkpoint rename and the manifest update must
        not lose the newest checkpoint).
        """
        manifest = self.read_manifest()
        by_name = {e["file"]: e for e in manifest["checkpoints"]}
        found: List[Tuple[int, pathlib.Path, Optional[Dict]]] = []
        for path in self.directory.glob("ckpt-*.npz"):
            match = _CKPT_PATTERN.match(path.name)
            if not match:
                continue
            entry = by_name.get(path.name)
            step = entry["step"] if entry else int(match.group(1))
            found.append((step, path, entry))
        found.sort(key=lambda item: item[0], reverse=True)
        return found

    def load_latest(self) -> Optional[LoadedCheckpoint]:
        """Newest checkpoint that verifies and parses, or None.

        Corrupt files are skipped (counted and logged), falling back to
        progressively older checkpoints — resume never crashes on disk
        damage.
        """
        for step, path, entry in self._candidates():
            expected = entry.get("sha256") if entry else None
            try:
                self._verify(path, expected)
                with np.load(path) as archive:
                    state = unpack_state(archive)
            except Exception as exc:
                self.metrics.counter("checkpoints_corrupt").inc()
                self._log(
                    "checkpoint_corrupt",
                    {"file": path.name, "reason": str(exc)},
                )
                continue
            metadata = dict(entry.get("metadata", {})) if entry else {}
            return LoadedCheckpoint(state, path, step, metadata)
        return None

    def latest_path(self) -> Optional[pathlib.Path]:
        """Path of the newest checkpoint on disk (no verification)."""
        candidates = self._candidates()
        return candidates[0][1] if candidates else None

    def best_path(self) -> Optional[pathlib.Path]:
        """Path of the best-metric checkpoint per the manifest."""
        best = self.read_manifest().get("best")
        return self.directory / best if best else None


def resolve_resume_state(source) -> Optional[LoadedCheckpoint]:
    """Turn a ``resume_from`` argument into a loaded checkpoint.

    Accepts a :class:`Checkpointer`, a checkpoint directory, or a single
    checkpoint file path.  A file that fails verification falls back to
    the newest valid sibling in its directory.  Returns None when
    nothing valid exists (callers then start fresh).
    """
    if isinstance(source, Checkpointer):
        return source.load_latest()
    path = pathlib.Path(source)
    if path.is_dir():
        return Checkpointer(path).load_latest()
    checkpointer = Checkpointer(path.parent)
    try:
        state = checkpointer.load(path)
    except CheckpointError as exc:
        checkpointer.metrics.counter("checkpoints_corrupt").inc()
        checkpointer._log(
            "checkpoint_fallback", {"file": path.name, "reason": str(exc)}
        )
        return checkpointer.load_latest()
    match = _CKPT_PATTERN.match(path.name)
    step = int(match.group(1)) if match else -1
    return LoadedCheckpoint(state, path, step, {})
