"""Recording one eager step into a :class:`~repro.engine.graph.Graph`.

The tracer piggybacks on a *real* eager step: ``Function.apply`` calls
:meth:`Tracer.record` for every op while the step executes normally, so
the step's results (loss value, gradients, metrics, RNG draws) are the
eager ones regardless of whether tracing succeeds.  Classification
failures therefore never abort the step — they poison the tracer, and
:meth:`Tracer.finalize` raises :class:`TraceError` afterwards, which the
engine converts into a fallback decision.

Symbolic kwargs: only kwargs literally named ``"bits"`` participate in
symbolic substitution.  A ``bits`` value equal to one of the tracer's
symbol bindings is recorded as a :class:`SymbolRef` and re-bound on every
replay; every other kwarg is captured literally.  (Restricting the match
to ``bits`` keeps unrelated integer kwargs — ``views=2``, ``axis=2`` —
from colliding with a sampled precision of the same value.)
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..nn import autograd
from ..nn.module import Parameter
from ..nn.tensor import Tensor
from .graph import (
    ConstRef,
    DataRef,
    Graph,
    InputRef,
    ParamRef,
    Record,
    SlotRef,
    SymbolRef,
    TraceError,
)

__all__ = ["Tracer", "tracing"]


class Tracer:
    """Collects op records during one eager step.

    Parameters
    ----------
    inputs:
        Mapping of replay-input name to the Tensor that carries it during
        the traced step (the batch views).  These become :class:`InputRef`
        leaves, rebound per replay.
    symbols:
        Mapping of symbol name to its trace-time value (the sampled
        precision bits).  ``bits=`` kwargs matching a value are recorded
        symbolically; ties resolve to the first symbol in mapping order.
    """

    def __init__(
        self,
        inputs: Optional[Mapping[str, Tensor]] = None,
        symbols: Optional[Mapping[str, int]] = None,
    ) -> None:
        self._records: list = []
        self._slots: Dict[int, int] = {}  # id(out Tensor) -> record index
        self._data_slots: Dict[int, int] = {}  # id(out.data) -> record index
        self._inputs: Dict[int, str] = {}  # id(input Tensor) -> name
        self._input_data: Dict[int, str] = {}  # id(input .data) -> name
        self._input_names: Tuple[str, ...] = ()
        self._symbols: Dict[str, int] = dict(symbols or {})
        self._error: Optional[TraceError] = None
        # Leaf tensors whose ids we have classified; held so CPython
        # cannot recycle an id mid-trace and alias a fresh tensor.
        self._keepalive: list = []
        if inputs:
            names = []
            for name, tensor in inputs.items():
                if not isinstance(tensor, Tensor):
                    raise TypeError(f"input {name!r} must be a Tensor")
                self._inputs[id(tensor)] = name
                self._input_data[id(tensor.data)] = name
                self._keepalive.append(tensor)
                names.append(name)
            self._input_names = tuple(names)

    # -- recording ---------------------------------------------------------
    def record(self, op, ctx, inputs, kwargs, out) -> None:
        """Called by ``Function.apply`` for every op of the traced step."""
        if self._error is not None:
            return
        try:
            args = tuple(self._classify(x) for x in inputs)
            kw = self._classify_kwargs(kwargs)
        except TraceError as exc:
            self._error = exc
            return
        index = len(self._records)
        self._records.append(
            Record(op, ctx, args, kw, out, out._ctx is not None)
        )
        self._slots[id(out)] = index
        self._data_slots[id(out.data)] = index

    def _classify(self, value: Any) -> Any:
        if isinstance(value, Tensor):
            slot = self._slots.get(id(value))
            if slot is not None:
                return SlotRef(slot)
            name = self._inputs.get(id(value))
            if name is not None:
                return InputRef(name)
            if isinstance(value, Parameter):
                return ParamRef(value)
            # detach() shares the ndarray object with its source tensor,
            # so a leaf whose array IS a slot output tracks that slot.
            slot = self._data_slots.get(id(value.data))
            if slot is not None and value._ctx is None:
                self._keepalive.append(value)
                return DataRef(slot)
            name = self._input_data.get(id(value.data))
            if name is not None and value._ctx is None:
                self._keepalive.append(value)
                return InputRef(name)
            if value._ctx is not None:
                raise TraceError(
                    "leaf tensor carries a foreign autograd graph "
                    f"(op output of {type(value._ctx).__name__})"
                )
            if value.requires_grad:
                raise TraceError(
                    "trainable leaf tensor is not a Parameter; cannot "
                    "rebind it across replays"
                )
            self._keepalive.append(value)
            return ConstRef(np.array(value.data, copy=True))
        if isinstance(value, np.ndarray):
            return ConstRef(np.array(value, copy=True))
        # Plain scalar (float/int/None) — captured literally.
        return value

    def _classify_kwargs(self, kwargs: Mapping[str, Any]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key, value in kwargs.items():
            if key == "bits" and self._symbols:
                matched = None
                for name, bound in self._symbols.items():
                    if bound == value:
                        matched = name
                        break
                if matched is not None:
                    out[key] = SymbolRef(matched)
                    continue
            if isinstance(value, Tensor):
                raise TraceError(f"Tensor-valued kwarg {key!r} is untraceable")
            if isinstance(value, np.ndarray):
                out[key] = np.array(value, copy=True)
            else:
                out[key] = value
        return out

    # -- finishing ---------------------------------------------------------
    @property
    def failed(self) -> Optional[TraceError]:
        return self._error

    def finalize(
        self,
        root: Tensor,
        outputs: Optional[Mapping[str, Tensor]] = None,
    ) -> Graph:
        """Seal the trace into a Graph, or raise :class:`TraceError`."""
        if self._error is not None:
            raise self._error
        if not self._records:
            raise TraceError(
                "no ops were traced (model runs outside the autograd tape)"
            )
        root_slot = self._slots.get(id(root))
        if root_slot is None:
            raise TraceError("root tensor is not the output of a traced op")
        resolved: Dict[str, SlotRef] = {}
        for name, tensor in (outputs or {}).items():
            slot = self._slots.get(id(tensor))
            if slot is None:
                raise TraceError(
                    f"output tap {name!r} is not the output of a traced op"
                )
            resolved[name] = SlotRef(slot)
        return Graph(
            records=self._records,
            root=root,
            outputs=resolved,
            input_names=self._input_names,
            symbols=tuple(self._symbols),
        )


@contextlib.contextmanager
def tracing(tracer: Tracer):
    """Install ``tracer`` for the current thread while the block runs."""
    if autograd._active_tracer() is not None:
        raise TraceError("a trace is already active on this thread")
    autograd._set_tracer(tracer)
    try:
        yield tracer
    finally:
        autograd._set_tracer(None)
