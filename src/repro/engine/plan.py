"""Compiling a traced :class:`Graph` into a replayable :class:`Plan`.

Compilation has three stages:

1. **Fusion** — single-consumer elementwise chains (``mul→add`` affine
   tails, ``add→relu`` residual joins, and their ``mul→add→relu``
   composition) collapse into one fused node from
   :mod:`repro.nn._ops.fused`.  The fused forward/backward run the exact
   constituent arithmetic in the original order, so bytes are preserved;
   fusion only removes dispatch and intermediate storage.
2. **Buffer planning** — every planned op writes its output into an
   :class:`~repro.engine.arena.Arena` buffer with ``out=``.  Training
   plans keep one persistent buffer per slot (backward reads forward
   activations); inference plans reuse freed buffers via a greedy
   liveness scan.
3. **Schedule compilation** — the forward becomes a flat list of
   zero-argument closures; the backward becomes a precompiled entry list
   that mirrors ``repro.nn.autograd.backward``'s reverse-topological
   walk and its exact accumulation order (``existing + new``), minus the
   per-step graph walk and validation.

Ops without a planned kernel fall back to re-running their recorded
``ctx.forward`` — correct by construction, just unplanned.  Any
compilation surprise raises :class:`PlanError` (a :class:`TraceError`),
which the engine converts into a permanent eager fallback for that
signature.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..nn._ops import conv as _conv
from ..nn._ops import elementwise as _ew
from ..nn._ops import matmul as _mm
from ..nn._ops import reduce as _rd
from ..nn._ops import shape as _sh
from ..nn._ops.fused import FusedAddRelu, FusedMulAdd, FusedMulAddRelu
from ..nn.autograd import _topological_order
from ..nn.module import Parameter
from ..quant import quantizer as _qz
from .arena import Arena, plan_buffers
from .graph import (
    ConstRef,
    DataRef,
    Graph,
    InputRef,
    ParamRef,
    Record,
    SlotRef,
    SymbolRef,
    TraceError,
)

__all__ = [
    "Plan",
    "PlanError",
    "PlanVerificationError",
    "ReplayResult",
    "compile_plan",
]


class PlanError(TraceError):
    """A graph traced fine but could not be compiled."""


class PlanVerificationError(PlanError):
    """The compiled plan failed AUD006 aliasing verification.

    Deliberately distinct from :class:`PlanError`: a compile failure is
    a recoverable "run this signature eagerly" condition, but a verified
    aliasing hazard in a plan that *would have been replayed* is a
    planner bug — the engine re-raises it instead of falling back.
    """


class ReplayResult:
    """Arrays produced by one replay.

    ``root`` and ``outputs`` values may be arena buffers that the next
    replay overwrites — copy anything that outlives the step.
    """

    __slots__ = ("root", "outputs")

    def __init__(self, root: np.ndarray, outputs: Dict[str, np.ndarray]):
        self.root = root
        self.outputs = outputs


# Ops whose output may alias their input's storage; their input slots are
# pinned out of the inference reuse pool.
_VIEW_OPS = (_sh.Reshape, _sh.Transpose, _sh.GetItem)

_plan_counter = [0]


# ---------------------------------------------------------------------------
# fusion pass
# ---------------------------------------------------------------------------


def _ref_slots(record: Record):
    for ref in record.args:
        if isinstance(ref, (SlotRef, DataRef)):
            yield ref
    for ref in record.kwargs.values():
        if isinstance(ref, (SlotRef, DataRef)):
            yield ref


def _single_consumer_map(
    records: List[Record], protected: Set[int]
) -> Dict[int, int]:
    """Map slot -> index of its sole SlotRef consumer, when fusable."""
    uses: Dict[int, List[Tuple[int, Any]]] = {}
    for i, record in enumerate(records):
        for ref in _ref_slots(record):
            uses.setdefault(ref.index, []).append((i, ref))
    sole: Dict[int, int] = {}
    for slot, refs in uses.items():
        if slot in protected or len(refs) != 1:
            continue
        consumer, ref = refs[0]
        if isinstance(ref, SlotRef):
            sole[slot] = consumer
    return sole


def _remap_ref(ref: Any, old_to_new: Dict[int, int]) -> Any:
    if isinstance(ref, SlotRef):
        return SlotRef(old_to_new[ref.index])
    if isinstance(ref, DataRef):
        return DataRef(old_to_new[ref.index])
    return ref


def _rewrite(records, fusions, dropped, root_slot, output_slots):
    """Apply fusion decisions, re-indexing every slot reference."""
    old_to_new: Dict[int, int] = {}
    new_records: List[Record] = []
    for i, record in enumerate(records):
        if i in dropped:
            continue
        if i in fusions:
            record = fusions[i]
        old_to_new[i] = len(new_records)
        new_records.append(record)
    for record in new_records:
        record.args = tuple(_remap_ref(r, old_to_new) for r in record.args)
        record.kwargs = {
            k: _remap_ref(v, old_to_new) for k, v in record.kwargs.items()
        }
    new_outputs = {k: old_to_new[v] for k, v in output_slots.items()}
    return new_records, old_to_new[root_slot], new_outputs


def _make_fused(op_cls, ctx_state, parents_source, args, out):
    ctx = op_cls()
    for key, value in ctx_state.items():
        setattr(ctx, key, value)
    if parents_source is not None:
        ctx.parents = parents_source[0]
        ctx.needs_input_grad = parents_source[1]
        out._ctx = ctx
    return Record(op_cls, ctx, tuple(args), {}, out, out._ctx is not None)


def _fuse_records(records, root_slot, output_slots):
    """Run the two fusion scans; returns rewritten records and indices."""
    for _ in range(2):  # second scan folds relu over freshly fused affines
        protected = {root_slot} | set(output_slots.values())
        sole = _single_consumer_map(records, protected)
        fusions: Dict[int, Record] = {}
        dropped: Set[int] = set()
        for i, record in enumerate(records):
            if i in dropped:
                continue
            grad = record.requires_grad
            # add → relu  /  fused-mul-add → relu
            if record.op is _ew.Relu and isinstance(record.args[0], SlotRef):
                j = record.args[0].index
                inner = records[j]
                if sole.get(j) != i or j in dropped or j in fusions:
                    continue
                if inner.requires_grad != grad:
                    continue
                if inner.op is _ew.Add and len(inner.args) == 2:
                    state = {
                        "a_shape": inner.ctx.a_shape,
                        "b_shape": inner.ctx.b_shape,
                        "mask": record.ctx.mask,
                    }
                    parents = (
                        (inner.ctx.parents, inner.ctx.needs_input_grad)
                        if grad
                        else None
                    )
                    fusions[i] = _make_fused(
                        FusedAddRelu, state, parents, inner.args, record.out
                    )
                    dropped.add(j)
                elif inner.op is FusedMulAdd:
                    state = {
                        "a": inner.ctx.a,
                        "b": inner.ctx.b,
                        "mul_shape": inner.ctx.mul_shape,
                        "c_shape": inner.ctx.c_shape,
                        "mask": record.ctx.mask,
                        "_mul_dtype": inner.ctx._mul_dtype,
                    }
                    parents = (
                        (inner.ctx.parents, inner.ctx.needs_input_grad)
                        if grad
                        else None
                    )
                    fusions[i] = _make_fused(
                        FusedMulAddRelu, state, parents, inner.args, record.out
                    )
                    dropped.add(j)
                continue
            # mul → add (affine tail)
            if (
                record.op is _ew.Add
                and len(record.args) == 2
                and isinstance(record.args[0], SlotRef)
                and isinstance(record.args[1], (SlotRef, DataRef, ParamRef,
                                                InputRef, ConstRef))
            ):
                j = record.args[0].index
                inner = records[j]
                if sole.get(j) != i or j in dropped or j in fusions:
                    continue
                if inner.op is not _ew.Mul or len(inner.args) != 2:
                    continue
                if inner.requires_grad != grad:
                    continue
                if not all(
                    isinstance(
                        r, (SlotRef, DataRef, ParamRef, InputRef, ConstRef)
                    )
                    for r in inner.args
                ):
                    continue
                if inner.out.data.shape != record.out.data.shape:
                    continue
                if grad and (
                    len(inner.ctx.parents) != 2 or len(record.ctx.parents) != 2
                ):
                    continue
                state = {
                    "a": inner.ctx.a,
                    "b": inner.ctx.b,
                    "mul_shape": inner.out.data.shape,
                    "c_shape": record.ctx.b_shape,
                    "_mul_dtype": inner.out.data.dtype,
                }
                parents = None
                if grad:
                    parents = (
                        inner.ctx.parents + (record.ctx.parents[1],),
                        inner.ctx.needs_input_grad
                        + (record.ctx.needs_input_grad[1],),
                    )
                fusions[i] = _make_fused(
                    FusedMulAdd,
                    state,
                    parents,
                    (inner.args[0], inner.args[1], record.args[1]),
                    record.out,
                )
                dropped.add(j)
        if not fusions:
            break
        records, root_slot, output_slots = _rewrite(
            records, fusions, dropped, root_slot, output_slots
        )
    return records, root_slot, output_slots


# ---------------------------------------------------------------------------
# forward step builders
# ---------------------------------------------------------------------------


def _fetcher(ref, slots, inbox, symbox):
    if isinstance(ref, (SlotRef, DataRef)):
        j = ref.index
        return lambda: slots[j]
    if isinstance(ref, ParamRef):
        p = ref.param
        return lambda: p.data
    if isinstance(ref, InputRef):
        name = ref.name
        return lambda: inbox[name]
    if isinstance(ref, ConstRef):
        arr = ref.array
        return lambda: arr
    if isinstance(ref, SymbolRef):
        name = ref.name
        return lambda: symbox[name]
    value = ref
    return lambda: value


def _generic_step(record, index, slots, fetchers, kwfetch):
    fwd = record.ctx.forward
    if not kwfetch:
        if len(fetchers) == 1:
            (fa,) = fetchers
            def step():
                slots[index] = fwd(fa())
            return step
        if len(fetchers) == 2:
            fa, fb = fetchers
            def step():
                slots[index] = fwd(fa(), fb())
            return step
        def step():
            slots[index] = fwd(*[f() for f in fetchers])
        return step
    items = tuple(kwfetch.items())
    def step():
        slots[index] = fwd(
            *[f() for f in fetchers], **{k: f() for k, f in items}
        )
    return step


def _build_planned(record, index, slots, fetchers, kwfetch, buf):
    """Return a planned (out=) step for supported ops, else None."""
    op = record.op
    ctx = record.ctx
    out = record.out.data

    if op in (_ew.Add, _ew.Sub) and len(fetchers) == 2 and not kwfetch:
        ufunc = np.add if op is _ew.Add else np.subtract
        fa, fb = fetchers
        def step():
            ufunc(fa(), fb(), out=buf)
            slots[index] = buf
        return step

    if op in (_ew.Mul, _ew.Div, _ew.Maximum) and len(fetchers) == 2 and not kwfetch:
        ufunc = {_ew.Mul: np.multiply, _ew.Div: np.divide,
                 _ew.Maximum: np.maximum}[op]
        fa, fb = fetchers
        def step():
            a = fa()
            b = fb()
            ctx.a = a
            ctx.b = b
            ufunc(a, b, out=buf)
            slots[index] = buf
        return step

    if op is _ew.Neg and len(fetchers) == 1 and not kwfetch:
        (fa,) = fetchers
        def step():
            np.negative(fa(), out=buf)
            slots[index] = buf
        return step

    if op is _ew.Identity and len(fetchers) == 1 and not kwfetch:
        (fa,) = fetchers
        def step():
            np.copyto(buf, fa())
            slots[index] = buf
        return step

    if op is _ew.Relu and len(fetchers) == 1 and not kwfetch:
        (fa,) = fetchers
        mask = np.empty(out.shape, dtype=bool)
        def step():
            a = fa()
            np.greater(a, 0, out=mask)
            ctx.mask = mask
            np.multiply(a, mask, out=buf)
            slots[index] = buf
        return step

    if op in (_ew.Exp, _ew.Sqrt, _ew.Tanh) and len(fetchers) == 1 and not kwfetch:
        ufunc = {_ew.Exp: np.exp, _ew.Sqrt: np.sqrt, _ew.Tanh: np.tanh}[op]
        (fa,) = fetchers
        def step():
            ufunc(fa(), out=buf)
            ctx.out = buf
            slots[index] = buf
        return step

    if op is _ew.Log and len(fetchers) == 1 and not kwfetch:
        (fa,) = fetchers
        def step():
            a = fa()
            ctx.a = a
            np.log(a, out=buf)
            slots[index] = buf
        return step

    if (
        op is _ew.Pow
        and len(fetchers) == 1
        and set(kwfetch) == {"exponent"}
        and not isinstance(record.kwargs["exponent"], SymbolRef)
    ):
        exponent = record.kwargs["exponent"]
        (fa,) = fetchers
        def step():
            a = fa()
            ctx.a = a
            np.power(a, exponent, out=buf)
            slots[index] = buf
        return step

    if op in (_rd.Sum, _rd.Mean) and len(fetchers) == 1:
        axes = ctx.axes
        keepdims = ctx.keepdims
        count = ctx.count if op is _rd.Mean else None
        (fa,) = fetchers
        def step():
            np.sum(fa(), axis=axes, keepdims=keepdims, out=buf)
            if count is not None:
                np.divide(buf, count, out=buf)
            slots[index] = buf
        return step

    if op is _mm.MatMul and len(fetchers) == 2 and not kwfetch:
        a0, b0 = ctx.a, ctx.b
        if a0.ndim < 2 or b0.ndim < 2:
            return None
        fa, fb = fetchers
        def step():
            a = fa()
            b = fb()
            ctx.a = a
            ctx.b = b
            np.matmul(a, b, out=buf)
            slots[index] = buf
        return step

    if op is _mm.Linear and ctx.x.ndim == 2:
        fx, fw = fetchers[0], fetchers[1]
        fbias = fetchers[2] if len(fetchers) > 2 else None
        has_bias = ctx.has_bias and fbias is not None
        def step():
            x = fx()
            w = fw()
            ctx.x = x
            ctx.weight = w
            np.matmul(x, w.T, out=buf)
            if has_bias:
                np.add(buf, fbias(), out=buf)
            slots[index] = buf
        return step

    if op is _sh.Concat:
        axis = ctx.axis
        fs = tuple(fetchers)
        def step():
            np.concatenate([f() for f in fs], axis=axis, out=buf)
            slots[index] = buf
        return step

    if op is _conv.Conv2d:
        return _build_conv_forward(record, index, slots, fetchers, buf)

    if op is FusedMulAdd:
        fa, fb, fc = fetchers
        tmp = np.empty(ctx.mul_shape, dtype=ctx._mul_dtype)
        def step():
            a = fa()
            b = fb()
            ctx.a = a
            ctx.b = b
            np.multiply(a, b, out=tmp)
            np.add(tmp, fc(), out=buf)
            slots[index] = buf
        return step

    if op is FusedAddRelu:
        fa, fb = fetchers
        mask = np.empty(out.shape, dtype=bool)
        def step():
            np.add(fa(), fb(), out=buf)
            np.greater(buf, 0, out=mask)
            ctx.mask = mask
            np.multiply(buf, mask, out=buf)
            slots[index] = buf
        return step

    if op is FusedMulAddRelu:
        fa, fb, fc = fetchers
        tmp = np.empty(ctx.mul_shape, dtype=ctx._mul_dtype)
        mask = np.empty(out.shape, dtype=bool)
        def step():
            a = fa()
            b = fb()
            ctx.a = a
            ctx.b = b
            np.multiply(a, b, out=tmp)
            np.add(tmp, fc(), out=buf)
            np.greater(buf, 0, out=mask)
            ctx.mask = mask
            np.multiply(buf, mask, out=buf)
            slots[index] = buf
        return step

    # Dynamic-range Eq. 10 fake-quant (straight-through backward): the
    # range is recomputed from the live array each replay — the planned
    # form stages Eq. 10 through the arena buffer instead of allocating
    # four temporaries per call.  Stays bitwise: under NumPy's weak
    # scalar promotion a float32 array op with a Python-float step runs
    # in float32 either way, so staging through ``buf`` changes storage,
    # not rounding.  Observer-driven ranges (non-None a_min/a_max) fall
    # back to the generic step.
    if (
        op is _qz._FakeQuantSTE
        and len(fetchers) == 1
        and record.kwargs.get("a_min") is None
        and record.kwargs.get("a_max") is None
        and "bits" in kwfetch
    ):
        (fa,) = fetchers
        fbits = kwfetch["bits"]
        def step():
            a = fa()
            _quantize_into(a, buf, fbits())
            slots[index] = buf
        return step

    if (
        op is _qz._FakeQuantPerViewSTE
        and len(fetchers) == 1
        and "bits" in kwfetch
        and not isinstance(record.kwargs.get("views"), SymbolRef)
    ):
        (fa,) = fetchers
        fbits = kwfetch["bits"]
        views = int(record.kwargs["views"])
        if views < 1 or out.shape[0] % max(views, 1):
            return None
        chunk = out.shape[0] // views
        spans = tuple(
            slice(v * chunk, (v + 1) * chunk) for v in range(views)
        )
        def step():
            a = fa()
            bits = fbits()
            if views == 1:
                _quantize_into(a, buf, bits)
            else:
                for span in spans:
                    _quantize_into(a[span], buf[span], bits)
            slots[index] = buf
        return step

    return None


def _quantize_into(a, buf, bits):
    """Eq. 10 (`linear_quantize`) with dynamic range, staged into ``buf``."""
    lo = float(a.min())
    hi = float(a.max())
    step = (hi - lo) / (2.0 ** bits - 1.0)
    if step == 0.0 or not math.isfinite(step):
        np.copyto(buf, a)
        return
    np.divide(a, step, out=buf)
    np.round(buf, out=buf)
    np.multiply(buf, step, out=buf)


def _build_conv_forward(record, index, slots, fetchers, buf):
    ctx = record.ctx
    sh_, sw = ctx.stride
    ph, pw = ctx.padding
    groups = ctx.groups
    n, c_in, h, w = ctx.x_shape
    c_out, c_in_g, kh, kw = ctx.weight.shape
    oh, ow = record.out.data.shape[2], record.out.data.shape[3]
    dtype = ctx.weight.dtype
    has_bias = ctx.has_bias

    pad_buf = interior = None
    if ph or pw:
        # np.pad(mode="constant") == a pre-zeroed frame whose interior is
        # overwritten every replay (the frame itself never changes).
        pad_buf = np.zeros(ctx.padded_shape, dtype=dtype)
        interior = pad_buf[:, :, ph : ph + h, pw : pw + w]
    cols_buf = np.empty((n, groups, c_in_g * kh * kw, oh * ow), dtype=dtype)
    cols6 = cols_buf.reshape(n, c_in, kh, kw, oh, ow)
    out_mat = buf.reshape(n, groups, c_out // groups, oh * ow)
    fx, fw = fetchers[0], fetchers[1]
    fbias = fetchers[2] if len(fetchers) > 2 else None
    bias_shape = (1, c_out, 1, 1)

    def step():
        x = fx()
        weight = fw()
        if pad_buf is not None:
            np.copyto(interior, x)
            xp = pad_buf
        else:
            xp = x
        windows = sliding_window_view(xp, (kh, kw), axis=(2, 3))
        windows = windows[:, :, ::sh_, ::sw, :, :]
        np.copyto(cols6, windows.transpose(0, 1, 4, 5, 2, 3))
        w_mat = weight.reshape(groups, c_out // groups, c_in_g * kh * kw)
        np.matmul(w_mat[None], cols_buf, out=out_mat)
        if has_bias:
            np.add(buf, fbias().reshape(bias_shape), out=buf)
        ctx.cols = cols_buf
        ctx.weight = weight
        slots[index] = buf

    return step


# ---------------------------------------------------------------------------
# planned backward kernels
# ---------------------------------------------------------------------------


def _planned_conv_backward(ctx, out_shape):
    n, c_out, oh, ow = out_shape
    groups = ctx.groups
    c_out_g = c_out // groups
    c_in_g, kh, kw = ctx.weight.shape[1], ctx.weight.shape[2], ctx.weight.shape[3]
    sh_, sw = ctx.stride
    ph, pw = ctx.padding
    h, w = ctx.x_shape[2], ctx.x_shape[3]
    weight_shape = ctx.weight.shape
    dtype = ctx.weight.dtype

    gw_buf = np.empty((groups, c_out_g, c_in_g * kh * kw), dtype=dtype)
    gcols_buf = np.empty((n, groups, c_in_g * kh * kw, oh * ow), dtype=dtype)
    gx_pad = np.zeros(ctx.padded_shape, dtype=dtype)
    gcols6 = gcols_buf.reshape(n, groups * c_in_g, kh, kw, oh, ow)
    padded = bool(ph or pw)

    def bwd(grad):
        grad_mat = grad.reshape(n, groups, c_out_g, oh * ow)
        np.einsum("ngop,ngkp->gok", grad_mat, ctx.cols, out=gw_buf)
        grad_w = gw_buf.reshape(weight_shape)
        w_mat = ctx.weight.reshape(groups, c_out_g, c_in_g * kh * kw)
        np.matmul(np.swapaxes(w_mat, 1, 2)[None], grad_mat, out=gcols_buf)
        gx_pad.fill(0)
        for i in range(kh):
            h_end = i + sh_ * oh
            for j in range(kw):
                w_end = j + sw * ow
                gx_pad[:, :, i:h_end:sh_, j:w_end:sw] += gcols6[:, :, i, j]
        grad_x = gx_pad[:, :, ph : ph + h, pw : pw + w] if padded else gx_pad
        grads = [grad_x, grad_w]
        if ctx.has_bias:
            grads.append(grad.sum(axis=(0, 2, 3)))
        return tuple(grads[: len(ctx.parents)])

    return bwd


def _planned_linear_backward(ctx, out_shape):
    if ctx.x.ndim != 2 or len(out_shape) != 2:
        return None
    gx_buf = np.empty(ctx.x.shape, dtype=ctx.x.dtype)
    gw_buf = np.empty(ctx.weight.shape, dtype=ctx.weight.dtype)

    def bwd(grad):
        np.matmul(grad, ctx.weight, out=gx_buf)
        np.matmul(grad.T, ctx.x, out=gw_buf)
        grads = [gx_buf, gw_buf]
        if ctx.has_bias:
            grads.append(grad.sum(axis=0))
        return tuple(grads[: len(ctx.parents)])

    return bwd


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------


class Plan:
    """A compiled, replayable step.

    Training plans (``training=True``) run the precompiled backward on
    every replay, accumulating into ``Parameter.grad`` exactly as the
    eager engine does.  Inference plans validate parameter versions via
    :meth:`stale` so weight updates force a retrace (the spec'd
    invalidation rule), and reuse output buffers across slots.
    """

    def __init__(
        self,
        graph: Graph,
        training: bool,
        arena: Optional[Arena] = None,
        fuse: bool = True,
    ) -> None:
        self.training = training
        self.arena = arena if arena is not None else Arena()
        _plan_counter[0] += 1
        self._plan_no = _plan_counter[0]

        records = list(graph.records)
        root_slot = graph.slot_of(graph.root)
        if root_slot is None:
            raise PlanError("root is not a traced op output")
        output_slots = {k: ref.index for k, ref in graph.outputs.items()}
        if fuse:
            records, root_slot, output_slots = _fuse_records(
                records, root_slot, output_slots
            )
        self.records = records
        self.fused = fuse
        self._root_slot = root_slot
        self._output_slots = output_slots
        self._input_names = graph.input_names
        self.symbols = graph.symbols

        self._slots: List[Any] = [None] * len(records)
        self._inbox: Dict[str, np.ndarray] = {}
        self._symbox: Dict[str, int] = {}

        self._compile_forward()
        self._version_guard: Tuple[Tuple[Any, int], ...] = ()
        if training:
            self._compile_backward(graph.root)
        else:
            params = []
            seen: Set[int] = set()
            for record in records:
                for ref in record.args:
                    if isinstance(ref, ParamRef) and id(ref.param) not in seen:
                        seen.add(id(ref.param))
                        params.append(ref.param)
            self._version_guard = tuple((p, p.version) for p in params)

    # -- compilation ------------------------------------------------------
    def _compile_forward(self) -> None:
        records = self.records
        slots = self._slots
        planned: Set[int] = set()
        steps: List[Callable[[], None]] = []
        # First pass: decide which slots can take planned (out=) kernels,
        # so the liveness planner knows which slots own arena storage.
        view_parents: Set[int] = set()
        for record in records:
            if record.op in _VIEW_OPS:
                for ref in _ref_slots(record):
                    view_parents.add(ref.index)
        candidates: Set[int] = set()
        for i, record in enumerate(records):
            if record.op in _VIEW_OPS:
                continue
            candidates.add(i)
        pinned = set(range(len(records))) - candidates
        pinned |= {self._root_slot}
        pinned |= set(self._output_slots.values())
        pinned |= view_parents
        keys = plan_buffers(records, pinned, reuse=not self.training)
        # Exposed for the AUD006 plan-aliasing verifier
        # (repro.analysis.plans): the buffer assignment actually compiled
        # in, and which slots really write into arena storage.
        self._buffer_keys = dict(keys)
        self._pinned_slots = frozenset(pinned)
        self._planned_buffers: Dict[int, np.ndarray] = {}

        for i, record in enumerate(records):
            fetchers = tuple(
                _fetcher(r, slots, self._inbox, self._symbox)
                for r in record.args
            )
            kwfetch = {
                k: _fetcher(v, slots, self._inbox, self._symbox)
                for k, v in record.kwargs.items()
            }
            step = None
            if i in candidates:
                out = record.out.data
                buf = self.arena.buffer(
                    (self._plan_no, keys[i]), out.shape, out.dtype
                )
                try:
                    step = _build_planned(
                        record, i, slots, fetchers, kwfetch, buf
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    raise PlanError(
                        f"planned kernel for {record.op.__name__} failed: {exc}"
                    )
            if step is None:
                step = _generic_step(record, i, slots, fetchers, kwfetch)
            elif i in candidates:
                self._planned_buffers[i] = buf
            steps.append(step)
        self._steps = steps

    def _compile_backward(self, root) -> None:
        order = _topological_order(root)
        gids = {id(t): k for k, t in enumerate(order)}
        self._num_gids = len(order)
        self._root_gid = gids[id(root)]
        # Planned backward kernels, keyed by ctx identity.
        planned_bwd: Dict[int, Callable] = {}
        for record in self.records:
            if not record.requires_grad:
                continue
            ctx = record.ctx
            bwd = None
            if record.op is _conv.Conv2d:
                bwd = _planned_conv_backward(ctx, record.out.data.shape)
            elif record.op is _mm.Linear:
                bwd = _planned_linear_backward(ctx, record.out.data.shape)
            if bwd is not None:
                planned_bwd[id(ctx)] = bwd
        entries: List[Tuple] = []
        for node in reversed(order):
            gid = gids[id(node)]
            ctx = node._ctx
            if ctx is None:
                if node.requires_grad:
                    if not isinstance(node, Parameter):
                        raise PlanError(
                            "trainable non-Parameter leaf in backward graph"
                        )
                    entries.append(("leaf", gid, node))
                continue
            bwd = planned_bwd.get(id(ctx), ctx.backward)
            parent_gids = tuple(gids[id(p)] for p in ctx.parents)
            entries.append(("op", gid, bwd, parent_gids, ctx.needs_input_grad))
        self._backward_entries = entries

    # -- validity ---------------------------------------------------------
    def stale(self) -> bool:
        """True when a guarded Parameter's version moved (inference)."""
        for param, version in self._version_guard:
            if param.version != version:
                return True
        return False

    # -- execution --------------------------------------------------------
    def replay(
        self,
        inputs: Dict[str, np.ndarray],
        symbols: Optional[Dict[str, int]] = None,
    ) -> ReplayResult:
        inbox = self._inbox
        for name in self._input_names:
            inbox[name] = inputs[name]
        if symbols:
            self._symbox.update(symbols)
        slots = self._slots
        for step in self._steps:
            step()
        if self.training:
            self._run_backward()
        outputs = {
            name: slots[slot] for name, slot in self._output_slots.items()
        }
        return ReplayResult(slots[self._root_slot], outputs)

    def _run_backward(self) -> None:
        grads: List[Optional[np.ndarray]] = [None] * self._num_gids
        root_arr = self._slots[self._root_slot]
        grads[self._root_gid] = np.ones_like(root_arr)
        for entry in self._backward_entries:
            if entry[0] == "op":
                _, gid, bwd, parent_gids, needs = entry
                g = grads[gid]
                if g is None:
                    continue
                grads[gid] = None
                input_grads = bwd(g)
                if not isinstance(input_grads, (tuple, list)):
                    input_grads = (input_grads,)
                for pgid, pg, need in zip(parent_gids, input_grads, needs):
                    if pg is None or not need:
                        continue
                    cur = grads[pgid]
                    grads[pgid] = pg if cur is None else cur + pg
            else:
                _, gid, param = entry
                g = grads[gid]
                if g is None:
                    continue
                grads[gid] = None
                param.grad = g if param.grad is None else param.grad + g


def compile_plan(
    graph: Graph,
    training: bool,
    arena: Optional[Arena] = None,
    fuse: bool = True,
    verify: Optional[bool] = None,
) -> Plan:
    """Compile ``graph`` into a :class:`Plan` (raises :class:`PlanError`).

    ``verify=True`` — or the ``REPRO_PLAN_VERIFY`` environment flag when
    ``verify`` is left ``None`` — runs the AUD006 static aliasing
    verifier (:func:`repro.analysis.plans.verify_plan`) on the compiled
    plan and raises :class:`PlanVerificationError` if it proves a
    hazard.  Off by default: it is a debug/CI mode, not a per-trace
    cost.
    """
    try:
        plan = Plan(graph, training=training, arena=arena, fuse=fuse)
    except TraceError:
        raise
    except Exception as exc:
        raise PlanError(f"plan compilation failed: {exc!r}")
    if verify is None:
        import os

        verify = os.environ.get(
            "REPRO_PLAN_VERIFY", ""
        ).strip().lower() not in ("", "0", "false", "off", "no")
    if verify:
        from ..analysis.plans import verify_plan

        findings = verify_plan(plan)
        if findings:
            rendered = "; ".join(f.message for f in findings)
            raise PlanVerificationError(
                f"plan failed AUD006 verification: {rendered}"
            )
    return plan
