"""The execution engine: plan cache, invalidation, and fallback policy.

One :class:`ExecutionEngine` owns the plans for one step shape (a
trainer's step, or a serving model's forward) on one thread.  The flow
per :meth:`execute` call:

- ``mode="eager"`` — run the caller's eager step untouched.
- signature seen before and compiled → **plan hit**: replay.
- stale plan (a guarded ``Parameter.version`` moved) or a signature the
  engine was told to :meth:`invalidate` → **retrace**: run the step
  eagerly under the tracer and recompile.
- unknown signature → **trace** (counted as a plan miss).
- untraceable step (foreign graphs, models that bypass the tape, failed
  compile) → **fallback**: the signature is vetoed and runs eagerly from
  then on.

Tracing piggybacks on a real eager step, so the step that produces a
plan returns its eager results — replay only ever serves *subsequent*
steps, and a veto costs nothing but the bookkeeping.

``run_backward`` is the sanctioned eager backward entry point outside
``repro/nn`` (lint rule RPR008): trainers call it so that every tape
walk is either this function or a compiled plan's schedule.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Set, Tuple

import numpy as np

from ..nn import autograd
from ..nn.tensor import Tensor
from .arena import Arena
from .graph import TraceError
from .plan import Plan, PlanVerificationError, compile_plan
from .tracer import Tracer, tracing

__all__ = ["EngineResult", "ExecutionEngine", "run_backward"]

_MODES = ("trace", "eager")


def run_backward(tensor: Tensor, grad: Optional[np.ndarray] = None) -> None:
    """Run an eager backward pass from ``tensor``.

    This is the one sanctioned entry to the autograd tape outside
    :mod:`repro.nn` and :mod:`repro.engine` (rule RPR008) — eager
    trainers and the engine's own traced steps route through it, so
    plan-vs-eager coverage is decided in exactly one place.
    """
    autograd.backward(tensor, grad)


class EngineResult:
    """Outcome of one engine step.

    ``root`` and ``outputs`` hold arrays (plan buffers on the replay
    path — copy anything that must outlive the step).  ``executed`` is
    ``"replay"`` or ``"eager"``.
    """

    __slots__ = ("executed", "root", "outputs")

    def __init__(self, executed: str, root, outputs) -> None:
        self.executed = executed
        self.root = root
        self.outputs = outputs

    @property
    def replayed(self) -> bool:
        return self.executed == "replay"


class ExecutionEngine:
    """Trace-once/replay executor with an invalidating plan cache."""

    def __init__(
        self,
        mode: str = "trace",
        training: bool = True,
        fuse: bool = True,
        arena: Optional[Arena] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"engine mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.training = training
        self.fuse = fuse
        self.arena = arena if arena is not None else Arena()
        self._plans: Dict[Hashable, Plan] = {}
        self._known: Set[Hashable] = set()
        self._vetoed: Set[Hashable] = set()
        self.plan_hits = 0
        self.plan_misses = 0
        self.retraces = 0
        self.fallbacks = 0

    # -- bookkeeping -------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "retraces": self.retraces,
            "fallbacks": self.fallbacks,
        }

    def invalidate(self) -> None:
        """Drop all compiled plans; known signatures retrace on next use.

        Called on precision-context changes and ``load_state_dict`` —
        anything that may silently change traced topology or constants.
        """
        self._plans.clear()

    def plan_for(self, signature: Hashable) -> Optional[Plan]:
        return self._plans.get(signature)

    def plans(self) -> Dict[Hashable, Plan]:
        """Snapshot of the live plan cache (signature → compiled plan).

        Read-only by convention — the AUD006 sweep
        (``python -m repro.analysis.plans``) iterates this to verify
        every cached plan's buffer assignment.
        """
        return dict(self._plans)

    def veto(self, signature: Hashable) -> None:
        """Permanently exclude ``signature`` from tracing.

        For steps the *caller* knows are unsafe to replay before the
        tracer could find out — e.g. forwards with batch-statistics
        layers whose buffer updates happen outside the tape, or active
        range observers.  Vetoed signatures run (and count) as
        fallbacks.
        """
        self._plans.pop(signature, None)
        self._vetoed.add(signature)

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        signature: Hashable,
        inputs: Dict[str, Tensor],
        symbols: Optional[Dict[str, int]],
        eager_fn: Callable[[], Tuple[Tensor, Dict[str, Tensor]]],
    ) -> EngineResult:
        """Run one step through the plan for ``signature``.

        ``eager_fn`` must execute the complete eager step — including
        the backward pass when ``training`` — over the Tensors in
        ``inputs``, and return ``(root, taps)`` where ``taps`` maps
        output names to graph Tensors.  It runs whenever there is no
        replayable plan; when it runs under the tracer its results are
        still the eager ones.
        """
        if self.mode != "trace":
            root, taps = eager_fn()
            return self._eager_result(root, taps)
        if signature in self._vetoed:
            self.fallbacks += 1
            root, taps = eager_fn()
            return self._eager_result(root, taps)

        plan = self._plans.get(signature)
        if plan is not None and not plan.stale():
            self.plan_hits += 1
            arrays = {
                name: value.data if isinstance(value, Tensor) else value
                for name, value in inputs.items()
            }
            result = plan.replay(arrays, symbols)
            return EngineResult("replay", result.root, result.outputs)

        retracing = plan is not None or signature in self._known
        tracer = Tracer(inputs=inputs, symbols=symbols)
        with tracing(tracer):
            root, taps = eager_fn()
        try:
            graph = tracer.finalize(root, taps)
            new_plan = compile_plan(
                graph, training=self.training, arena=self.arena, fuse=self.fuse
            )
        except PlanVerificationError:
            # An AUD006 hazard in a plan that would have been replayed is
            # a planner bug, not an untraceable step — surface it rather
            # than silently degrading to eager.
            raise
        except TraceError:
            self._plans.pop(signature, None)
            self._vetoed.add(signature)
            self.fallbacks += 1
            return self._eager_result(root, taps)
        self._plans[signature] = new_plan
        self._known.add(signature)
        self.plan_misses += 1
        if retracing:
            self.retraces += 1
        return self._eager_result(root, taps)

    @staticmethod
    def _eager_result(root: Tensor, taps: Dict[str, Tensor]) -> EngineResult:
        outputs = {name: t.data for name, t in taps.items()}
        return EngineResult("eager", root.data, outputs)
