"""The traced step graph: op records and the leaf-reference taxonomy.

A :class:`Graph` is what the tracer produces from one eager step: an
ordered list of :class:`Record` entries (one per ``Function.apply`` call,
in execution order) whose inputs are resolved to *references* instead of
concrete arrays.  The reference kind determines what a replay reads:

=============  ==========================================================
``SlotRef``    output of an earlier record — read the slot filled this
               replay (graph edge).
``DataRef``    a leaf tensor that *aliases* a record output's array
               (``Tensor.detach()`` shares storage) — read the slot's
               current array so stop-gradient branches track the step.
``ParamRef``   a :class:`~repro.nn.module.Parameter` — re-read
               ``param.data`` every replay, so optimizer steps and
               ``load_state_dict`` need no retrace.
``InputRef``   a per-step input (the batch views) — rebound on every
               replay.
``ConstRef``   a genuine trace-time constant (masks, eye matrices whose
               values depend only on static shapes).
``SymbolRef``  a symbolic kwarg value (the sampled precision bits) —
               substituted from the replay's symbol bindings.
=============  ==========================================================

Anything that fits none of these (a tensor carrying a foreign autograd
graph, or a non-Parameter trainable leaf) raises :class:`TraceError`,
which the engine converts into a clean eager fallback.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TraceError",
    "SlotRef",
    "DataRef",
    "ParamRef",
    "InputRef",
    "ConstRef",
    "SymbolRef",
    "Record",
    "Graph",
]


class TraceError(RuntimeError):
    """A step could not be traced; the engine falls back to eager."""


class SlotRef:
    """Reference to the output of record ``index`` (a graph edge)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"SlotRef({self.index})"


class DataRef:
    """A leaf tensor whose array aliases slot ``index``'s output array."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"DataRef({self.index})"


class ParamRef:
    """A Parameter leaf; replays re-read ``param.data``."""

    __slots__ = ("param",)

    def __init__(self, param: Any) -> None:
        self.param = param

    def __repr__(self) -> str:
        return f"ParamRef(shape={tuple(self.param.data.shape)})"


class InputRef:
    """A named per-step input, rebound on every replay."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"InputRef({self.name!r})"


class ConstRef:
    """A trace-time constant array (depends only on static shapes)."""

    __slots__ = ("array",)

    def __init__(self, array: Any) -> None:
        self.array = array

    def __repr__(self) -> str:
        return f"ConstRef(shape={getattr(self.array, 'shape', ())})"


class SymbolRef:
    """A symbolic kwarg value bound per replay (e.g. precision bits)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"SymbolRef({self.name!r})"


class Record:
    """One traced ``Function.apply`` call.

    ``ctx`` is the live Function instance created during the traced step;
    replays re-run ``ctx.forward`` (overwriting its saved state) and, for
    grad-carrying nodes, ``ctx.backward`` in the captured schedule.
    """

    __slots__ = ("op", "ctx", "args", "kwargs", "out", "requires_grad")

    def __init__(self, op, ctx, args, kwargs, out, requires_grad) -> None:
        self.op = op
        self.ctx = ctx
        self.args: Tuple[Any, ...] = args
        self.kwargs: Dict[str, Any] = kwargs
        self.out = out  # the Tensor produced during the trace
        self.requires_grad: bool = requires_grad

    def __repr__(self) -> str:
        return f"Record({self.op.__name__}, args={self.args})"


class Graph:
    """Ordered op records plus the tensors that anchor compilation."""

    def __init__(
        self,
        records: List[Record],
        root,
        outputs: Dict[str, Any],
        input_names: Tuple[str, ...],
        symbols: Tuple[str, ...],
    ) -> None:
        self.records = records
        self.root = root  # loss Tensor (must be a record output)
        self.outputs = outputs  # name -> SlotRef for extra taps
        self.input_names = input_names
        self.symbols = symbols

    def __len__(self) -> int:
        return len(self.records)

    def slot_of(self, tensor) -> Optional[int]:
        for i, record in enumerate(self.records):
            if record.out is tensor:
                return i
        return None

    def __repr__(self) -> str:
        return f"Graph({len(self.records)} records, {len(self.outputs)} outputs)"
