"""Tracing graph executor: trace one eager step, compile, replay.

The engine records a single eager training or serving step into a
:class:`~repro.engine.graph.Graph` (via a ``Function.apply`` hook),
compiles it into a :class:`~repro.engine.plan.Plan` — fusing elementwise
chains and pre-planning output buffers in a reusing
:class:`~repro.engine.arena.Arena` — and replays the plan on subsequent
steps.  Replays are byte-identical to eager execution by construction;
anything the tracer or compiler cannot prove replayable falls back to
eager, permanently for that signature.

:func:`run_backward` is the sanctioned eager entry to the autograd tape
outside :mod:`repro.nn` (lint rule RPR008).
"""

from .arena import Arena, plan_buffers
from .engine import EngineResult, ExecutionEngine, run_backward
from .graph import (
    ConstRef,
    DataRef,
    Graph,
    InputRef,
    ParamRef,
    Record,
    SlotRef,
    SymbolRef,
    TraceError,
)
from .plan import (
    Plan,
    PlanError,
    PlanVerificationError,
    ReplayResult,
    compile_plan,
)
from .tracer import Tracer, tracing

__all__ = [
    "Arena",
    "ConstRef",
    "DataRef",
    "EngineResult",
    "ExecutionEngine",
    "Graph",
    "InputRef",
    "ParamRef",
    "Plan",
    "PlanError",
    "PlanVerificationError",
    "Record",
    "ReplayResult",
    "SlotRef",
    "SymbolRef",
    "TraceError",
    "Tracer",
    "compile_plan",
    "plan_buffers",
    "run_backward",
    "tracing",
]
