"""Pre-planned output buffers for compiled plans.

Two planning modes share one :class:`Arena`:

- **Training plans** give every graph slot its own persistent buffer
  (``reuse=False``).  Backward reads forward activations after the whole
  forward has run, so no within-step sharing is legal; the win is that a
  replayed step performs zero output allocations after the first.
- **Inference plans** (``reuse=True``) run a greedy liveness scan: a
  slot's buffer returns to the free pool after the last record that reads
  it, so later slots of the same shape/dtype reuse the storage.  Final
  outputs (the root and named taps) are pinned and never pooled.

Arena keys are explicit tuples (``("slot", i)`` or ``("pool", n)``), so
two plans compiled against the same arena can only collide when handed
the same key on purpose.  Buffers are plain ``np.empty`` arrays; kernels
own the contract of fully overwriting them.  Anything downstream that
caches against array *identity* (the ``repro.quant.lowered`` GEMM
operand cache) must also key on a version counter, because an arena
deliberately serves the same ndarray object with new contents every
replay — see ``LoweredModule._weight_operand``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

import numpy as np

from .graph import DataRef, Record, SlotRef

__all__ = ["Arena", "plan_buffers"]


class Arena:
    """A pool of named, persistently owned output buffers."""

    def __init__(self) -> None:
        self._buffers: Dict[Any, np.ndarray] = {}

    def buffer(self, key: Any, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Return the buffer for ``key``, (re)allocating on shape change."""
        shape = tuple(shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def __repr__(self) -> str:
        return f"Arena({len(self)} buffers, {self.nbytes} bytes)"


def _last_uses(records: List[Record]) -> Dict[int, int]:
    """Map each slot to the index of the last record that reads it."""
    last: Dict[int, int] = {}
    for i, record in enumerate(records):
        for ref in record.args:
            if isinstance(ref, (SlotRef, DataRef)):
                last[ref.index] = i
        for ref in record.kwargs.values():
            if isinstance(ref, (SlotRef, DataRef)):
                last[ref.index] = i
    return last


def plan_buffers(
    records: List[Record],
    pinned: Iterable[int],
    reuse: bool,
) -> Dict[int, Any]:
    """Assign an arena key to every record's output slot.

    ``pinned`` slots (root, taps, anything read after the replay returns)
    always get private keys.  With ``reuse=False`` every slot does.  With
    ``reuse=True`` a freed slot's key re-enters a per-(shape, dtype) free
    pool; inputs of record ``i`` are released only *after* slot ``i`` is
    assigned, so an op's output can never alias one of its own inputs.
    """
    pinned_set: Set[int] = set(pinned)
    keys: Dict[int, Any] = {}
    if not reuse:
        for i in range(len(records)):
            keys[i] = ("slot", i)
        return keys

    last = _last_uses(records)
    free: Dict[Tuple[Tuple[int, ...], Any], List[Any]] = {}
    fresh = 0
    for i, record in enumerate(records):
        out = record.out.data
        pool_key = (tuple(out.shape), out.dtype.str)
        if i in pinned_set:
            keys[i] = ("slot", i)
        else:
            pool = free.get(pool_key)
            if pool:
                keys[i] = pool.pop()
            else:
                keys[i] = ("pool", fresh)
                fresh += 1
        # Release inputs whose final read was this record.
        for ref in list(record.args) + list(record.kwargs.values()):
            if not isinstance(ref, (SlotRef, DataRef)):
                continue
            j = ref.index
            if j in pinned_set or last.get(j) != i:
                continue
            src = records[j].out.data
            free.setdefault((tuple(src.shape), src.dtype.str), []).append(
                keys[j]
            )
            # A slot released once must not be released again via a
            # second ref to it in this same record.
            pinned_set.add(j)
        # Slots never read at all (dead taps) stay private; they were
        # assigned above and simply never enter the pool.
    return keys
