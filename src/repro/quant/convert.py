"""The staged quantization API: ``prepare()`` → ``calibrate()`` → ``convert()``.

Stage 1, :func:`prepare`, swaps every Conv2d/Linear for its
precision-switchable twin (sharing Parameters, so training continues to
work) and attaches an activation-range observer.  Stage 2,
:func:`repro.quant.calibrate` (re-exported here), fits those observers on
representative data.  Stage 3, :func:`convert`, folds BatchNorm into the
preceding convs, freezes the calibrated ranges, lowers every QConv2d /
QLinear to the integer kernels of :mod:`repro.quant.lowered`, audits the
result with the repo's AUD001 quantization-coverage check, and verifies
the integer model against the frozen-range fake-quant reference.

``quantize_model`` (the pre-staged name for stage 1) survives as a
``DeprecationWarning`` shim.
"""

from __future__ import annotations

import warnings
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..nn.autograd import no_grad
from ..nn.layers.conv import Conv2d
from ..nn.layers.linear import Linear
from ..nn.module import Module
from ..nn.tensor import Tensor, forbid_silent_downcast
from .context import apply_precision
from .fold import fold_batch_norm
from .lowered import IntConv2d, IntLinear, LoweredModule
from .observer import EmaMinMaxObserver, MinMaxObserver
from .qmodules import QConv2d, QLinear, QuantizedModule

__all__ = [
    "prepare",
    "convert",
    "freeze_reference",
    "ConvertError",
    "quantize_model",
    "set_precision",
    "count_quantized_modules",
]

_OBSERVERS = {"minmax": MinMaxObserver, "ema": EmaMinMaxObserver}


class ConvertError(RuntimeError):
    """Raised when a model cannot be (or was incorrectly) lowered."""


def _named_children(model: Module) -> List[Tuple[str, Module, str, Module]]:
    """Snapshot of ``(full_name, parent, child_name, child)`` for surgery.

    Materialized up front because replacing children mutates the module
    maps being traversed.
    """
    out = []
    for parent_name, parent in list(model.named_modules()):
        for name, child in list(parent._modules.items()):
            full = f"{parent_name}.{name}" if parent_name else name
            out.append((full, parent, name, child))
    return out


def prepare(
    model: Module,
    skip: Optional[Callable[[str, Module], bool]] = None,
    observer: Optional[str] = "minmax",
) -> Module:
    """Stage 1: swap every Conv2d/Linear for its quantized twin.

    Replacement layers *share* the original Parameter objects, so
    optimizers built on either view stay valid.  ``skip(name, module)``
    may exclude layers (e.g. a projection head that should stay
    full-precision); ``name`` is the module's full dotted path from the
    model root (``"encoder.stages.0.conv1"``), so callers can match
    nested layers unambiguously.  ``observer`` selects the activation
    observer attached for later calibration: ``"minmax"`` (default),
    ``"ema"``, a zero-argument factory, or None to attach none.  The
    model is modified in place and returned.
    """
    if observer is None:
        factory = None
    elif callable(observer):
        factory = observer
    else:
        try:
            factory = _OBSERVERS[observer]
        except KeyError:
            raise ValueError(
                f"unknown observer {observer!r}; expected one of "
                f"{sorted(_OBSERVERS)}, a factory callable, or None"
            ) from None
    for full_name, parent, name, child in _named_children(model):
        if isinstance(child, (QuantizedModule, LoweredModule)):
            continue
        if skip is not None and skip(full_name, child):
            continue
        if isinstance(child, Conv2d):
            q = QConv2d.from_float(child)
        elif isinstance(child, Linear):
            q = QLinear.from_float(child)
        else:
            continue
        if factory is not None:
            q.activation_observer = factory()
        setattr(parent, name, q)
    return model


def _validate_deployable(qmods) -> None:
    problems = []
    for path, m in qmods:
        if m.precision is None:
            problems.append(f"{path}: no precision set")
        if not m.quantize_activations:
            problems.append(
                f"{path}: quantize_activations disabled (weight-only "
                f"layers cannot lower to integer kernels)"
            )
        rng = m.activation_range
        if rng is None:
            problems.append(f"{path}: no calibrated activation range")
        elif not rng[0] < rng[1]:
            problems.append(f"{path}: degenerate activation range {rng}")
    if problems:
        raise ConvertError(
            "model is not ready for convert():\n  "
            + "\n  ".join(problems)
            + "\nRun prepare(model), apply a precision, and calibrate() first."
        )


def freeze_reference(model: Module, *, fold: bool = True) -> Module:
    """Freeze a calibrated QAT model into the deployment fake-quant oracle.

    Applies exactly the semantics :func:`convert` verifies the integer
    engine against, without lowering: eval mode, BatchNorm folded into
    the preceding convs (``fold=False`` skips), calibrated activation
    ranges frozen, per-channel weight grids, and weights promoted to
    float64 so fake dequantization is exactly ``step * code``.  Useful
    as the float baseline when benchmarking the integer engine, or to
    inspect deployment numerics with autograd still available.
    """
    model.eval()
    qmods = [
        (path, m)
        for path, m in model.named_modules()
        if isinstance(m, QuantizedModule)
    ]
    if not qmods:
        raise ConvertError(
            "freeze_reference() found no quantized modules; run "
            "prepare(model) and calibrate() first"
        )
    _validate_deployable(qmods)
    if fold:
        fold_batch_norm(model)
    # Weight promotion is exact (float32 ⊂ float64), so integer codes are
    # unchanged; see convert() below for why the reference needs it.
    for _, m in qmods:
        m.frozen_range = True
        m.per_channel_weights = True
        m.weight.data = m.weight.data.astype(np.float64)
    return model


def convert(
    model: Module,
    input_shape: Optional[Tuple[int, ...]] = None,
    *,
    bits: Optional[int] = None,
    fold: bool = True,
    check: bool = True,
    rtol: float = 1e-3,
    atol: float = 1e-5,
) -> Module:
    """Stage 3: lower a calibrated model to the integer inference engine.

    Pipeline: validate every quantized module is deployable → fold
    BatchNorm into preceding convs (``fold=False`` skips) → freeze
    calibrated ranges (deployment fake-quant semantics) → capture a
    reference forward on a random probe of ``input_shape`` → lower every
    QConv2d/QLinear to IntConv2d/IntLinear → audit the result with
    AUD001 (every conv/linear must be on the integer path) → check the
    integer output matches the fake-quant reference within
    ``rtol``/``atol``.  Raises :class:`ConvertError` on any failure.

    The returned model is inference-only: integer kernels emit constant
    tensors and the model should stay in eval mode.  Pass
    ``input_shape=None`` (or ``check=False``) to skip the probe-based
    equivalence check, e.g. for models whose input is not a single
    4-d/2-d array.
    """
    model.eval()
    if bits is not None:
        apply_precision(model, bits)
    qmods = [
        (path, m)
        for path, m in model.named_modules()
        if isinstance(m, QuantizedModule)
    ]
    if not qmods:
        if any(isinstance(m, LoweredModule) for m in model.modules()):
            return model  # already converted: idempotent
        raise ConvertError(
            "convert() found no quantized modules; run prepare(model) "
            "and calibrate() first"
        )
    # Deployment reference semantics: frozen calibrated ranges and
    # per-channel weights — exactly the grids the integer kernels use.
    # Weights are promoted to float64 so the fake-quant reference
    # dequantizes to exactly ``step * code`` (a float32 weight tensor
    # would round per element, and a perturbed activation that lands on a
    # code boundary in a later layer flips by a whole quantization step).
    freeze_reference(model, fold=fold)

    probe = reference = None
    if check and input_shape is not None:
        rng = np.random.default_rng(0)
        probe = rng.standard_normal(input_shape)
        with no_grad(), forbid_silent_downcast(
            "the convert() fake-quant reference forward"
        ):
            # float64 throughout (a silent Tensor downcast now raises): the
            # reference must share the integer engine's activation values
            # exactly, or code-boundary rounding flips whole steps.
            reference = np.asarray(
                model(Tensor(probe, dtype=np.float64)).data, dtype=np.float64
            )

    for _, parent, name, child in _named_children(model):
        if isinstance(child, QConv2d):
            setattr(parent, name, IntConv2d.from_qat(child))
        elif isinstance(child, QLinear):
            setattr(parent, name, IntLinear.from_qat(child))

    # The AUD001 gate, for real: a converted model with any conv/linear
    # off the integer path is a deployment bug, not a warning.
    from ..analysis.graph import audit_quantization

    report = audit_quantization(model, "convert")
    if report.coverage < 1.0:
        bypassed = [e.path for e in report.bypassing()]
        raise ConvertError(
            "convert() left conv/linear layers outside the integer engine "
            f"(AUD001): {bypassed}"
        )

    if probe is not None:
        with no_grad(), forbid_silent_downcast(
            "the convert() integer-engine check forward"
        ):
            lowered_out = np.asarray(
                model(Tensor(probe, dtype=np.float64)).data, dtype=np.float64
            )
        if not np.allclose(lowered_out, reference, rtol=rtol, atol=atol):
            err = float(np.max(np.abs(lowered_out - reference)))
            raise ConvertError(
                f"integer engine diverges from the fake-quant reference: "
                f"max abs error {err:.3g} (rtol={rtol}, atol={atol})"
            )
    return model


def quantize_model(
    model: Module,
    skip: Optional[Callable[[str, Module], bool]] = None,
) -> Module:
    """Deprecated alias for :func:`prepare` (stage 1 of the staged API).

    Note one behaviour fix inherited from ``prepare``: the ``skip``
    callback now receives the module's *full dotted path* (it used to see
    only the leaf name, which made nested layers indistinguishable).
    """
    warnings.warn(
        "quantize_model() is deprecated; use repro.quant.prepare() "
        "(stage 1 of the prepare()/calibrate()/convert() pipeline)",
        DeprecationWarning,
        stacklevel=2,
    )
    return prepare(model, skip=skip, observer="minmax")


def set_precision(*args, **kwargs):
    """Removed.  Raises ``TypeError`` pointing at the supported APIs."""
    raise TypeError(
        "repro.quant.set_precision() has been removed; use the scoped "
        "'with repro.quant.precision(model, bits):' context or "
        "repro.quant.apply_precision(model, bits)"
    )


def count_quantized_modules(model: Module) -> int:
    """Number of precision-switchable modules in ``model``."""
    return sum(1 for m in model.modules() if isinstance(m, QuantizedModule))
