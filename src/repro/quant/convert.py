"""Model surgery: swap float layers for quantized ones, switch precision."""

from __future__ import annotations

import warnings
from typing import Callable, Optional

from ..nn.layers.conv import Conv2d
from ..nn.layers.linear import Linear
from ..nn.module import Module
from .context import apply_precision
from .qmodules import QConv2d, QLinear, QuantizedModule

__all__ = ["quantize_model", "set_precision", "count_quantized_modules"]


def quantize_model(
    model: Module,
    skip: Optional[Callable[[str, Module], bool]] = None,
) -> Module:
    """Replace every Conv2d/Linear in ``model`` with its quantized twin.

    Replacement layers *share* the original Parameter objects, so optimizers
    built on either view stay valid.  ``skip(name, module)`` may exclude
    layers (e.g. a projection head that should stay full-precision).  The
    model is modified in place and returned.
    """
    for module in model.modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, QuantizedModule):
                continue
            full_name = name
            if skip is not None and skip(full_name, child):
                continue
            if isinstance(child, Conv2d):
                setattr(module, name, QConv2d.from_float(child))
            elif isinstance(child, Linear):
                setattr(module, name, QLinear.from_float(child))
    return model


def set_precision(model: Module, bits: Optional[int]) -> int:
    """Deprecated alias for :func:`repro.quant.apply_precision`.

    Prefer the scoped ``with precision(model, bits):`` context
    (:class:`repro.quant.PrecisionContext`), or ``apply_precision`` for
    open-ended switches.  Kept as a shim for external callers; emits
    ``DeprecationWarning``.
    """
    warnings.warn(
        "set_precision() is deprecated; use the scoped "
        "'with repro.quant.precision(model, bits):' context or "
        "repro.quant.apply_precision()",
        DeprecationWarning,
        stacklevel=2,
    )
    return apply_precision(model, bits)


def count_quantized_modules(model: Module) -> int:
    """Number of precision-switchable modules in ``model``."""
    return sum(1 for m in model.modules() if isinstance(m, QuantizedModule))
