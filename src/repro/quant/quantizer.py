"""The linear quantizer of the paper (Eq. 10) and a learnable-step variant.

Eq. 10:  ``A_q = S_a * round(A / S_a)``, with ``S_a = A_range / (2^q - 1)``
where ``A_range`` is the dynamic range (max - min) of the tensor being
quantized.  Both weights and activations are quantized this way.

The paper notes that *learnable* quantizers are unstable when the encoder is
switched between precisions every iteration, which is why the fixed linear
quantizer is adopted; we ship :class:`LearnableQuantizer` as well so that
the instability claim can be examined (see the quantizer ablation bench).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..nn.autograd import Function
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor, as_tensor

__all__ = [
    "linear_quantize",
    "linear_quantize_per_view",
    "linear_quantize_per_channel",
    "linear_quantize_static",
    "integer_quantization_params",
    "quantize_to_int",
    "LinearQuantizer",
    "LearnableQuantizer",
]


def quantization_step(a_min: float, a_max: float, bits: int) -> float:
    """Step size ``S = A_range / (2^q - 1)`` from Eq. 10."""
    if bits < 1:
        raise ValueError(f"bit-width must be >= 1, got {bits}")
    a_range = float(a_max) - float(a_min)
    return a_range / (2.0 ** bits - 1.0)


def linear_quantize(
    array: np.ndarray,
    bits: int,
    a_min: Optional[float] = None,
    a_max: Optional[float] = None,
) -> np.ndarray:
    """Apply Eq. 10 to a raw numpy array (no autograd).

    The dynamic range defaults to the array's own min/max, matching the
    paper's per-tensor dynamic quantization.  A constant array (zero range)
    is returned unchanged — there is nothing to quantize.
    """
    array = np.asarray(array)
    lo = float(array.min()) if a_min is None else float(a_min)
    hi = float(array.max()) if a_max is None else float(a_max)
    step = quantization_step(lo, hi, bits)
    if step == 0.0 or not math.isfinite(step):
        return array.copy()
    return (step * np.round(array / step)).astype(array.dtype)


def linear_quantize_per_channel(
    array: np.ndarray, bits: int, axis: int = 0
) -> np.ndarray:
    """Per-channel Eq. 10: an independent dynamic range per slice of ``axis``.

    Standard practice for convolution weights (each output filter gets its
    own step size), offered as an extension beyond the paper's per-tensor
    scheme; see the per-channel ablation bench.
    """
    array = np.asarray(array)
    if not -array.ndim <= axis < array.ndim:
        raise ValueError(f"axis {axis} out of range for ndim {array.ndim}")
    if bits < 1:
        raise ValueError(f"bit-width must be >= 1, got {bits}")
    reduce_axes = tuple(i for i in range(array.ndim) if i != axis % array.ndim)
    lo = array.min(axis=reduce_axes, keepdims=True)
    hi = array.max(axis=reduce_axes, keepdims=True)
    step = (hi - lo) / (2.0 ** bits - 1.0)
    safe_step = np.where(step == 0.0, 1.0, step)
    quantized = safe_step * np.round(array / safe_step)
    return np.where(step == 0.0, array, quantized).astype(array.dtype)


def linear_quantize_per_view(
    array: np.ndarray, bits: int, views: int
) -> np.ndarray:
    """Eq. 10 applied independently to each of ``views`` equal batch chunks.

    A fused multi-view batch (two augmented views concatenated along axis 0)
    must quantize each view with *its own* dynamic range, otherwise the
    fused forward would differ from two separate forwards.  Chunk ``v`` of
    the result is bit-for-bit ``linear_quantize(array[v], bits)``.
    """
    array = np.asarray(array)
    if views < 1:
        raise ValueError(f"views must be >= 1, got {views}")
    if views == 1:
        return linear_quantize(array, bits)
    n = array.shape[0]
    if n % views != 0:
        raise ValueError(
            f"batch of {n} samples does not split into {views} equal views"
        )
    chunk = n // views
    out = np.empty_like(array)
    for v in range(views):
        sl = slice(v * chunk, (v + 1) * chunk)
        out[sl] = linear_quantize(array[sl], bits)
    return out


def integer_quantization_params(
    a_min: float, a_max: float, bits: int
) -> Tuple[float, int, int]:
    """Integer grid of the Eq. 10 quantizer over a *fixed* range.

    Returns ``(step, q_lo, q_hi)`` such that representable values are
    ``step * n`` for integer codes ``n`` in ``[q_lo, q_hi]`` with exactly
    ``2^bits`` codes.  A degenerate range (``a_min == a_max`` or a
    non-finite step) is signalled by ``step == 0.0``.
    """
    step = quantization_step(a_min, a_max, bits)
    if step == 0.0 or not math.isfinite(step):
        return 0.0, 0, 0
    q_lo = int(round(float(a_min) / step))
    return step, q_lo, q_lo + 2 ** bits - 1


def quantize_to_int(
    array: np.ndarray, bits: int, a_min: float, a_max: float
) -> Tuple[np.ndarray, float, int]:
    """Quantize to integer codes over a fixed calibrated range.

    Unlike :func:`linear_quantize` (dynamic range, never clips), the
    static form clips to the calibrated ``[a_min, a_max]`` grid — the
    deployment semantics of the integer engine, where codes must fit the
    ``2^bits`` storage grid.  Returns ``(codes, step, q_lo)`` with
    ``codes`` int64; dequantization is ``step * codes``.  A degenerate
    range yields all-zero codes with ``step == 0.0`` (the caller decides
    how to represent the constant).
    """
    array = np.asarray(array)
    step, q_lo, q_hi = integer_quantization_params(a_min, a_max, bits)
    if step == 0.0:
        return np.zeros(array.shape, dtype=np.int64), 0.0, 0
    codes = np.clip(np.round(array / step), q_lo, q_hi).astype(np.int64)
    return codes, step, q_lo


def linear_quantize_static(
    array: np.ndarray, bits: int, a_min: float, a_max: float
) -> np.ndarray:
    """Eq. 10 over a fixed calibrated range, with clipping.

    Bit-for-bit the dequantization of :func:`quantize_to_int`, so a
    fake-quantized reference forward using this function matches the
    integer engine's requantized output up to float rounding in the GEMM.
    """
    array = np.asarray(array)
    codes, step, _ = quantize_to_int(array, bits, a_min, a_max)
    if step == 0.0:
        return np.full_like(array, a_min)
    return (step * codes).astype(array.dtype)


class _FakeQuantSTE(Function):
    """Quantized forward, straight-through (identity) backward.

    The dynamic range always covers the tensor's values, so no clipping
    occurs and the straight-through gradient needs no mask.
    """

    def forward(self, a, bits, a_min=None, a_max=None):
        return linear_quantize(a, bits, a_min, a_max)

    def backward(self, grad):
        return (grad,)


class _FakeQuantStaticSTE(Function):
    """Static-range (clipping) quantized forward, straight-through backward.

    Used for deployment-semantics forwards (frozen observer ranges); the
    straight-through gradient is unmasked to match the repo's Eq. 10 STE
    convention — frozen-range forwards are an inference construct, not a
    training path.
    """

    def forward(self, a, bits, a_min, a_max):
        return linear_quantize_static(a, bits, a_min, a_max)

    def backward(self, grad):
        return (grad,)


class _FakeQuantPerChannelSTE(Function):
    """Per-channel quantized forward, straight-through backward."""

    def forward(self, a, bits, axis=0):
        return linear_quantize_per_channel(a, bits, axis)

    def backward(self, grad):
        return (grad,)


class _FakeQuantPerViewSTE(Function):
    """Per-view-chunk quantized forward, straight-through backward."""

    def forward(self, a, bits, views):
        return linear_quantize_per_view(a, bits, views)

    def backward(self, grad):
        return (grad,)


class LinearQuantizer:
    """Callable quantizer object implementing the paper's scheme with STE.

    Parameters
    ----------
    observer:
        Optional range observer (see :mod:`repro.quant.observer`).  When
        None, the dynamic range is recomputed from each tensor (the paper's
        configuration).
    """

    def __init__(self, observer=None) -> None:
        self.observer = observer

    def __call__(self, tensor: Tensor, bits: Optional[int]) -> Tensor:
        """Fake-quantize ``tensor`` to ``bits``; identity when bits is None."""
        if bits is None:
            return as_tensor(tensor)
        tensor = as_tensor(tensor)
        if self.observer is not None:
            lo, hi = self.observer.update(tensor.data)
        else:
            lo = hi = None
        return _FakeQuantSTE.apply(tensor, bits=bits, a_min=lo, a_max=hi)

    def __repr__(self) -> str:
        return f"LinearQuantizer(observer={self.observer!r})"


class _LearnableQuantSTE(Function):
    """LSQ-style quantization with a learnable step size.

    ``x_q = s * round(clip(x / s, qmin, qmax))``; the input gradient is
    straight-through inside the clip range, and the step-size gradient
    follows the LSQ estimator: ``round(v) - v`` for in-range values and the
    clip bound for clipped values.
    """

    def forward(self, a, step, bits):
        qmax = 2.0 ** (bits - 1) - 1.0
        qmin = -(2.0 ** (bits - 1))
        raw = float(np.asarray(step).reshape(-1)[0])
        self.sign = -1.0 if raw < 0 else 1.0
        s = max(abs(raw), 1e-8)
        v = a / s
        self.in_range = (v >= qmin) & (v <= qmax)
        clipped = np.clip(v, qmin, qmax)
        rounded = np.round(clipped)
        self.step_grad_terms = np.where(self.in_range, rounded - v, clipped)
        return (s * rounded).astype(a.dtype)

    def backward(self, grad):
        grad_x = grad * self.in_range
        grad_s = np.sum(grad * self.step_grad_terms) * self.sign
        return grad_x, np.asarray([grad_s], dtype=np.float32)


class LearnableQuantizer(Module):
    """Learnable-step quantizer module (ablation; unstable per the paper)."""

    def __init__(self, init_step: float = 0.05) -> None:
        super().__init__()
        if init_step <= 0:
            raise ValueError(f"init_step must be positive, got {init_step}")
        self.step = Parameter(np.array([init_step], dtype=np.float32))

    def forward(self, x: Tensor, bits: Optional[int]) -> Tensor:
        if bits is None:
            return as_tensor(x)
        return _LearnableQuantSTE.apply(as_tensor(x), self.step, bits=bits)


def quantization_error(array: np.ndarray, bits: int) -> Tuple[float, float]:
    """Return (max-abs, rms) quantization error of Eq. 10 at ``bits``."""
    q = linear_quantize(array, bits)
    err = np.abs(np.asarray(array, dtype=np.float64) - q)
    return float(err.max()), float(np.sqrt(np.mean(err ** 2)))
