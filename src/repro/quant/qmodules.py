"""Precision-switchable layers: quantized Conv2d and Linear.

Each module carries a mutable ``precision`` attribute (bit-width, or None
for full precision).  During Contrastive Quant training the precision is
applied around each forward with :class:`repro.quant.PrecisionContext`
(scoped; restores the previous bits on exit), which makes the same weights
produce differently-augmented features.

Both the weights and the input activations are fake-quantized (Eq. 10 +
straight-through estimator), matching the paper's "weights and activations"
augmentation.  Weight quantization consults the active
:class:`~repro.quant.QuantCache` (if any) so repeated same-precision
forwards within one step reuse the memoized quantized weight; activation
quantization honours the active fused-view count so concatenated
multi-view batches quantize each view with its own dynamic range.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.autograd import is_grad_enabled
from ..nn.layers.conv import Conv2d
from ..nn.layers.linear import Linear
from ..nn.module import Parameter
from .cache import active_cache, active_views
from .fake_quant import (
    fake_quantize,
    fake_quantize_per_channel,
    fake_quantize_per_view,
    fake_quantize_static,
)

__all__ = ["QuantizedModule", "QConv2d", "QLinear"]


class QuantizedModule:
    """Mixin marking a module as precision-switchable.

    ``precision is None`` means full precision; an integer selects the
    bit-width used for both the weight and the incoming activation.
    ``quantize_activations`` can be disabled for weight-only ablations.

    Deployment plumbing (the staged ``prepare()/calibrate()/convert()``
    pipeline): :func:`repro.quant.prepare` attaches an
    ``activation_observer``; :func:`repro.quant.calibrate` switches
    ``observing`` on while it streams calibration batches through the
    model so the observer fits the input range; and setting
    ``frozen_range`` makes forwards quantize activations against that
    *fixed* calibrated range (clipping to its grid) instead of the
    per-call dynamic range — the exact semantics the lowered integer
    kernels implement, which is what makes the fake-quant model a
    reference oracle for :func:`repro.quant.convert`.
    """

    precision: Optional[int] = None
    quantize_activations: bool = True
    #: quantize the weight with one dynamic range per output channel
    #: (extension beyond the paper's per-tensor scheme).
    per_channel_weights: bool = False
    #: range observer attached by ``prepare()`` (None when absent).
    activation_observer = None
    #: True only while ``calibrate()`` streams batches through the model.
    observing: bool = False
    #: quantize activations with the observer's frozen range (deployment
    #: semantics) instead of the per-call dynamic range.
    frozen_range: bool = False

    def set_precision(self, bits: Optional[int]) -> None:
        if bits is not None:
            bits = int(bits)
            if not 1 <= bits <= 32:
                raise ValueError(f"precision must be in [1, 32], got {bits}")
        self.precision = bits

    @property
    def calibrated(self) -> bool:
        """True once the activation observer holds a fitted range."""
        obs = self.activation_observer
        return obs is not None and obs.min is not None

    @property
    def activation_range(self) -> Optional[tuple]:
        """The calibrated ``(lo, hi)`` input range, or None."""
        if not self.calibrated:
            return None
        return (float(self.activation_observer.min),
                float(self.activation_observer.max))

    def _quantize_input(self, x):
        if self.precision is None or not self.quantize_activations:
            return x
        if self.observing and self.activation_observer is not None:
            self.activation_observer.update(np.asarray(x.data))
        if self.frozen_range and self.calibrated:
            lo, hi = self.activation_range
            return fake_quantize_static(x, self.precision, lo, hi)
        views = active_views()
        if views > 1:
            return fake_quantize_per_view(x, self.precision, views)
        return fake_quantize(x, self.precision)

    def _quantize_weight(self, weight):
        if self.precision is None:
            return weight
        cache = active_cache()
        if cache is not None and isinstance(weight, Parameter):
            return cache.fetch(
                weight,
                self.precision,
                self.per_channel_weights,
                is_grad_enabled(),
                lambda: self._compute_quantized_weight(weight),
            )
        return self._compute_quantized_weight(weight)

    def _compute_quantized_weight(self, weight):
        if self.per_channel_weights:
            return fake_quantize_per_channel(weight, self.precision, axis=0)
        return fake_quantize(weight, self.precision)


class QConv2d(Conv2d, QuantizedModule):
    """Conv2d whose weight and input are quantized to ``self.precision``."""

    def __init__(self, *args, precision: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.precision = precision
        self.quantize_activations = True

    @classmethod
    def from_float(cls, conv: Conv2d) -> "QConv2d":
        """Wrap an existing Conv2d, sharing its Parameter objects."""
        from ..nn.module import Module

        q = cls.__new__(cls)
        Module.__init__(q)
        q.in_channels = conv.in_channels
        q.out_channels = conv.out_channels
        q.kernel_size = conv.kernel_size
        q.stride = conv.stride
        q.padding = conv.padding
        q.groups = conv.groups
        q.weight = conv.weight  # shared Parameter: training updates both views
        q.bias = conv.bias
        q.precision = None
        q.quantize_activations = True
        return q

    def forward(self, x):
        from ..nn import functional as F

        x = self._quantize_input(x)
        weight = self._quantize_weight(self.weight)
        return F.conv2d(
            x,
            weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def __repr__(self) -> str:
        return (
            f"QConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, precision={self.precision})"
        )


class QLinear(Linear, QuantizedModule):
    """Linear whose weight and input are quantized to ``self.precision``."""

    def __init__(self, *args, precision: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.precision = precision
        self.quantize_activations = True

    @classmethod
    def from_float(cls, linear: Linear) -> "QLinear":
        """Wrap an existing Linear, sharing its Parameter objects."""
        from ..nn.module import Module

        q = cls.__new__(cls)
        Module.__init__(q)
        q.in_features = linear.in_features
        q.out_features = linear.out_features
        q.weight = linear.weight
        q.bias = linear.bias
        q.precision = None
        q.quantize_activations = True
        return q

    def forward(self, x):
        from ..nn import functional as F

        x = self._quantize_input(x)
        weight = self._quantize_weight(self.weight)
        return F.linear(x, weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"QLinear(in_features={self.in_features}, "
            f"out_features={self.out_features}, precision={self.precision})"
        )
