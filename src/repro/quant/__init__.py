"""Quantization library: the paper's linear quantizer and model plumbing.

Implements Eq. 10 of the paper (dynamic-range linear quantization of weights
and activations), fake quantization with a straight-through estimator so
quantized forward passes remain trainable, precision sets for per-iteration
sampling, and precision-switchable ``QConv2d`` / ``QLinear`` modules.
Precision is applied through the scoped :class:`PrecisionContext`
(``with precision(model, bits): ...``), which also activates an optional
:class:`QuantCache` memoizing fake-quantized weights across same-step
forwards and a fused-view count for multi-view batching.
"""

from .cache import QuantCache, active_cache, active_views, quant_execution_scope
from .context import PrecisionContext, apply_precision, precision
from .convert import count_quantized_modules, quantize_model, set_precision
from .fake_quant import (
    fake_quantize,
    fake_quantize_per_channel,
    fake_quantize_per_view,
)
from .observer import EmaMinMaxObserver, MinMaxObserver
from .precision_set import FULL_PRECISION, PrecisionSet
from .qmodules import QConv2d, QLinear, QuantizedModule
from .quantizer import (
    LearnableQuantizer,
    LinearQuantizer,
    linear_quantize,
    linear_quantize_per_channel,
    linear_quantize_per_view,
)
from .schedule import CyclicPrecisionSchedule, RandomPrecisionSampler

__all__ = [
    "linear_quantize",
    "linear_quantize_per_channel",
    "linear_quantize_per_view",
    "LinearQuantizer",
    "LearnableQuantizer",
    "fake_quantize",
    "fake_quantize_per_channel",
    "fake_quantize_per_view",
    "MinMaxObserver",
    "EmaMinMaxObserver",
    "PrecisionSet",
    "FULL_PRECISION",
    "QuantizedModule",
    "QConv2d",
    "QLinear",
    "quantize_model",
    "set_precision",
    "apply_precision",
    "precision",
    "PrecisionContext",
    "QuantCache",
    "quant_execution_scope",
    "active_cache",
    "active_views",
    "count_quantized_modules",
    "CyclicPrecisionSchedule",
    "RandomPrecisionSampler",
]
