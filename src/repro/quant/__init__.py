"""Quantization library: the paper's linear quantizer and model plumbing.

Implements Eq. 10 of the paper (dynamic-range linear quantization of weights
and activations), fake quantization with a straight-through estimator so
quantized forward passes remain trainable, precision sets for per-iteration
sampling, and precision-switchable ``QConv2d`` / ``QLinear`` modules with a
model-wide :func:`set_precision` switch.
"""

from .convert import count_quantized_modules, quantize_model, set_precision
from .fake_quant import fake_quantize, fake_quantize_per_channel
from .observer import EmaMinMaxObserver, MinMaxObserver
from .precision import FULL_PRECISION, PrecisionSet
from .qmodules import QConv2d, QLinear, QuantizedModule
from .quantizer import (
    LearnableQuantizer,
    LinearQuantizer,
    linear_quantize,
    linear_quantize_per_channel,
)
from .schedule import CyclicPrecisionSchedule, RandomPrecisionSampler

__all__ = [
    "linear_quantize",
    "linear_quantize_per_channel",
    "LinearQuantizer",
    "LearnableQuantizer",
    "fake_quantize",
    "fake_quantize_per_channel",
    "MinMaxObserver",
    "EmaMinMaxObserver",
    "PrecisionSet",
    "FULL_PRECISION",
    "QuantizedModule",
    "QConv2d",
    "QLinear",
    "quantize_model",
    "set_precision",
    "count_quantized_modules",
    "CyclicPrecisionSchedule",
    "RandomPrecisionSampler",
]
