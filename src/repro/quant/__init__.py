"""Quantization library: the paper's linear quantizer and model plumbing.

Implements Eq. 10 of the paper (dynamic-range linear quantization of weights
and activations), fake quantization with a straight-through estimator so
quantized forward passes remain trainable, precision sets for per-iteration
sampling, and precision-switchable ``QConv2d`` / ``QLinear`` modules.
Precision is applied through the scoped :class:`PrecisionContext`
(``with precision(model, bits): ...``), which also activates an optional
:class:`QuantCache` memoizing fake-quantized weights across same-step
forwards and a fused-view count for multi-view batching.

Deployment is a staged, torch-style pipeline:

1. :func:`prepare` — swap float layers for quantized twins (shared
   Parameters) and attach activation-range observers;
2. :func:`calibrate` — fit the observers on representative batches;
3. :func:`convert` — fold BatchNorm, freeze ranges, and lower to the true
   integer kernels of :mod:`repro.quant.lowered` (verified against the
   fake-quant reference and the AUD001 coverage audit).

``quantize_model`` is the deprecated pre-staged name for :func:`prepare`.
"""

from .cache import QuantCache, active_cache, active_views, quant_execution_scope
from .calibrate import calibrate
from .context import PrecisionContext, apply_precision, precision
from .convert import (
    ConvertError,
    convert,
    count_quantized_modules,
    freeze_reference,
    prepare,
    quantize_model,
    set_precision,
)
from .fake_quant import (
    fake_quantize,
    fake_quantize_per_channel,
    fake_quantize_per_view,
    fake_quantize_static,
)
from .fold import fold_batch_norm
from .lowered import IntConv2d, IntLinear, LoweredModule
from .observer import EmaMinMaxObserver, MinMaxObserver
from .precision_set import FULL_PRECISION, PrecisionSet
from .qmodules import QConv2d, QLinear, QuantizedModule
from .quantizer import (
    LearnableQuantizer,
    LinearQuantizer,
    integer_quantization_params,
    linear_quantize,
    linear_quantize_per_channel,
    linear_quantize_per_view,
    linear_quantize_static,
    quantize_to_int,
)
from .schedule import CyclicPrecisionSchedule, RandomPrecisionSampler

__all__ = [
    "linear_quantize",
    "linear_quantize_per_channel",
    "linear_quantize_per_view",
    "linear_quantize_static",
    "integer_quantization_params",
    "quantize_to_int",
    "LinearQuantizer",
    "LearnableQuantizer",
    "fake_quantize",
    "fake_quantize_per_channel",
    "fake_quantize_per_view",
    "fake_quantize_static",
    "MinMaxObserver",
    "EmaMinMaxObserver",
    "PrecisionSet",
    "FULL_PRECISION",
    "QuantizedModule",
    "QConv2d",
    "QLinear",
    "LoweredModule",
    "IntConv2d",
    "IntLinear",
    "prepare",
    "calibrate",
    "convert",
    "freeze_reference",
    "ConvertError",
    "fold_batch_norm",
    "quantize_model",
    "set_precision",
    "apply_precision",
    "precision",
    "PrecisionContext",
    "QuantCache",
    "quant_execution_scope",
    "active_cache",
    "active_views",
    "count_quantized_modules",
    "CyclicPrecisionSchedule",
    "RandomPrecisionSampler",
]
