"""True integer inference kernels: the lowering target of ``convert()``.

:class:`IntConv2d` and :class:`IntLinear` are inference-only modules that
run the arithmetic a fixed-point deployment runtime would run.  Weights
are stored as uint8 *offset codes* (code minus the channel's lowest code)
with a per-output-channel integer zero offset and float step; activations
are quantized to the frozen calibrated range with
:func:`repro.quant.quantize_to_int`; and the GEMM accumulates integer
code products which a single per-channel requantization
(``step_w[c] * step_x * acc + bias``) turns back into real values.

Because both the weight grid and the activation grid are exactly the
grids the frozen-range fake-quant path uses, a lowered module's output
equals the fake-quant reference up to float rounding of the final
requantization — ``convert()`` verifies this on every model it lowers.

Accumulator selection
---------------------
NumPy has no int8-GEMM BLAS kernel; integer matmuls fall back to slow
generic loops.  But a float GEMM over integer-valued operands is *exact*
as long as every intermediate product and partial sum stays below the
mantissa capacity.  The engine therefore bounds
``max|w_code| * max|x_code| * K`` per layer and picks the cheapest exact
carrier: float32 BLAS when the bound fits 2^24, float64 BLAS below 2^53,
and int64 (exact but slow) beyond that.  The result is bit-identical to
an int64 accumulation — tested — while running on the same sgemm/dgemm
kernels as the float path, minus the dynamic range scans, the autograd
graph, and the fake-quant round trips.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..nn._ops.conv import _im2col, conv2d_output_shape
from ..nn.layers.conv import _pair
from ..nn.module import Module
from ..nn.tensor import Tensor, forbid_silent_downcast
from .quantizer import integer_quantization_params, quantize_to_int

__all__ = ["LoweredModule", "IntConv2d", "IntLinear"]


def _choose_accumulator(w_abs_max: int, x_abs_max: int, terms: int):
    """Cheapest dtype whose GEMM is exact for the given magnitude bound.

    Every product is ``<= w_abs_max * x_abs_max`` and every partial sum of
    ``terms`` such products stays below the bound; if that fits the
    mantissa (24 bits for float32, 53 for float64) the float GEMM result
    is the exact integer answer.
    """
    bound = float(max(w_abs_max, 1)) * float(max(x_abs_max, 1)) * float(max(terms, 1))
    if bound < 2.0 ** 24:
        return np.float32
    if bound < 2.0 ** 53:
        return np.float64
    return np.int64


def _quantize_weight_per_channel(
    weight: np.ndarray, bits: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize ``weight`` to per-output-channel integer codes.

    Returns ``(codes, zero, scale)``: signed int64 codes on the same grid
    as :func:`repro.quant.linear_quantize_per_channel` (dynamic range, no
    clipping — bit-for-bit the fake-quant weight), the per-channel lowest
    code (the storage zero offset), and the per-channel float step.  A
    constant channel ``c`` is represented exactly as ``scale=c, code=1``
    (or all-zero codes for ``c == 0``), mirroring the fake-quant path
    which leaves constant channels untouched.
    """
    weight = np.asarray(weight, dtype=np.float64)
    out_channels = weight.shape[0]
    flat = weight.reshape(out_channels, -1)
    codes = np.zeros_like(flat, dtype=np.int64)
    zero = np.zeros(out_channels, dtype=np.int64)
    scale = np.ones(out_channels, dtype=np.float64)
    for o in range(out_channels):
        row = flat[o]
        lo, hi = float(row.min()), float(row.max())
        step, _, _ = integer_quantization_params(lo, hi, bits)
        if step == 0.0:
            c = lo  # constant channel
            if c != 0.0:
                scale[o] = c
                codes[o] = 1
            continue
        # No clipping: the dynamic range covers the values, matching the
        # fake-quant grid exactly (clipping could perturb half-way ties).
        codes[o] = np.round(row / step).astype(np.int64)
        zero[o] = int(codes[o].min())
        scale[o] = step
    return codes.reshape(weight.shape), zero, scale


class LoweredModule(Module):
    """Base class for integer-kernel modules produced by ``convert()``.

    Inference-only: forwards return constant (non-differentiable) tensors
    and there are no Parameters — all state lives in buffers so
    ``state_dict`` round-trips through the usual Module machinery.
    """

    inference_only = True

    def __init__(
        self, weight_bits: int, act_bits: int, act_range: Tuple[float, float]
    ) -> None:
        super().__init__()
        lo, hi = float(act_range[0]), float(act_range[1])
        if not lo < hi or not (math.isfinite(lo) and math.isfinite(hi)):
            raise ValueError(
                f"degenerate activation range ({lo}, {hi}); "
                f"calibrate() must observe a non-constant input"
            )
        self.register_buffer(
            "qconfig", np.array([int(weight_bits), int(act_bits)], dtype=np.int64)
        )
        self.register_buffer("act_range", np.array([lo, hi], dtype=np.float64))
        self._operand_cache = None  # (operand key, acc dtype, w_mat)

    # qconfig/act_range are read through properties (not stashed as plain
    # attrs) so load_state_dict updates take effect everywhere.
    @property
    def weight_bits(self) -> int:
        return int(self.qconfig[0])

    @property
    def act_bits(self) -> int:
        return int(self.qconfig[1])

    @property
    def act_lo(self) -> float:
        return float(self.act_range[0])

    @property
    def act_hi(self) -> float:
        return float(self.act_range[1])

    def _store_weight(self, codes: np.ndarray, zero: np.ndarray, scale: np.ndarray) -> None:
        offset = codes - zero.reshape((-1,) + (1,) * (codes.ndim - 1))
        span = int(offset.max()) if offset.size else 0
        store_dtype = np.uint8 if span <= np.iinfo(np.uint8).max else np.int32
        self.register_buffer("weight_q", offset.astype(store_dtype))
        self.register_buffer("weight_zero", zero.astype(np.int64))
        self.register_buffer("weight_scale", scale.astype(np.float64))

    def _operand_key(self):
        """Cache key for the GEMM operands: buffer ids *and* versions.

        Identity alone is not enough — ``load_state_dict`` may hand back
        an array at a recycled ``id()``, and ``set_buffer`` bumps the
        version even when numpy reuses storage — so the key pairs each
        buffer's id with its monotonic registration version.
        """
        return (
            id(self.weight_q),
            self.buffer_version("weight_q"),
            id(self.act_range),
            self.buffer_version("act_range"),
            self.buffer_version("qconfig"),
        )

    def _weight_operand(self):
        """Signed weight codes as a GEMM-ready matrix in the exact carrier.

        Cached per (buffer id, buffer version) so repeated forwards skip
        the reconstruction while any rebinding of the weight/range
        buffers — ``load_state_dict``, ``set_buffer``, re-registration —
        invalidates the cache even if the replacement array reuses the
        old storage address.
        """
        key = self._operand_key()
        cache = self._operand_cache
        if cache is not None and cache[0] == key:
            return cache[1], cache[2]
        codes = self.weight_q.astype(np.int64) + self.weight_zero.reshape(
            (-1,) + (1,) * (self.weight_q.ndim - 1)
        )
        _, x_lo, x_hi = integer_quantization_params(
            self.act_lo, self.act_hi, self.act_bits
        )
        w_abs = int(np.abs(codes).max()) if codes.size else 0
        x_abs = max(abs(x_lo), abs(x_hi))
        acc_dtype = _choose_accumulator(w_abs, x_abs, self._gemm_terms())
        w_mat = self._as_gemm_matrix(codes).astype(acc_dtype)
        self._operand_cache = (key, acc_dtype, w_mat)
        return acc_dtype, w_mat

    def _quantize_input(self, x) -> Tuple[np.ndarray, float]:
        arr = np.asarray(x.data if isinstance(x, Tensor) else x)
        codes, step, _ = quantize_to_int(arr, self.act_bits, self.act_lo, self.act_hi)
        return codes, step

    def _gemm_terms(self) -> int:
        raise NotImplementedError

    def _as_gemm_matrix(self, codes: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class IntConv2d(LoweredModule):
    """Integer conv2d: uint8 weight codes, im2col GEMM, per-channel requant."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        groups: int = 1,
        *,
        weight_bits: int,
        act_bits: int,
        act_range: Tuple[float, float],
        bias: bool = True,
    ) -> None:
        super().__init__(weight_bits, act_bits, act_range)
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels} -> {out_channels}) not divisible "
                f"by groups={groups}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.groups = groups
        kh, kw = self.kernel_size
        shape = (out_channels, in_channels // groups, kh, kw)
        self._store_weight(
            np.zeros(shape, dtype=np.int64),
            np.zeros(out_channels, dtype=np.int64),
            np.ones(out_channels, dtype=np.float64),
        )
        if bias:
            self.register_buffer("bias", np.zeros(out_channels, dtype=np.float64))
        else:
            self.bias = None

    @classmethod
    def from_qat(cls, q) -> "IntConv2d":
        """Lower a calibrated :class:`repro.quant.QConv2d`."""
        act_range = _require_deployable(q, "QConv2d")
        mod = cls(
            q.in_channels,
            q.out_channels,
            q.kernel_size,
            stride=q.stride,
            padding=q.padding,
            groups=q.groups,
            weight_bits=q.precision,
            act_bits=q.precision,
            act_range=act_range,
            bias=q.bias is not None,
        )
        codes, zero, scale = _quantize_weight_per_channel(
            q.weight.data, mod.weight_bits
        )
        mod._store_weight(codes, zero, scale)
        if q.bias is not None:
            mod.set_buffer("bias", np.asarray(q.bias.data, dtype=np.float64))
        return mod

    def _gemm_terms(self) -> int:
        kh, kw = self.kernel_size
        return (self.in_channels // self.groups) * kh * kw

    def _as_gemm_matrix(self, codes: np.ndarray) -> np.ndarray:
        return codes.reshape(
            self.groups, self.out_channels // self.groups, self._gemm_terms()
        )

    def forward(self, x) -> Tensor:
        with forbid_silent_downcast("the integer conv requantization grid"):
            return self._forward_exact(x)

    def _forward_exact(self, x) -> Tensor:
        x_codes, x_step = self._quantize_input(x)
        if x_codes.ndim != 4 or x_codes.shape[1] != self.in_channels:
            raise ValueError(
                f"IntConv2d expects (N, {self.in_channels}, H, W) input, "
                f"got {x_codes.shape}"
            )
        acc_dtype, w_mat = self._weight_operand()
        n, _, h, w = x_codes.shape
        kh, kw = self.kernel_size
        ph, pw = self.padding
        x_codes = x_codes.astype(acc_dtype)
        if ph or pw:
            x_codes = np.pad(
                x_codes, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant"
            )
        oh, ow = conv2d_output_shape(
            (h, w), self.kernel_size, self.stride, self.padding
        )
        cols = _im2col(x_codes, kh, kw, *self.stride)
        cols = cols.reshape(n, self.groups, self._gemm_terms(), oh * ow)
        acc = np.matmul(w_mat[None], cols)  # exact: see _choose_accumulator
        requant = (self.weight_scale * x_step).reshape(
            1, self.groups, self.out_channels // self.groups, 1
        )
        out = acc * requant
        out = out.reshape(n, self.out_channels, oh, ow)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        # float64 out (Tensor would downcast without dtype=): requantization
        # must not perturb inputs of the *next* integer layer, whose
        # rounding is sensitive at code boundaries.
        return Tensor(out, dtype=np.float64)

    def symbolic_shape(self, shape, dtype):
        """Shape-propagation hook for :mod:`repro.analysis` tracing."""
        if len(shape) != 4:
            raise ValueError(f"expects 4-d (N, C, H, W) input, got {shape}")
        if shape[1] != self.in_channels:
            raise ValueError(
                f"expects {self.in_channels} input channels, got {shape[1]}"
            )
        oh, ow = conv2d_output_shape(
            shape[2:], self.kernel_size, self.stride, self.padding
        )
        return (shape[0], self.out_channels, oh, ow), np.dtype(np.float64)

    def __repr__(self) -> str:
        return (
            f"IntConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, w{self.weight_bits}a{self.act_bits})"
        )


class IntLinear(LoweredModule):
    """Integer linear: uint8 weight codes, GEMM, per-channel requant."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        weight_bits: int,
        act_bits: int,
        act_range: Tuple[float, float],
        bias: bool = True,
    ) -> None:
        super().__init__(weight_bits, act_bits, act_range)
        self.in_features = in_features
        self.out_features = out_features
        self._store_weight(
            np.zeros((out_features, in_features), dtype=np.int64),
            np.zeros(out_features, dtype=np.int64),
            np.ones(out_features, dtype=np.float64),
        )
        if bias:
            self.register_buffer("bias", np.zeros(out_features, dtype=np.float64))
        else:
            self.bias = None

    @classmethod
    def from_qat(cls, q) -> "IntLinear":
        """Lower a calibrated :class:`repro.quant.QLinear`."""
        act_range = _require_deployable(q, "QLinear")
        mod = cls(
            q.in_features,
            q.out_features,
            weight_bits=q.precision,
            act_bits=q.precision,
            act_range=act_range,
            bias=q.bias is not None,
        )
        codes, zero, scale = _quantize_weight_per_channel(
            q.weight.data, mod.weight_bits
        )
        mod._store_weight(codes, zero, scale)
        if q.bias is not None:
            mod.set_buffer("bias", np.asarray(q.bias.data, dtype=np.float64))
        return mod

    def _gemm_terms(self) -> int:
        return self.in_features

    def _as_gemm_matrix(self, codes: np.ndarray) -> np.ndarray:
        return codes.reshape(self.out_features, self.in_features)

    def forward(self, x) -> Tensor:
        with forbid_silent_downcast("the integer linear requantization grid"):
            return self._forward_exact(x)

    def _forward_exact(self, x) -> Tensor:
        x_codes, x_step = self._quantize_input(x)
        if x_codes.ndim != 2 or x_codes.shape[1] != self.in_features:
            raise ValueError(
                f"IntLinear expects (N, {self.in_features}) input, "
                f"got {x_codes.shape}"
            )
        acc_dtype, w_mat = self._weight_operand()
        acc = np.matmul(x_codes.astype(acc_dtype), w_mat.T)
        out = acc * (self.weight_scale * x_step).reshape(1, -1)
        if self.bias is not None:
            out = out + self.bias.reshape(1, -1)
        return Tensor(out, dtype=np.float64)

    def symbolic_shape(self, shape, dtype):
        """Shape-propagation hook for :mod:`repro.analysis` tracing."""
        if len(shape) != 2:
            raise ValueError(f"expects 2-d (N, features) input, got {shape}")
        if shape[1] != self.in_features:
            raise ValueError(
                f"expects {self.in_features} input features, got {shape[1]}"
            )
        return (shape[0], self.out_features), np.dtype(np.float64)

    def __repr__(self) -> str:
        return (
            f"IntLinear(in_features={self.in_features}, "
            f"out_features={self.out_features}, "
            f"w{self.weight_bits}a{self.act_bits})"
        )


def _require_deployable(q, kind: str) -> Tuple[float, float]:
    """Validate that a QAT module carries everything lowering needs."""
    if q.precision is None:
        raise ValueError(
            f"{kind} has no precision set; apply_precision() or pass "
            f"bits= to convert()"
        )
    if not q.quantize_activations:
        raise ValueError(
            f"{kind} has quantize_activations disabled; the integer engine "
            f"requires quantized inputs (weight-only layers cannot lower)"
        )
    rng = q.activation_range
    if rng is None:
        raise ValueError(
            f"{kind} has no calibrated activation range; run calibrate() "
            f"before convert()"
        )
    return rng
