"""Scoped precision application: the primary API for switching bit-widths.

Historically precision was applied by mutating every quantized module in
place with :func:`repro.quant.set_precision` and hoping every caller
remembered to restore it.  :class:`PrecisionContext` makes the switch
*scoped*: on entry it records each quantized module's current precision and
applies the requested bits; on exit it restores exactly what was there
before, so nested and interleaved precision regions compose::

    with precision(encoder, 4):
        f = encoder(x)          # 4-bit weights + activations
    # encoder back at its previous precision here

A context may also carry a :class:`~repro.quant.QuantCache` and a fused
``views`` count, which the quantized modules pick up through the
thread-local execution scope (see :mod:`repro.quant.cache`).
"""

from __future__ import annotations

from typing import Optional

from ..nn.module import Module
from .cache import QuantCache, quant_execution_scope
from .qmodules import QuantizedModule

__all__ = ["PrecisionContext", "precision", "apply_precision"]


def apply_precision(
    model: Module, bits: Optional[int], strict: bool = True
) -> int:
    """Imperatively set the precision of every quantized module.

    Returns how many modules were switched.  ``bits=None`` restores full
    precision.  With ``strict`` (default), raises if the model contains no
    quantized modules — calling this on an unconverted model is a bug.
    Prefer :class:`PrecisionContext` where the precision has a natural
    scope; use this only for open-ended switches (e.g. leaving an encoder
    at full precision after training).
    """
    count = 0
    for module in model.modules():
        if isinstance(module, QuantizedModule):
            module.set_precision(bits)
            count += 1
    if count == 0 and strict:
        raise ValueError(
            "apply_precision() found no quantized modules; "
            "run prepare() first"
        )
    return count


class PrecisionContext:
    """Apply ``bits`` to ``model`` for the duration of a ``with`` block.

    Parameters
    ----------
    model:
        Module tree containing quantized modules.  Raises on entry if it
        has none and ``bits`` is not None (mirroring ``apply_precision``).
    bits:
        Bit-width, or None for full precision.
    cache:
        Optional :class:`QuantCache` memoizing fake-quantized weights for
        forwards inside the block.
    views:
        Number of equal view-chunks concatenated along the batch axis of
        inputs forwarded inside the block; activations are fake-quantized
        per chunk so fused forwards match unfused ones exactly.

    Re-entrant: the same context object may be nested or reused.
    """

    def __init__(
        self,
        model: Module,
        bits: Optional[int],
        *,
        cache: Optional[QuantCache] = None,
        views: int = 1,
    ) -> None:
        if views < 1:
            raise ValueError(f"views must be >= 1, got {views}")
        self.model = model
        self.bits = bits
        self.cache = cache
        self.views = views
        self._saved = []  # stack of (module -> previous precision) frames
        self._scopes = []

    def __enter__(self) -> "PrecisionContext":
        frame = [
            (m, m.precision)
            for m in self.model.modules()
            if isinstance(m, QuantizedModule)
        ]
        if not frame and self.bits is not None:
            raise ValueError(
                "PrecisionContext found no quantized modules; "
                "run prepare() first"
            )
        for module, _ in frame:
            module.set_precision(self.bits)
        self._saved.append(frame)
        scope = quant_execution_scope(self.cache, self.views)
        scope.__enter__()
        self._scopes.append(scope)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._scopes.pop().__exit__(exc_type, exc, tb)
        for module, previous in self._saved.pop():
            module.set_precision(previous)


def precision(
    model: Module,
    bits: Optional[int],
    *,
    cache: Optional[QuantCache] = None,
    views: int = 1,
) -> PrecisionContext:
    """Sugar for ``PrecisionContext(model, bits, ...)``::

        with precision(encoder, q1, cache=cache, views=2):
            fused = encoder(both_views)
    """
    return PrecisionContext(model, bits, cache=cache, views=views)
