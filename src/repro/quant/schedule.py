"""Precision schedules: alternatives to i.i.d. per-iteration sampling.

The paper samples ``(q1, q2)`` uniformly from the precision set each
iteration.  Its reference [3] (CPT — cyclic precision training) instead
*schedules* precision cyclically, arguing low precision early in training
acts like a high learning rate.  :class:`CyclicPrecisionSchedule` provides
that alternative so the sampling-vs-scheduling choice can be ablated
(``benchmarks/test_ablation_schedule.py``).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .precision_set import PrecisionSet

__all__ = ["CyclicPrecisionSchedule", "RandomPrecisionSampler"]


class RandomPrecisionSampler:
    """The paper's default: uniform i.i.d. pair sampling per iteration."""

    def __init__(self, precision_set: PrecisionSet,
                 rng: np.random.Generator) -> None:
        self.precision_set = PrecisionSet.parse(precision_set)
        self.rng = rng

    def next_pair(self) -> Tuple[int, int]:
        return self.precision_set.sample_pair(self.rng)


class CyclicPrecisionSchedule:
    """CPT-style cosine cycling between the lowest and highest precision.

    Precision sweeps low -> high over each cycle of ``period`` steps; the
    second precision of the pair is offset by half a cycle so the two
    encoder passes still see different quantization levels.
    """

    def __init__(self, precision_set: PrecisionSet, period: int = 32) -> None:
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")
        self.precision_set = PrecisionSet.parse(precision_set)
        self.period = period
        self.step_count = 0

    def _bits_at(self, step: int) -> int:
        lo = self.precision_set.min_bits
        hi = self.precision_set.max_bits
        phase = (step % self.period) / self.period
        # Cosine ramp low -> high within the cycle.
        level = lo + (hi - lo) * 0.5 * (1.0 - math.cos(math.pi * phase * 2))
        bits = int(round(level))
        # Snap to the nearest member of the set.
        return min(self.precision_set.bits, key=lambda b: abs(b - bits))

    def next_pair(self) -> Tuple[int, int]:
        q1 = self._bits_at(self.step_count)
        q2 = self._bits_at(self.step_count + self.period // 2)
        self.step_count += 1
        return q1, q2
