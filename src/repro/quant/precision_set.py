"""Precision sets and per-iteration precision sampling.

The paper samples two precisions ``q1, q2`` from a predefined set each
training iteration.  The sets used are 4-16, 6-16, and 8-16 (every integer
bit-width in the range, inclusive).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["PrecisionSet", "FULL_PRECISION"]

#: Sentinel for full precision (no quantization).
FULL_PRECISION: Optional[int] = None


class PrecisionSet:
    """An ordered set of integer bit-widths with sampling utilities.

    Construct from a spec string ("6-16"), a range, or an explicit list::

        PrecisionSet.parse("6-16")      # 6, 7, ..., 16
        PrecisionSet([4, 8, 16])
    """

    def __init__(self, bits: Sequence[int]) -> None:
        cleaned = sorted(set(int(b) for b in bits))
        if not cleaned:
            raise ValueError("precision set must not be empty")
        if cleaned[0] < 1:
            raise ValueError(f"bit-widths must be >= 1, got {cleaned[0]}")
        if cleaned[-1] > 32:
            raise ValueError(f"bit-widths must be <= 32, got {cleaned[-1]}")
        self.bits: Tuple[int, ...] = tuple(cleaned)

    @classmethod
    def parse(cls, spec: Union[str, "PrecisionSet", Sequence[int]]) -> "PrecisionSet":
        """Parse "lo-hi" range specs (the paper's notation) or pass through."""
        if isinstance(spec, PrecisionSet):
            return spec
        if isinstance(spec, str):
            try:
                lo_text, hi_text = spec.split("-")
                lo, hi = int(lo_text), int(hi_text)
            except ValueError as exc:
                raise ValueError(
                    f"precision spec must look like '6-16', got {spec!r}"
                ) from exc
            if lo > hi:
                raise ValueError(f"inverted precision range: {spec!r}")
            return cls(range(lo, hi + 1))
        return cls(spec)

    # -- sampling -------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one precision uniformly."""
        return int(rng.choice(self.bits))

    def sample_pair(
        self, rng: np.random.Generator, distinct: bool = False
    ) -> Tuple[int, int]:
        """Draw the per-iteration ``(q1, q2)`` pair.

        ``distinct=True`` forces two different precisions (requires a set of
        size >= 2); the paper's default allows collisions.
        """
        if distinct:
            if len(self.bits) < 2:
                raise ValueError(
                    "distinct sampling requires at least two precisions"
                )
            pair = rng.choice(len(self.bits), size=2, replace=False)
            return int(self.bits[pair[0]]), int(self.bits[pair[1]])
        return self.sample(rng), self.sample(rng)

    # -- container protocol -----------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(self.bits)

    def __len__(self) -> int:
        return len(self.bits)

    def __contains__(self, bits: int) -> bool:
        return int(bits) in self.bits

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PrecisionSet):
            return self.bits == other.bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.bits)

    def __repr__(self) -> str:
        lo, hi = self.bits[0], self.bits[-1]
        if self.bits == tuple(range(lo, hi + 1)):
            return f"PrecisionSet('{lo}-{hi}')"
        return f"PrecisionSet({list(self.bits)})"

    @property
    def min_bits(self) -> int:
        return self.bits[0]

    @property
    def max_bits(self) -> int:
        return self.bits[-1]

    def diversity(self) -> int:
        """Number of distinct precisions (Table 8 links this to accuracy)."""
        return len(self.bits)
