"""Versioned quantized-weight cache and the scoped execution state.

During CQ-B/C training each precision's weights were historically
fake-quantized once per forward — twice per step per precision, since both
views run through the same weights.  :class:`QuantCache` memoizes the
fake-quantized weight Tensor keyed on ``(parameter, version, bits,
per_channel, grad_mode)``: the :class:`~repro.nn.Parameter` version counter
advances exactly when the underlying values change (optimizer step,
``load_state_dict``, EMA update), so a hit is always byte-identical to a
recompute.

The cache — together with the number of fused views — is communicated to
:class:`~repro.quant.qmodules.QConv2d` / ``QLinear`` through a thread-local
*execution scope* rather than module attributes, so concurrent trainers
sharing an encoder cannot observe each other's state.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "QuantCache",
    "quant_execution_scope",
    "active_cache",
    "active_views",
]


class QuantCache:
    """Memoizes fake-quantized weight tensors across same-step forwards.

    Parameters
    ----------
    enabled:
        When False the cache never stores entries but still counts every
        lookup as a miss — baselines keep accurate quant-sweep telemetry
        without paying for storage.

    Entries are invalidated by the parameter's :attr:`version` counter;
    stale entries are overwritten in place, so the cache holds at most one
    tensor per ``(param, bits, per_channel, grad_mode)`` combination and
    memory stays bounded by the precision set.  ``grad_mode`` is part of
    the key because a tensor produced under ``no_grad`` carries no autograd
    context and must never be reused where gradients are required.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._entries: Dict[Tuple[int, ...], Tuple[Any, int, Any]] = {}

    def fetch(
        self,
        param: Any,
        bits: int,
        per_channel: bool,
        grad_mode: bool,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached quantized tensor for ``param`` or compute it.

        The stored parameter is compared by identity (not just ``id()``,
        which can be reused after garbage collection) and by version before
        a hit is declared.
        """
        key = (id(param), int(bits), bool(per_channel), bool(grad_mode))
        entry = self._entries.get(key)
        if entry is not None:
            stored_param, version, tensor = entry
            if stored_param is param and version == param.version:
                self.hits += 1
                return tensor
        self.misses += 1
        tensor = compute()
        if self.enabled:
            self._entries[key] = (param, param.version, tensor)
        return tensor

    def clear(self) -> None:
        """Drop every entry (stats are kept; see :meth:`reset_stats`)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"QuantCache(enabled={self.enabled}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class _ExecutionState(threading.local):
    """Per-thread stack of (cache, views) scopes."""

    def __init__(self) -> None:
        self.stack = []


_state = _ExecutionState()


@contextlib.contextmanager
def quant_execution_scope(
    cache: Optional[QuantCache] = None, views: int = 1
):
    """Activate ``cache`` and a fused-view count for quantized forwards.

    Inside the scope, ``QConv2d``/``QLinear`` consult :func:`active_cache`
    for weight quantization and :func:`active_views` for per-view
    activation quantization (a fused 2N batch is quantized per N-chunk so
    its values match two separate N forwards exactly).  Scopes nest; the
    innermost wins.
    """
    if views < 1:
        raise ValueError(f"views must be >= 1, got {views}")
    _state.stack.append((cache, int(views)))
    try:
        yield
    finally:
        _state.stack.pop()


def active_cache() -> Optional[QuantCache]:
    """The innermost scope's cache, or None outside any scope."""
    return _state.stack[-1][0] if _state.stack else None


def active_views() -> int:
    """The innermost scope's fused-view count (1 outside any scope)."""
    return _state.stack[-1][1] if _state.stack else 1
