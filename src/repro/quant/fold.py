"""BatchNorm absorption into preceding conv/linear layers (``absorb_bn``).

The first step of :func:`repro.quant.convert`: at inference time a
BatchNorm with tracked running statistics is a per-channel affine map, so
it can be folded into the weights and bias of the convolution (or linear)
that feeds it.  The folded model computes one fewer op per block and —
decisive for the integer engine — leaves no float normalization between a
lowered conv and its activation, so the conv's calibrated output range
stays meaningful.

Which layers are foldable is decided by the layer itself through the
``repro.nn`` folding hook: a norm layer exposing ``can_fold`` /
``fold_params()`` (see :class:`repro.nn.BatchNorm2d`) advertises that its
eval-mode output is ``scale * x + shift`` per channel.  GroupNorm and
LayerNorm normalize with per-sample statistics, expose no hook, and are
left in place — a converted model simply runs them in float between
integer layers.

Pairs are discovered CalibTIP-style by declaration order: a norm child
that directly follows a conv/linear child of the same parent (the
``conv1``/``bn1`` idiom every model in this repo uses) is absorbed and
replaced with :class:`repro.nn.Identity`.  Folding bakes in the *current*
running statistics; it is an inference-time transform, so fold after
training and only use the folded model in eval mode.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..nn.layers.container import Identity
from ..nn.layers.conv import Conv2d
from ..nn.layers.linear import Linear
from ..nn.module import Module, Parameter

__all__ = ["fold_batch_norm", "foldable_pairs"]


def _out_features(module: Module) -> int:
    if isinstance(module, Conv2d):
        return module.out_channels
    return module.out_features


def foldable_pairs(model: Module) -> List[Tuple[str, Module, str, Module, Module]]:
    """Discover ``(parent, conv/linear, norm)`` triples eligible for folding.

    Returns ``(affine_path, affine, norm_name, norm, parent)`` tuples: a
    conv/linear child immediately followed (in declaration order) by a
    norm layer whose folding hook reports ``can_fold`` and whose feature
    count matches.
    """
    pairs = []
    for parent_name, parent in list(model.named_modules()):
        children = list(parent._modules.items())
        for (name_a, mod_a), (name_b, mod_b) in zip(children, children[1:]):
            if not isinstance(mod_a, (Conv2d, Linear)):
                continue
            if not getattr(mod_b, "can_fold", False):
                continue
            if getattr(mod_b, "num_features", None) != _out_features(mod_a):
                continue
            path = f"{parent_name}.{name_a}" if parent_name else name_a
            pairs.append((path, mod_a, name_b, mod_b, parent))
    return pairs


def _absorb(affine: Module, norm: Module) -> None:
    """Fold ``norm``'s eval-mode affine map into ``affine``'s weight/bias."""
    scale, shift = norm.fold_params()  # float64 per-channel
    weight = affine.weight.data
    dtype = weight.dtype
    if isinstance(affine, Conv2d):
        scale_shape = (-1, 1, 1, 1)
    else:
        scale_shape = (-1, 1)
    folded_w = weight.astype(np.float64) * scale.reshape(scale_shape)
    # Parameter.data assignment bumps the version counter, so QuantCache
    # entries for the pre-fold weights invalidate automatically.
    affine.weight.data = folded_w.astype(dtype)
    if affine.bias is not None:
        folded_b = affine.bias.data.astype(np.float64) * scale + shift
        affine.bias.data = folded_b.astype(affine.bias.data.dtype)
    else:
        affine.bias = Parameter(shift.astype(dtype))


def fold_batch_norm(model: Module) -> int:
    """Absorb every foldable norm layer into its preceding conv/linear.

    The model is modified in place: folded norm layers are replaced with
    :class:`~repro.nn.Identity` and the affine layer's weight (and bias,
    created if absent) take over their effect.  Returns the number of
    layers folded.  Equivalence holds for eval-mode forwards only — the
    folded weights bake in the running statistics at fold time.
    """
    folded = 0
    for _, affine, norm_name, norm, parent in foldable_pairs(model):
        _absorb(affine, norm)
        setattr(parent, norm_name, Identity())
        folded += 1
    return folded
