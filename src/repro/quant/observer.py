"""Dynamic-range observers for activation quantization.

The paper quantizes with the tensor's own dynamic range each call
(:class:`MinMaxObserver` in ``per_call`` mode is equivalent to passing no
observer).  :class:`EmaMinMaxObserver` smooths the range across batches —
useful when deploying a fixed-precision model after training, and exercised
by the quantizer ablation bench.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["MinMaxObserver", "EmaMinMaxObserver"]


class MinMaxObserver:
    """Track the running min/max of everything observed."""

    def __init__(self) -> None:
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def update(self, array: np.ndarray) -> Tuple[float, float]:
        lo = float(np.min(array))
        hi = float(np.max(array))
        self.min = lo if self.min is None else min(self.min, lo)
        self.max = hi if self.max is None else max(self.max, hi)
        return self.min, self.max

    def reset(self) -> None:
        self.min = None
        self.max = None


class EmaMinMaxObserver:
    """Exponential-moving-average min/max observer."""

    def __init__(self, momentum: float = 0.9) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def update(self, array: np.ndarray) -> Tuple[float, float]:
        lo = float(np.min(array))
        hi = float(np.max(array))
        if self.min is None:
            self.min, self.max = lo, hi
        else:
            m = self.momentum
            self.min = m * self.min + (1 - m) * lo
            self.max = m * self.max + (1 - m) * hi
        return self.min, self.max

    def reset(self) -> None:
        self.min = None
        self.max = None
