"""Stage 2 of the staged quantization API: observer-range calibration.

``prepare()`` attaches a range observer to every quantized module;
``calibrate()`` streams representative batches through the model in eval
mode with observation switched on, so each observer fits the min/max of
the *pre-quantization* input its module sees.  ``convert()`` then freezes
those ranges into the integer kernels' activation grids.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..nn.autograd import no_grad
from ..nn.module import Module
from ..nn.tensor import Tensor
from .context import apply_precision
from .qmodules import QuantizedModule

__all__ = ["calibrate"]


def _to_input_tensor(batch) -> Tensor:
    """Accept ``x``, ``(x, y)``, or ``(x, ...)`` batches, arrays or Tensors."""
    x = batch[0] if isinstance(batch, (tuple, list)) else batch
    if isinstance(x, Tensor):
        return x
    return Tensor(np.asarray(x))


def calibrate(
    model: Module,
    batches: Iterable,
    bits: Optional[int] = None,
    max_batches: Optional[int] = None,
) -> Dict[str, Tuple[float, float]]:
    """Fit activation-range observers by running calibration batches.

    Parameters
    ----------
    model:
        A model that went through :func:`repro.quant.prepare`.
    batches:
        Iterable of inputs — bare arrays/Tensors or ``(x, y)`` pairs (a
        :class:`repro.data.DataLoader` works as-is).
    bits:
        Optional precision applied to the whole model first (persistently,
        via :func:`repro.quant.apply_precision`).  When omitted, every
        quantized module must already carry a precision.
    max_batches:
        Optional cap on how many batches are consumed.

    Returns the mapping of module path to fitted ``(lo, hi)`` range.
    Forwards run in eval mode under ``no_grad``; the previous training
    mode is restored afterwards.
    """
    qmods = [
        (path, m)
        for path, m in model.named_modules()
        if isinstance(m, QuantizedModule)
    ]
    if not qmods:
        raise ValueError(
            "calibrate() found no quantized modules; run prepare(model) first"
        )
    if bits is not None:
        apply_precision(model, bits)
    missing = [
        path
        for path, m in qmods
        if m.quantize_activations and m.precision is None
    ]
    if missing:
        raise ValueError(
            f"modules without a precision: {missing}; pass bits= or use "
            f"repro.quant.apply_precision() before calibrating"
        )
    unobserved = [path for path, m in qmods if m.activation_observer is None]
    if unobserved:
        raise ValueError(
            f"modules without an activation observer: {unobserved}; "
            f"prepare() attaches one — re-run it or set one explicitly"
        )

    for _, m in qmods:
        m.activation_observer.reset()
        m.observing = True
    was_training = model.training
    model.eval()
    consumed = 0
    try:
        with no_grad():
            for batch in batches:
                if max_batches is not None and consumed >= max_batches:
                    break
                model(_to_input_tensor(batch))
                consumed += 1
    finally:
        for _, m in qmods:
            m.observing = False
        if was_training:
            model.train()
    if consumed == 0:
        raise ValueError("calibrate() received no batches")
    return {
        path: m.activation_range
        for path, m in qmods
        if m.activation_range is not None
    }
