"""Functional fake-quantization entry point."""

from __future__ import annotations

from typing import Optional

from ..nn.tensor import Tensor, as_tensor
from .quantizer import (
    LinearQuantizer,
    _FakeQuantPerChannelSTE,
    _FakeQuantPerViewSTE,
)

__all__ = ["fake_quantize", "fake_quantize_per_channel", "fake_quantize_per_view"]

_default_quantizer = LinearQuantizer()


def fake_quantize(tensor: Tensor, bits: Optional[int]) -> Tensor:
    """Fake-quantize ``tensor`` to ``bits`` with the paper's Eq. 10 + STE.

    ``bits=None`` means full precision (identity).  The quantized values are
    used in the forward pass; gradients flow straight through, which is what
    lets quantization act as a *trainable* augmentation on weights and
    activations.
    """
    return _default_quantizer(as_tensor(tensor), bits)


def fake_quantize_per_channel(
    tensor: Tensor, bits: Optional[int], axis: int = 0
) -> Tensor:
    """Per-channel fake quantization with STE (extension; see quantizer)."""
    if bits is None:
        return as_tensor(tensor)
    return _FakeQuantPerChannelSTE.apply(as_tensor(tensor), bits=bits,
                                         axis=axis)


def fake_quantize_per_view(
    tensor: Tensor, bits: Optional[int], views: int
) -> Tensor:
    """Fake-quantize each of ``views`` equal batch chunks independently.

    Used by fused multi-view forwards so a concatenated 2N batch produces
    exactly the activations of two separate N-batch forwards.
    """
    if bits is None:
        return as_tensor(tensor)
    return _FakeQuantPerViewSTE.apply(as_tensor(tensor), bits=bits,
                                      views=views)
