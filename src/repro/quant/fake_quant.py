"""Functional fake-quantization entry point."""

from __future__ import annotations

from typing import Optional

from ..nn.tensor import Tensor, as_tensor
from .quantizer import (
    LinearQuantizer,
    _FakeQuantPerChannelSTE,
    _FakeQuantPerViewSTE,
    _FakeQuantStaticSTE,
)

__all__ = [
    "fake_quantize",
    "fake_quantize_per_channel",
    "fake_quantize_per_view",
    "fake_quantize_static",
]

_default_quantizer = LinearQuantizer()


def fake_quantize(tensor: Tensor, bits: Optional[int]) -> Tensor:
    """Fake-quantize ``tensor`` to ``bits`` with the paper's Eq. 10 + STE.

    ``bits=None`` means full precision (identity).  The quantized values are
    used in the forward pass; gradients flow straight through, which is what
    lets quantization act as a *trainable* augmentation on weights and
    activations.
    """
    return _default_quantizer(as_tensor(tensor), bits)


def fake_quantize_static(
    tensor: Tensor, bits: Optional[int], a_min: float, a_max: float
) -> Tensor:
    """Fake-quantize over a *frozen* calibrated range, clipping to its grid.

    The deployment-reference twin of the integer engine
    (:mod:`repro.quant.lowered`): dequantized values are bit-for-bit the
    codes the integer kernels compute, so a frozen-range fake-quant
    forward is the float oracle that ``convert()`` checks lowered models
    against.
    """
    if bits is None:
        return as_tensor(tensor)
    return _FakeQuantStaticSTE.apply(as_tensor(tensor), bits=bits,
                                     a_min=a_min, a_max=a_max)


def fake_quantize_per_channel(
    tensor: Tensor, bits: Optional[int], axis: int = 0
) -> Tensor:
    """Per-channel fake quantization with STE (extension; see quantizer)."""
    if bits is None:
        return as_tensor(tensor)
    return _FakeQuantPerChannelSTE.apply(as_tensor(tensor), bits=bits,
                                         axis=axis)


def fake_quantize_per_view(
    tensor: Tensor, bits: Optional[int], views: int
) -> Tensor:
    """Fake-quantize each of ``views`` equal batch chunks independently.

    Used by fused multi-view forwards so a concatenated 2N batch produces
    exactly the activations of two separate N-batch forwards.
    """
    if bits is None:
        return as_tensor(tensor)
    return _FakeQuantPerViewSTE.apply(as_tensor(tensor), bits=bits,
                                      views=views)
