"""Table 7 — ablation of CQ-A vs CQ-B vs CQ-C (CIFAR-like, set 6-16).

Paper: CQ-C is the overall best variant, especially at 1% labels; CQ-A is
only marginally better than (or comparable to) SimCLR on the small-scale
dataset.

Shape under reproduction: CQ-C's average accuracy over the grid is the
highest of the three variants, and CQ-A does not dominate.
"""

import numpy as np
import pytest

from repro.experiments import MethodSpec, finetune_grid, format_table

from .common import (
    cached_pretrain,
    cifar_like,
    cifar_protocol,
    cifar_pretrain_config,
    run_once,
    scaled_set,
)

pytestmark = pytest.mark.slow

NETWORKS = ["resnet34", "resnet74", "mobilenetv2"]

METHODS = [
    MethodSpec("SimCLR"),
    MethodSpec("CQ-A (6-16)", variant="A", precision_set=scaled_set("6-16")),
    MethodSpec("CQ-B (6-16)", variant="B", precision_set=scaled_set("6-16")),
    MethodSpec("CQ-C (6-16)", variant="C", precision_set=scaled_set("6-16")),
]


@pytest.mark.parametrize("encoder", NETWORKS)
def test_table7_variants(benchmark, encoder):
    data = cifar_like()
    protocol = cifar_protocol()
    config = cifar_pretrain_config(encoder)

    def run():
        return {
            method.name: finetune_grid(
                cached_pretrain(method, "cifar", config),
                data.train, data.test, protocol,
            )
            for method in METHODS
        }

    table = run_once(benchmark, run)

    rows = [
        [
            name,
            grid[(None, 0.1)],
            grid[(None, 0.01)],
            grid[(4, 0.1)],
            grid[(4, 0.01)],
        ]
        for name, grid in table.items()
    ]
    print()
    print(format_table(
        ["Method", "FP 10%", "FP 1%", "4-bit 10%", "4-bit 1%"],
        rows,
        title=f"Table 7 ({encoder}, CIFAR-like): CQ variant ablation (%)",
    ))

    means = {
        name: float(np.mean(list(grid.values())))
        for name, grid in table.items()
    }
    print(f"grid means: { {k: round(v, 1) for k, v in means.items()} }")
    # CQ-C must not be the worst variant (the paper's ordering holds on
    # average across networks; per-network noise gets tolerance).
    variant_means = {k: v for k, v in means.items() if k != "SimCLR"}
    assert means["CQ-C (6-16)"] >= min(variant_means.values()), (
        f"CQ-C ranked last among variants on {encoder}: {means}"
    )
