"""Table 5 — linear evaluation on six networks, CIFAR-like.

Paper: CQ-C beats SimCLR on five of six networks (all but ResNet-18).

Shape under reproduction: CQ-C's probe accuracy >= SimCLR's on the
majority of networks.
"""

from repro.experiments import MethodSpec, format_table, linear_eval_point

from .common import (
    cached_pretrain,
    cifar_like,
    cifar_protocol,
    cifar_pretrain_config,
    run_once,
    scaled_set,
)

import pytest

pytestmark = pytest.mark.slow

NETWORKS = [
    "resnet18", "resnet34", "resnet74", "resnet110", "resnet152",
    "mobilenetv2",
]

METHODS = [
    MethodSpec("SimCLR"),
    MethodSpec("CQ-C (6-16)", variant="C", precision_set=scaled_set("6-16")),
]


def test_table5_cifar_linear(benchmark):
    data = cifar_like()
    protocol = cifar_protocol()

    def run():
        table = {}
        for encoder in NETWORKS:
            config = cifar_pretrain_config(encoder)
            table[encoder] = {
                method.name: linear_eval_point(
                    cached_pretrain(method, "cifar", config),
                    data.train, data.test, protocol,
                )
                for method in METHODS
            }
        return table

    table = run_once(benchmark, run)

    print()
    print(format_table(
        ["Network", "SimCLR", "CQ-C (6-16)"],
        [
            [net, scores["SimCLR"], scores["CQ-C (6-16)"]]
            for net, scores in table.items()
        ],
        title="Table 5 (CIFAR-like): linear evaluation accuracy (%)",
    ))

    wins = sum(
        scores["CQ-C (6-16)"] >= scores["SimCLR"]
        for scores in table.values()
    )
    assert wins >= len(NETWORKS) // 2, (
        f"CQ-C should win the linear probe on most networks: {table}"
    )
