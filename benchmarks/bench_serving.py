"""Embedding-serving benchmark: integer engine vs fake-quant float path.

Builds one calibrated int8 ResNet-18 encoder, deploys it twice through
:class:`repro.serving.EmbeddingService`:

- ``int`` — lowered by :func:`repro.quant.convert` (integer im2col GEMM
  with per-channel requantization);
- ``fakequant`` — the float64 deployment reference produced by
  :func:`repro.quant.freeze_reference` (same folded weights, same frozen
  grids, full fake-quant arithmetic).

Both engines are element-close by construction (``convert`` verifies
this), so the load test measures pure engine cost.  A third section
re-runs the integer engine with the :class:`repro.serving.EmbeddingCache`
in front to show the hit path.

Writes ``BENCH_serving.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_serving.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import copy
import json
import pathlib
import time
from typing import Dict, List

import numpy as np

from repro.models import resnet18
from repro.quant import calibrate, convert, freeze_reference, prepare
from repro.serving import (
    EmbeddingCache,
    EmbeddingService,
    ModelRegistry,
    run_load,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serving.json"

BITS = 8
IMAGE_SIZE = 8
#: the repo's standard harness width (see benchmarks.common.pretrain_config).
WIDTH = 0.0625


def build_engines(rng: np.ndarray) -> Dict[str, object]:
    """One calibrated encoder, deployed as int and fake-quant engines."""
    model = resnet18(stem="cifar", width_multiplier=WIDTH,
                     rng=np.random.default_rng(0), norm="batch")
    prepare(model)
    batches = [
        rng.normal(size=(8, 3, IMAGE_SIZE, IMAGE_SIZE)).astype(np.float32)
        for _ in range(4)
    ]
    calibrate(model, batches, bits=BITS)
    fake = freeze_reference(copy.deepcopy(model))
    started = time.perf_counter()
    convert(model, input_shape=(2, 3, IMAGE_SIZE, IMAGE_SIZE))
    convert_s = time.perf_counter() - started
    return {"int": model, "fakequant": fake, "convert_s": convert_s}


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer requests")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    requests = 96 if args.quick else 768
    concurrency = 4
    distinct_inputs = 8 if args.quick else 32

    rng = np.random.default_rng(42)
    engines = build_engines(rng)
    inputs = [
        rng.normal(size=(3, IMAGE_SIZE, IMAGE_SIZE))
        for _ in range(distinct_inputs)
    ]

    registry = ModelRegistry()
    registry.publish("encoder-int", engines["int"], tags=(f"int{BITS}",))
    registry.publish("encoder-fake", engines["fakequant"],
                     tags=(f"fakequant{BITS}", "float64"))

    reports = {}
    for label, name in (("int", "encoder-int"), ("fakequant", "encoder-fake")):
        service = EmbeddingService(registry, name, max_batch_size=16,
                                   max_wait_ms=1.0)
        with service:
            # warmup builds the integer weight operands / fake-quant grids
            service.embed_many(inputs[:4])
            reports[label] = run_load(
                service, inputs, requests=requests,
                concurrency=concurrency, label=label,
            )
        print(f"{label:9s} {reports[label].to_dict()}")

    # cached integer path: every input repeats, so steady state is hits
    cache = EmbeddingCache(capacity=4 * len(inputs))
    cached_service = EmbeddingService(registry, "encoder-int",
                                      max_batch_size=16, max_wait_ms=1.0,
                                      cache=cache)
    with cached_service:
        cached_service.embed_many(inputs)  # populate
        cached_report = run_load(
            cached_service, inputs, requests=requests,
            concurrency=concurrency, label="int+cache",
        )
    print(f"int+cache {cached_report.to_dict()}")

    payload = {
        "quick": bool(args.quick),
        "model": "resnet18",
        "bits": BITS,
        "image_size": IMAGE_SIZE,
        "width_multiplier": WIDTH,
        "convert_s": round(engines["convert_s"], 4),
        "requests": requests,
        "concurrency": concurrency,
        "engines": {k: r.to_dict() for k, r in reports.items()},
        "cached": cached_report.to_dict(),
        "cache": {"hits": cache.hits, "misses": cache.misses,
                  "hit_rate": round(cache.hit_rate, 4)},
        "speedup": {
            "qps_int_over_fakequant": round(
                reports["int"].qps / reports["fakequant"].qps, 3),
            "p50_fakequant_over_int": round(
                reports["fakequant"].p50_ms / reports["int"].p50_ms, 3),
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if reports["int"].qps <= reports["fakequant"].qps:
        print("WARNING: integer engine not faster than fake-quant path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
