"""Shared benchmark scaffolding: scaled configs and a pretrain cache.

Scale note
----------
The paper trains full-width ResNets for 1000 epochs on CIFAR-100/ImageNet;
this harness runs 1/16-width encoders for tens of epochs on procedural
datasets (see DESIGN.md).  Quantization noise must be scaled with model
capacity for the augmentation to be in the same *effective* regime, so the
paper's precision sets map to scaled sets::

    paper 4-16  ->  scaled 2-8
    paper 6-16  ->  scaled 2-8   (CQ-A rows; the paper's stronger set)
    paper 8-16  ->  scaled 4-16  (CQ-C rows; the paper's milder set)

Benchmark output prints both labels.  Absolute accuracies are not
comparable to the paper by construction; the comparisons (who beats whom,
in which column) are the reproduction target, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.data import SyntheticConfig, SyntheticImages
from repro.experiments import (
    EvalProtocol,
    MethodSpec,
    PretrainConfig,
    PretrainOutcome,
    pretrain,
)

__all__ = [
    "SCALED_SETS",
    "imagenet_like",
    "cifar_like",
    "imagenet_protocol",
    "cifar_protocol",
    "pretrain_config",
    "imagenet_pretrain_config",
    "cifar_pretrain_config",
    "cached_pretrain",
    "run_once",
]

#: paper precision-set label -> scaled set used at this model scale.
SCALED_SETS: Dict[str, str] = {
    "4-16": "2-8",
    "6-16": "2-8",
    "8-16": "4-16",
}


def scaled_set(paper_label: str) -> str:
    return SCALED_SETS[paper_label]


_DATASETS: Dict[str, SyntheticImages] = {}


def imagenet_like() -> SyntheticImages:
    """Diverse, larger dataset (ImageNet stand-in), cached per process."""
    if "imagenet" not in _DATASETS:
        _DATASETS["imagenet"] = SyntheticImages(SyntheticConfig(
            num_classes=12, image_size=12, train_per_class=40,
            test_per_class=16, gratings_per_class=4, blobs_per_class=3,
            nuisance=1.4, noise_std=0.08, seed=0,
        ))
    return _DATASETS["imagenet"]


def cifar_like() -> SyntheticImages:
    """Smaller, lower-diversity dataset (CIFAR-100 stand-in)."""
    if "cifar" not in _DATASETS:
        _DATASETS["cifar"] = SyntheticImages(SyntheticConfig(
            num_classes=8, image_size=12, train_per_class=40,
            test_per_class=16, gratings_per_class=3, blobs_per_class=2,
            nuisance=0.5, noise_std=0.05, seed=1,
        ))
    return _DATASETS["cifar"]


def pretrain_config(
    encoder: str = "resnet18",
    epochs: int = 16,
    width: Optional[float] = None,
    augmentation_strength: float = 1.0,
) -> PretrainConfig:
    """Per-encoder pre-training budget, sized for CPU wall-clock."""
    deep = encoder in ("resnet74", "resnet110", "resnet152")
    if width is None:
        if deep:
            # The 6n+2 family's stage widths are 16/32/64; a 1/16 multiplier
            # would leave 4-channel stages, below trainability.  1/4 keeps
            # 4/8/16 channels and the nets learn within budget.
            width = 0.25
        elif encoder == "mobilenetv2":
            width = 0.125
        else:
            width = 0.0625
    if deep:
        epochs = min(epochs, 6)
    return PretrainConfig(
        encoder=encoder,
        width_multiplier=width,
        epochs=epochs,
        batch_size=32,
        augmentation_strength=augmentation_strength,
        seed=0,
    )


def imagenet_pretrain_config(encoder: str = "resnet18") -> PretrainConfig:
    """ImageNet-like tables: longer schedule, full-strength augmentation."""
    return pretrain_config(encoder, epochs=24, augmentation_strength=1.0)


def cifar_pretrain_config(encoder: str, epochs: int = 16) -> PretrainConfig:
    """CIFAR-like tables: milder augmentation (small-data recipe)."""
    return pretrain_config(encoder, epochs=epochs,
                           augmentation_strength=0.75)


def imagenet_protocol() -> EvalProtocol:
    return EvalProtocol(
        label_fractions=(0.1, 0.01),
        precisions=(None, 4),
        finetune_epochs=10,
        finetune_lr=0.02,
        linear_epochs=20,
        batch_size=16,
        seed=1,
        num_seeds=3,
    )


def cifar_protocol() -> EvalProtocol:
    return imagenet_protocol()


_PRETRAIN_CACHE: Dict[Tuple, PretrainOutcome] = {}


def cached_pretrain(
    method: MethodSpec,
    dataset_name: str,
    config: PretrainConfig,
) -> PretrainOutcome:
    """Pretrain once per (method, dataset, config) within the pytest run.

    Tables 1-3 share ImageNet-like encoders and Tables 4-7 share CIFAR-like
    ones, so the cache roughly halves benchmark wall-clock.
    """
    key = (method, dataset_name, config)
    if key not in _PRETRAIN_CACHE:
        data = imagenet_like() if dataset_name == "imagenet" else cifar_like()
        _PRETRAIN_CACHE[key] = pretrain(method, data.train, config)
    return _PRETRAIN_CACHE[key]


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    These are experiment regenerations, not micro-benchmarks; one round is
    the meaningful unit.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
