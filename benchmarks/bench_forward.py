"""Forward-engine benchmark: fused multi-view batching + quant-weight cache.

Measures per-step wall time, encoder-forward counts, and quantized-weight
sweep counts for every :class:`~repro.contrastive.CQVariant`, with the
precision-scoped engine on (``fuse_views=True, weight_cache=True``) and
off (both False — the historical per-view path).  The encoder is a
GroupNorm ResNet-18 with a LayerNorm projection head, i.e. free of batch
statistics, so the fused path is numerically identical to the unfused one
and the comparison is pure engine overhead.

Writes ``BENCH_forward.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_forward.py           # full
    PYTHONPATH=src python benchmarks/bench_forward.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.contrastive import ContrastiveQuantTrainer, CQVariant, SimCLRModel
from repro.models import resnet18
from repro.nn.optim import Adam
from repro.quant import count_quantized_modules

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_forward.json"

PRECISION_SET = "2-8"
IMAGE_SIZE = 8
#: the repo's standard harness width (see benchmarks.common.pretrain_config).
WIDTH = 0.0625


def make_trainer(variant: CQVariant, engine: bool) -> ContrastiveQuantTrainer:
    """Fresh trainer; ``engine`` toggles fusion + weight cache together."""
    rng = np.random.default_rng(0)
    encoder = resnet18(stem="cifar", width_multiplier=WIDTH,
                       rng=np.random.default_rng(0), norm="group")
    model = SimCLRModel(encoder, projection_dim=16,
                        rng=np.random.default_rng(1), head_norm="layer")
    optimizer = Adam(model.parameters(), lr=1e-3)
    return ContrastiveQuantTrainer(
        model,
        variant,
        PRECISION_SET,
        optimizer,
        rng=rng,
        fuse_views=engine,
        weight_cache=engine,
    )


def _make_views(batch: int, count: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    rng = np.random.default_rng(42)
    shape = (batch, 3, IMAGE_SIZE, IMAGE_SIZE)
    return [
        (rng.normal(size=shape).astype(np.float32),
         rng.normal(size=shape).astype(np.float32))
        for _ in range(count)
    ]


def _timed_round(trainer: ContrastiveQuantTrainer,
                 views: Sequence[Tuple[np.ndarray, np.ndarray]]) -> float:
    start = time.perf_counter()
    for v1, v2 in views:
        trainer.train_step(v1, v2)
    return time.perf_counter() - start


def _stats(trainer: ContrastiveQuantTrainer, engine: bool,
           round_times: List[float], steps: int,
           timed_steps: int, baseline) -> Dict[str, object]:
    forwards0, hits0, misses0 = baseline
    num_quantized = count_quantized_modules(trainer._encoder())
    misses = trainer.quant_cache.misses - misses0
    return {
        "fuse_views": engine,
        "weight_cache": engine,
        "fusion_active": trainer.fusion_active,
        "steps": timed_steps,
        "repeats": len(round_times),
        "seconds_per_step": min(round_times) / steps,
        "encoder_forwards_per_step": (
            trainer.metrics.counter("encoder_forwards").value - forwards0
        ) / timed_steps,
        "quant_cache_hits_per_step": (
            trainer.quant_cache.hits - hits0
        ) / timed_steps,
        "quant_cache_misses_per_step": misses / timed_steps,
        # One "sweep" fake-quantizes every quantized module's weight once.
        "weight_quant_sweeps_per_step": misses / timed_steps / num_quantized,
    }


def bench_variant(variant: CQVariant, batch: int, steps: int,
                  warmup: int, repeats: int) -> Dict[str, object]:
    """Fused and unfused trainers timed in interleaved rounds.

    Alternating fused/unfused rounds makes both engines sample the same
    machine-noise environment (thermal drift, co-tenancy) instead of one
    running entirely before the other; best-of-``repeats`` then filters
    the residual jitter.
    """
    trainers = {
        engine: make_trainer(variant, engine) for engine in (True, False)
    }
    views = _make_views(batch, warmup + repeats * steps)
    for engine in (True, False):
        for v1, v2 in views[:warmup]:
            trainers[engine].train_step(v1, v2)

    baselines = {
        engine: (
            trainers[engine].metrics.counter("encoder_forwards").value,
            trainers[engine].quant_cache.hits,
            trainers[engine].quant_cache.misses,
        )
        for engine in (True, False)
    }
    round_times: Dict[bool, List[float]] = {True: [], False: []}
    for r in range(repeats):
        chunk = views[warmup + r * steps:warmup + (r + 1) * steps]
        for engine in (True, False):
            round_times[engine].append(_timed_round(trainers[engine], chunk))

    timed_steps = repeats * steps
    fused = _stats(trainers[True], True, round_times[True], steps,
                   timed_steps, baselines[True])
    unfused = _stats(trainers[False], False, round_times[False], steps,
                     timed_steps, baselines[False])
    # Each round times fused then unfused back-to-back, so the per-round
    # ratio cancels slow machine phases; the median ratio is the robust
    # speedup estimate.
    ratios = sorted(u / f for f, u in zip(round_times[True],
                                          round_times[False]))
    return {
        "fused": fused,
        "unfused": unfused,
        "speedup": ratios[len(ratios) // 2],
    }


def run(steps: int, warmup: int, batch: int,
        repeats: int = 1) -> Dict[str, object]:
    results: Dict[str, object] = {}
    for variant in CQVariant:
        entry = bench_variant(variant, batch=batch, steps=steps,
                              warmup=warmup, repeats=repeats)
        results[variant.name] = entry
        fused, unfused = entry["fused"], entry["unfused"]
        print(
            f"CQ-{variant.name:<6} fused {1e3 * fused['seconds_per_step']:7.1f} ms/step "
            f"({fused['encoder_forwards_per_step']:.0f} fwd, "
            f"{fused['weight_quant_sweeps_per_step']:.1f} sweeps)   "
            f"unfused {1e3 * unfused['seconds_per_step']:7.1f} ms/step "
            f"({unfused['encoder_forwards_per_step']:.0f} fwd, "
            f"{unfused['weight_quant_sweeps_per_step']:.1f} sweeps)   "
            f"speedup {entry['speedup']:.2f}x"
        )
    return {
        "benchmark": "bench_forward",
        "config": {
            "encoder": "resnet18(norm='group')",
            "head_norm": "layer",
            "width_multiplier": WIDTH,
            "image_size": IMAGE_SIZE,
            "batch_size": batch,
            "precision_set": PRECISION_SET,
            "steps": steps,
            "warmup": warmup,
            "repeats": repeats,
        },
        "variants": results,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny smoke configuration for CI")
    parser.add_argument("--steps", type=int, default=None,
                        help="timed steps per round")
    parser.add_argument("--batch", type=int, default=None,
                        help="per-view batch size")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    steps = args.steps or (2 if args.quick else 6)
    batch = args.batch or (4 if args.quick else 8)
    warmup = 1
    repeats = 1 if args.quick else 5

    payload = run(steps=steps, warmup=warmup, batch=batch, repeats=repeats)
    payload["quick"] = args.quick
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
