"""Table 1 — SimCLR vs CQ-A vs CQ-C on the ImageNet-like dataset.

Paper (ResNet-18/34, fine-tune 10%/1% labels, FP and 4-bit):

    ResNet-18  SimCLR 42.44 / 19.18 / 39.12 / 17.24
               CQ-A   51.39 / 28.87 / 48.80 / 27.13   (6-16)
               CQ-C   51.13 / 28.97 / 48.63 / 26.66   (8-16)
    ResNet-34  SimCLR 47.53 / 23.43 / 44.65 / 21.69
               CQ-A   55.76 / 33.37 / 53.32 / 31.30
               CQ-C   55.72 / 33.70 / 53.33 / 31.64

Shape under reproduction: CQ variants beat SimCLR across the grid, with
the largest gains at 1% labels; gains persist at 4-bit deployment.
"""

import pytest

from repro.experiments import MethodSpec, finetune_grid, format_table

from .common import (
    cached_pretrain,
    imagenet_like,
    imagenet_protocol,
    imagenet_pretrain_config,
    run_once,
    scaled_set,
)

pytestmark = pytest.mark.slow

METHODS = [
    MethodSpec("SimCLR"),
    MethodSpec("CQ-A (6-16)", variant="A", precision_set=scaled_set("6-16")),
    MethodSpec("CQ-C (8-16)", variant="C", precision_set=scaled_set("8-16")),
]


@pytest.mark.parametrize("encoder", ["resnet18", "resnet34"])
def test_table1_finetune_grid(benchmark, encoder):
    data = imagenet_like()
    protocol = imagenet_protocol()
    config = imagenet_pretrain_config(encoder)

    def run():
        table = {}
        for method in METHODS:
            outcome = cached_pretrain(method, "imagenet", config)
            table[method.name] = finetune_grid(
                outcome, data.train, data.test, protocol
            )
        return table

    table = run_once(benchmark, run)

    rows = [
        [
            name,
            grid[(None, 0.1)],
            grid[(None, 0.01)],
            grid[(4, 0.1)],
            grid[(4, 0.01)],
        ]
        for name, grid in table.items()
    ]
    print()
    print(format_table(
        ["Method", "FP 10%", "FP 1%", "4-bit 10%", "4-bit 1%"],
        rows,
        title=f"Table 1 ({encoder}, ImageNet-like): fine-tuning accuracy (%)",
    ))

    # Reproduction assertions: the winning CQ variant beats SimCLR in every
    # column (the paper's headline), with sanity-level tolerance for the
    # tiny-scale noise floor.
    simclr = table["SimCLR"]
    best_cq = {
        key: max(table[m.name][key] for m in METHODS[1:])
        for key in simclr
    }
    wins = sum(best_cq[key] > simclr[key] for key in simclr)
    assert wins >= 3, (
        f"expected CQ to win >= 3 of 4 grid cells, won {wins}: "
        f"SimCLR={simclr}, best CQ={best_cq}"
    )
