"""Quantized retrieval benchmark: QPS + recall@k at 1M synthetic items.

Builds a million-item synthetic corpus (Gaussian mixture, L2-normalized
— the shape of contrastive embeddings), indexes it three ways and
measures batched top-10 search throughput plus agreement with the exact
float oracle:

- ``binary`` — median-threshold sign bits packed to ``uint64``,
  popcount Hamming scan (64x smaller than float32);
- ``pq``     — 8 x 256-code EMA product quantizer, ADC lookup-table
  scan (32x smaller);
- ``exact``  — blocked float32 brute-force cosine (the recall oracle
  and QPS baseline).

Writes ``BENCH_retrieval.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_retrieval.py           # full, 1M
    PYTHONPATH=src python benchmarks/bench_retrieval.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.nn.rng import derive_rng
from repro.retrieval import (
    BinaryIndex,
    BinaryQuantizer,
    PQIndex,
    ProductQuantizer,
    mean_average_precision,
    recall_at_k,
    topk_largest,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_retrieval.json"

DIM = 64
K = 10
CLUSTERS = 128
TRAIN_SAMPLE = 20_000
CHUNK = 100_000


def make_corpus(n: int, seed: int = 0) -> np.ndarray:
    """L2-normalized Gaussian-mixture rows, generated chunk-wise (float32)."""
    centers = derive_rng(seed, 0).normal(size=(CLUSTERS, DIM))
    corpus = np.empty((n, DIM), dtype=np.float32)
    for i, start in enumerate(range(0, n, CHUNK)):
        rng = derive_rng(seed, 1, i)
        count = min(CHUNK, n - start)
        rows = (centers[rng.integers(0, CLUSTERS, size=count)]
                + 0.5 * rng.normal(size=(count, DIM)))
        rows /= np.linalg.norm(rows, axis=1, keepdims=True)
        corpus[start:start + count] = rows.astype(np.float32)
    return corpus


def make_queries(corpus: np.ndarray, n_queries: int,
                 seed: int = 7) -> np.ndarray:
    """Perturbed corpus rows: queries with genuine near neighbours."""
    rng = derive_rng(seed)
    picks = rng.integers(0, corpus.shape[0], size=n_queries)
    rows = (corpus[picks].astype(np.float64)
            + 0.1 * rng.normal(size=(n_queries, DIM)))
    rows /= np.linalg.norm(rows, axis=1, keepdims=True)
    return rows


def exact_topk_blocked(queries: np.ndarray, corpus: np.ndarray,
                       k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked brute-force cosine top-k (everything is unit-norm)."""
    q32 = queries.astype(np.float32)
    best_ids = None
    best_sims = None
    for start in range(0, corpus.shape[0], CHUNK):
        sims = q32 @ corpus[start:start + CHUNK].T
        ids = np.arange(start, start + sims.shape[1], dtype=np.int64)
        if best_ids is None:
            merged_sims, merged_ids = sims, np.broadcast_to(ids, sims.shape)
        else:
            merged_sims = np.concatenate([best_sims, sims], axis=1)
            merged_ids = np.concatenate(
                [best_ids, np.broadcast_to(ids, sims.shape)], axis=1)
        pos, best_sims = topk_largest(merged_sims, k)
        best_ids = np.take_along_axis(np.asarray(merged_ids), pos, axis=1)
    return best_ids, best_sims


def timed_search(fn, queries: np.ndarray, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` QPS for a batched search callable."""
    result = None
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(queries)
        best = min(best, time.perf_counter() - started)
    return queries.shape[0] / best, result


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 20k items, 32 queries")
    parser.add_argument("--items", type=int, default=None,
                        help="override corpus size")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    n_items = args.items or (20_000 if args.quick else 1_000_000)
    n_queries = 32 if args.quick else 256
    repeats = 1 if args.quick else 3
    query_block = 8  # bounds the (block, n_items) distance intermediates

    started = time.perf_counter()
    corpus = make_corpus(n_items)
    queries = make_queries(corpus, n_queries)
    train = corpus[:min(TRAIN_SAMPLE, n_items)].astype(np.float64)
    gen_s = time.perf_counter() - started
    print(f"corpus: {n_items} x {DIM} in {gen_s:.1f}s")

    oracle_ids, _ = exact_topk_blocked(queries, corpus, K)
    report: Dict[str, Dict[str, float]] = {}

    # -- exact float baseline ---------------------------------------------
    exact_qps, _ = timed_search(
        lambda q: exact_topk_blocked(q, corpus, K), queries, repeats)
    report["exact"] = {
        "qps": round(exact_qps, 2),
        "bytes_per_item": DIM * corpus.itemsize,
    }
    print(f"exact    qps={exact_qps:10.1f}")

    # -- binary / Hamming --------------------------------------------------
    started = time.perf_counter()
    binary_index = BinaryIndex(BinaryQuantizer.fit_median(train),
                               query_block=query_block)
    for start in range(0, n_items, CHUNK):
        binary_index.add(corpus[start:start + CHUNK])
    binary_build_s = time.perf_counter() - started
    binary_qps, (ids, _) = timed_search(
        lambda q: binary_index.search(q, K), queries, repeats)
    wide_ids, _ = binary_index.search(queries, 100)
    report["binary"] = {
        "qps": round(binary_qps, 2),
        "build_s": round(binary_build_s, 3),
        "recall_at_10": round(recall_at_k(ids, oracle_ids, K), 4),
        # standard ANN metric: oracle top-10 found in 100 candidates
        "recall10_at_100": round(
            recall_at_k(wide_ids, oracle_ids, 100), 4),
        "map": round(mean_average_precision(ids, oracle_ids), 4),
        "bytes_per_item": binary_index.quantizer.words * 8,
    }
    print(f"binary   qps={binary_qps:10.1f} "
          f"recall@10={report['binary']['recall_at_10']:.3f}")

    # -- product quantizer / ADC ------------------------------------------
    started = time.perf_counter()
    pq = ProductQuantizer(DIM, 8, 256, rng=derive_rng(3))
    pq.fit(train, epochs=3, batch_size=2048, seed=4)
    pq_index = PQIndex(pq, query_block=query_block)
    for start in range(0, n_items, CHUNK):
        pq_index.add(corpus[start:start + CHUNK].astype(np.float64))
    pq_build_s = time.perf_counter() - started
    pq_qps, (ids, _) = timed_search(
        lambda q: pq_index.search(q, K), queries, repeats)
    wide_ids, _ = pq_index.search(queries, 100)
    report["pq"] = {
        "qps": round(pq_qps, 2),
        "build_s": round(pq_build_s, 3),
        "recall_at_10": round(recall_at_k(ids, oracle_ids, K), 4),
        "recall10_at_100": round(
            recall_at_k(wide_ids, oracle_ids, 100), 4),
        "map": round(mean_average_precision(ids, oracle_ids), 4),
        "bytes_per_item": pq.num_subspaces * pq.code_dtype.itemsize,
    }
    print(f"pq       qps={pq_qps:10.1f} "
          f"recall@10={report['pq']['recall_at_10']:.3f}")

    payload = {
        "quick": bool(args.quick),
        "items": n_items,
        "dim": DIM,
        "queries": n_queries,
        "k": K,
        "clusters": CLUSTERS,
        "train_sample": int(train.shape[0]),
        "cpu_count": os.cpu_count(),
        "corpus_gen_s": round(gen_s, 3),
        "indexes": report,
        "compression": {
            name: round(report["exact"]["bytes_per_item"]
                        / report[name]["bytes_per_item"], 1)
            for name in ("binary", "pq")
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Quantized scans must beat the float baseline on throughput and
    # retain real oracle agreement, else the subsystem regressed.
    for name in ("binary", "pq"):
        if report[name]["recall_at_10"] <= 0.0:
            print(f"WARNING: {name} recall@10 is zero")
            return 1
    if report["binary"]["qps"] <= report["exact"]["qps"]:
        print("WARNING: binary scan not faster than exact float search")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
