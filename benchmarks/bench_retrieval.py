"""Quantized retrieval benchmark: QPS + recall@k at 1M synthetic items.

Builds a million-item synthetic corpus (Gaussian mixture, L2-normalized
— the shape of contrastive embeddings), indexes it six ways and measures
batched top-10 search throughput plus agreement with the exact float
oracle:

- ``exact``         — blocked float32 brute-force cosine (the recall
  oracle and QPS baseline);
- ``binary``        — median-threshold sign bits packed to ``uint64``,
  popcount Hamming scan (64x smaller than float32);
- ``binary_rerank`` — the same Hamming scan as a candidate generator:
  top-R shortlist re-scored exactly against a float32 store;
- ``pq``            — 8 x 256-code EMA product quantizer, memory-bounded
  ADC lookup-table scan (32x smaller);
- ``ivf_pq``        — coarse cells + ``nprobe`` probing with residual PQ
  codes (scans ~``nprobe/num_cells`` of the corpus);
- ``ivf_binary``    — the same cells with raw packed binary codes.

A ``sweep`` section records the recall-vs-QPS trade curves (``nprobe``
for IVF, shortlist width for rerank).  Writes ``BENCH_retrieval.json``
at the repo root::

    PYTHONPATH=src python benchmarks/bench_retrieval.py           # full, 1M
    PYTHONPATH=src python benchmarks/bench_retrieval.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.nn.rng import derive_rng
from repro.retrieval import (
    BinaryIndex,
    BinaryQuantizer,
    IVFIndex,
    PQIndex,
    ProductQuantizer,
    mean_average_precision,
    recall_at_k,
    topk_largest,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_retrieval.json"

DIM = 64
K = 10
CLUSTERS = 128
TRAIN_SAMPLE = 20_000
CHUNK = 100_000
RERANK = 1_000


def make_corpus(n: int, seed: int = 0) -> np.ndarray:
    """L2-normalized Gaussian-mixture rows, generated chunk-wise (float32)."""
    centers = derive_rng(seed, 0).normal(size=(CLUSTERS, DIM))
    corpus = np.empty((n, DIM), dtype=np.float32)
    for i, start in enumerate(range(0, n, CHUNK)):
        rng = derive_rng(seed, 1, i)
        count = min(CHUNK, n - start)
        rows = (centers[rng.integers(0, CLUSTERS, size=count)]
                + 0.5 * rng.normal(size=(count, DIM)))
        rows /= np.linalg.norm(rows, axis=1, keepdims=True)
        corpus[start:start + count] = rows.astype(np.float32)
    return corpus


def make_queries(corpus: np.ndarray, n_queries: int,
                 seed: int = 7) -> np.ndarray:
    """Perturbed corpus rows: queries with genuine near neighbours."""
    rng = derive_rng(seed)
    picks = rng.integers(0, corpus.shape[0], size=n_queries)
    rows = (corpus[picks].astype(np.float64)
            + 0.1 * rng.normal(size=(n_queries, DIM)))
    rows /= np.linalg.norm(rows, axis=1, keepdims=True)
    return rows


def exact_topk_blocked(queries: np.ndarray, corpus: np.ndarray,
                       k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked brute-force cosine top-k (everything is unit-norm)."""
    q32 = queries.astype(np.float32)
    best_ids = None
    best_sims = None
    for start in range(0, corpus.shape[0], CHUNK):
        sims = q32 @ corpus[start:start + CHUNK].T
        ids = np.arange(start, start + sims.shape[1], dtype=np.int64)
        if best_ids is None:
            merged_sims, merged_ids = sims, np.broadcast_to(ids, sims.shape)
        else:
            merged_sims = np.concatenate([best_sims, sims], axis=1)
            merged_ids = np.concatenate(
                [best_ids, np.broadcast_to(ids, sims.shape)], axis=1)
        pos, best_sims = topk_largest(merged_sims, k)
        best_ids = np.take_along_axis(np.asarray(merged_ids), pos, axis=1)
    return best_ids, best_sims


def timed_search(fn, queries: np.ndarray, repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` QPS for a batched search callable.

    A small untimed warmup call first: the initial search pays one-off
    page-fault/scratch-allocation costs that would otherwise dominate
    single-repeat quick runs.
    """
    fn(queries[: min(8, queries.shape[0])])
    result = None
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(queries)
        best = min(best, time.perf_counter() - started)
    return queries.shape[0] / best, result


def add_chunked(index, corpus: np.ndarray) -> None:
    for start in range(0, corpus.shape[0], CHUNK):
        index.add(corpus[start:start + CHUNK].astype(np.float64))


def quality(ids: np.ndarray, wide_ids: np.ndarray,
            oracle_ids: np.ndarray) -> Dict[str, float]:
    return {
        "recall_at_10": round(recall_at_k(ids, oracle_ids, K), 4),
        # standard ANN metric: oracle top-10 found in 100 candidates
        "recall10_at_100": round(recall_at_k(wide_ids, oracle_ids, 100), 4),
        "map": round(mean_average_precision(ids, oracle_ids), 4),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 20k items, 32 queries")
    parser.add_argument("--items", type=int, default=None,
                        help="override corpus size")
    parser.add_argument("--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    n_items = args.items or (20_000 if args.quick else 1_000_000)
    n_queries = 32 if args.quick else 256
    # best-of-3 even in quick mode: single-shot timings on a loaded CI
    # box are too noisy for the relative gates below
    repeats = 3
    query_block = 8  # bounds the (block, item_block) scan intermediates
    # quick keeps the full-run scan fraction (nprobe/num_cells = 1/16)
    num_cells = 128 if args.quick else 256
    nprobe = 8 if args.quick else 16
    nprobe_sweep = (2, 8, 32) if args.quick else (4, 16, 64, 256)
    rerank_sweep = (100, 1_000) if args.quick else (100, 1_000, 4_000)

    started = time.perf_counter()
    corpus = make_corpus(n_items)
    queries = make_queries(corpus, n_queries)
    train = corpus[:min(TRAIN_SAMPLE, n_items)].astype(np.float64)
    gen_s = time.perf_counter() - started
    print(f"corpus: {n_items} x {DIM} in {gen_s:.1f}s")

    oracle_ids, _ = exact_topk_blocked(queries, corpus, K)
    report: Dict[str, Dict[str, float]] = {}
    sweep: Dict[str, List[Dict[str, float]]] = {}

    # -- exact float baseline ---------------------------------------------
    exact_qps, _ = timed_search(
        lambda q: exact_topk_blocked(q, corpus, K), queries, repeats)
    report["exact"] = {
        "qps": round(exact_qps, 2),
        "bytes_per_item": DIM * corpus.itemsize,
    }
    print(f"exact         qps={exact_qps:10.1f}")

    # -- binary / Hamming (with and without exact rerank) -------------------
    started = time.perf_counter()
    binary_quantizer = BinaryQuantizer.fit_median(train)
    binary_index = BinaryIndex(binary_quantizer, query_block=query_block,
                               store_embeddings=True)
    add_chunked(binary_index, corpus)
    binary_build_s = time.perf_counter() - started
    binary_qps, (ids, _) = timed_search(
        lambda q: binary_index.search(q, K), queries, repeats)
    wide_ids, _ = binary_index.search(queries, 100)
    report["binary"] = {
        "qps": round(binary_qps, 2),
        "build_s": round(binary_build_s, 3),
        **quality(ids, wide_ids, oracle_ids),
        "bytes_per_item": binary_index.quantizer.words * 8,
    }
    print(f"binary        qps={binary_qps:10.1f} "
          f"recall@10={report['binary']['recall_at_10']:.3f}")

    rr_qps, (ids, _) = timed_search(
        lambda q: binary_index.search(q, K, rerank=RERANK), queries, repeats)
    wide_ids, _ = binary_index.search(queries, 100, rerank=RERANK)
    report["binary_rerank"] = {
        "qps": round(rr_qps, 2),
        "build_s": round(binary_build_s, 3),
        "rerank": RERANK,
        **quality(ids, wide_ids, oracle_ids),
        # packed codes + the retained float32 rows
        "bytes_per_item": binary_index.quantizer.words * 8
        + DIM * 4,
    }
    print(f"binary_rerank qps={rr_qps:10.1f} "
          f"recall@10={report['binary_rerank']['recall_at_10']:.3f}")
    sweep["binary_rerank"] = []
    for width in rerank_sweep:
        width = min(width, n_items)
        sweep_qps, (ids, _) = timed_search(
            lambda q, w=width: binary_index.search(q, K, rerank=w),
            queries, 1)
        sweep["binary_rerank"].append({
            "rerank": width,
            "qps": round(sweep_qps, 2),
            "recall_at_10": round(recall_at_k(ids, oracle_ids, K), 4),
        })

    # -- product quantizer / ADC ------------------------------------------
    started = time.perf_counter()
    pq = ProductQuantizer(DIM, 8, 256, rng=derive_rng(3))
    pq.fit(train, epochs=3, batch_size=2048, seed=4)
    pq_index = PQIndex(pq, query_block=query_block)
    add_chunked(pq_index, corpus)
    pq_build_s = time.perf_counter() - started
    pq_qps, (ids, _) = timed_search(
        lambda q: pq_index.search(q, K), queries, repeats)
    wide_ids, _ = pq_index.search(queries, 100)
    report["pq"] = {
        "qps": round(pq_qps, 2),
        "build_s": round(pq_build_s, 3),
        **quality(ids, wide_ids, oracle_ids),
        "bytes_per_item": pq.num_subspaces * pq.code_dtype.itemsize,
    }
    print(f"pq            qps={pq_qps:10.1f} "
          f"recall@10={report['pq']['recall_at_10']:.3f}")

    # -- IVF: coarse cells + nprobe, residual PQ cells ----------------------
    started = time.perf_counter()
    ivf_pq = IVFIndex.fit(train, num_cells=num_cells, num_subspaces=8,
                          num_codes=256, nprobe=nprobe, epochs=3,
                          batch_size=2048, seed=5)
    add_chunked(ivf_pq, corpus)
    ivf_pq_build_s = time.perf_counter() - started
    ivf_pq_qps, (ids, _) = timed_search(
        lambda q: ivf_pq.search(q, K), queries, repeats)
    wide_ids, _ = ivf_pq.search(queries, 100)
    report["ivf_pq"] = {
        "qps": round(ivf_pq_qps, 2),
        "build_s": round(ivf_pq_build_s, 3),
        "num_cells": num_cells,
        "nprobe": nprobe,
        **quality(ids, wide_ids, oracle_ids),
        "bytes_per_item": pq.num_subspaces * pq.code_dtype.itemsize
        + 8 + 4,  # codes + id + float32 bias per item
    }
    print(f"ivf_pq        qps={ivf_pq_qps:10.1f} "
          f"recall@10={report['ivf_pq']['recall_at_10']:.3f}")
    sweep["ivf_pq_nprobe"] = []
    for probes in nprobe_sweep:
        probes = min(probes, num_cells)
        sweep_qps, (ids, _) = timed_search(
            lambda q, p=probes: ivf_pq.search(q, K, nprobe=p), queries, 1)
        sweep["ivf_pq_nprobe"].append({
            "nprobe": probes,
            "qps": round(sweep_qps, 2),
            "recall_at_10": round(recall_at_k(ids, oracle_ids, K), 4),
        })

    # -- IVF with raw binary cells ------------------------------------------
    started = time.perf_counter()
    ivf_binary = IVFIndex(ivf_pq.coarse, binary_quantizer, nprobe=nprobe)
    add_chunked(ivf_binary, corpus)
    ivf_binary_build_s = time.perf_counter() - started
    ivf_binary_qps, (ids, _) = timed_search(
        lambda q: ivf_binary.search(q, K), queries, repeats)
    wide_ids, _ = ivf_binary.search(queries, 100)
    report["ivf_binary"] = {
        "qps": round(ivf_binary_qps, 2),
        "build_s": round(ivf_binary_build_s, 3),
        "num_cells": num_cells,
        "nprobe": nprobe,
        **quality(ids, wide_ids, oracle_ids),
        "bytes_per_item": binary_index.quantizer.words * 8 + 8,
    }
    print(f"ivf_binary    qps={ivf_binary_qps:10.1f} "
          f"recall@10={report['ivf_binary']['recall_at_10']:.3f}")

    payload = {
        "quick": bool(args.quick),
        "items": n_items,
        "dim": DIM,
        "queries": n_queries,
        "k": K,
        "clusters": CLUSTERS,
        "train_sample": int(train.shape[0]),
        "cpu_count": os.cpu_count(),
        "corpus_gen_s": round(gen_s, 3),
        "indexes": report,
        "sweep": sweep,
        "compression": {
            name: round(report["exact"]["bytes_per_item"]
                        / report[name]["bytes_per_item"], 1)
            for name in ("binary", "pq", "ivf_pq", "ivf_binary")
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Relative gates: the partitioned/reranked paths must actually pay
    # for themselves, else the subsystem regressed.  Speed gates re-time
    # both sides interleaved in one loop — box-speed drift between rows
    # measured minutes apart would otherwise flip them randomly.
    gate_queries = queries[:min(64, n_queries)]

    def interleaved(fn_a, fn_b, rounds: int = 3) -> Tuple[float, float]:
        fn_a(gate_queries)
        fn_b(gate_queries)
        best_a = best_b = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            fn_a(gate_queries)
            best_a = min(best_a, time.perf_counter() - started)
            started = time.perf_counter()
            fn_b(gate_queries)
            best_b = min(best_b, time.perf_counter() - started)
        return best_a, best_b

    failures = []
    for name in ("binary", "pq", "ivf_pq", "ivf_binary"):
        if report[name]["recall_at_10"] <= 0.0:
            failures.append(f"{name} recall@10 is zero")
    binary_s, exact_s = interleaved(
        lambda q: binary_index.search(q, K),
        lambda q: exact_topk_blocked(q, corpus, K))
    print(f"gate: binary {binary_s * 1e3:.1f}ms vs exact "
          f"{exact_s * 1e3:.1f}ms")
    if binary_s >= exact_s:
        failures.append("binary scan not faster than exact float search")
    ivf_s, pq_s = interleaved(
        lambda q: ivf_pq.search(q, K),
        lambda q: pq_index.search(q, K))
    print(f"gate: ivf_pq {ivf_s * 1e3:.1f}ms vs pq {pq_s * 1e3:.1f}ms")
    if ivf_s >= pq_s:
        failures.append("ivf_pq not faster than the exhaustive pq scan")
    if (report["binary_rerank"]["recall_at_10"]
            < report["binary"]["recall_at_10"]):
        failures.append("reranked recall fell below the raw Hamming scan")
    for message in failures:
        print(f"WARNING: {message}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
