"""Ablation — quantization noise vs Gaussian weight noise as augmentation.

The paper's "Insights" (Sec. 4.2) propose exploring other perturbations on
weights/activations.  This bench trains the CQ-C loss assembly with (a)
the paper's quantization augmentation and (b) Gaussian weight noise at
matched relative magnitudes, plus the SimCLR baseline, and compares by
linear evaluation.
"""

import numpy as np

from repro.contrastive import (
    ContrastiveQuantTrainer,
    NoiseContrastiveTrainer,
    SimCLRModel,
    SimCLRTrainer,
)
from repro.data import DataLoader, TwoViewTransform, simclr_augmentations
from repro.eval import linear_evaluation
from repro.experiments import format_table
from repro.models import resnet18
from repro.nn.optim import Adam

from .common import cifar_like, run_once

import pytest

pytestmark = pytest.mark.slow


def _fresh(data, seed=1):
    encoder = resnet18(width_multiplier=0.0625,
                       rng=np.random.default_rng(seed))
    model = SimCLRModel(encoder, projection_dim=16,
                        rng=np.random.default_rng(2))
    loader = DataLoader(
        data.train, batch_size=32, shuffle=True, drop_last=True,
        transform=TwoViewTransform(simclr_augmentations(0.75)),
        rng=np.random.default_rng(4),
    )
    return encoder, model, loader


def _evaluate(encoder, data) -> float:
    return 100.0 * linear_evaluation(
        encoder, data.train, data.test, epochs=20,
        rng=np.random.default_rng(5),
    )


def test_ablation_perturbation_kind(benchmark):
    data = cifar_like()

    def run():
        scores = {}

        encoder, model, loader = _fresh(data)
        trainer = SimCLRTrainer(model, Adam(list(model.parameters()),
                                            lr=2e-3))
        trainer.fit(loader, epochs=10)
        scores["SimCLR (no perturbation)"] = _evaluate(encoder, data)

        encoder, model, loader = _fresh(data)
        cq = ContrastiveQuantTrainer(
            model, "C", "2-8", Adam(list(model.parameters()), lr=2e-3),
            rng=np.random.default_rng(3),
        )
        cq.fit(loader, epochs=10)
        cq.finalize()
        scores["CQ-C (quantization noise)"] = _evaluate(encoder, data)

        encoder, model, loader = _fresh(data)
        noise = NoiseContrastiveTrainer(
            model, noise_set=[0.0, 0.05, 0.1, 0.2],
            optimizer=Adam(list(model.parameters()), lr=2e-3),
            rng=np.random.default_rng(3),
        )
        noise.fit(loader, epochs=10)
        scores["CQ-C (gaussian weight noise)"] = _evaluate(encoder, data)

        return scores

    scores = run_once(benchmark, run)

    print()
    print(format_table(
        ["Weight/activation augmentation", "Linear eval acc (%)"],
        [[kind, value] for kind, value in scores.items()],
        title="Ablation: perturbation kind in the CQ-C loss assembly "
              "(paper future-work direction)",
    ))

    for value in scores.values():
        assert value > 100.0 / 8
