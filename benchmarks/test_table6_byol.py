"""Table 6 — BYOL vs CQ-C(BYOL) on three networks, CIFAR-like.

Paper (fine-tune, precision set 6-16): CQ-C improves over vanilla BYOL,
e.g. +0.94~+6.32 points at 10% labels (FP).

Shape under reproduction: CQ-C(BYOL) >= BYOL on most of the fine-tuning
grid for most networks.
"""

import pytest

from repro.experiments import MethodSpec, finetune_grid, format_table

from .common import (
    cached_pretrain,
    cifar_like,
    cifar_protocol,
    cifar_pretrain_config,
    run_once,
    scaled_set,
)

pytestmark = pytest.mark.slow

NETWORKS = ["resnet18", "resnet34", "mobilenetv2"]

METHODS = [
    MethodSpec("BYOL", base="byol"),
    MethodSpec("CQ-C (6-16)", variant="C",
               precision_set=scaled_set("6-16"), base="byol"),
]


@pytest.mark.parametrize("encoder", NETWORKS)
def test_table6_byol(benchmark, encoder):
    data = cifar_like()
    protocol = cifar_protocol()
    config = cifar_pretrain_config(encoder, epochs=12)

    def run():
        return {
            method.name: finetune_grid(
                cached_pretrain(method, "cifar", config),
                data.train, data.test, protocol,
            )
            for method in METHODS
        }

    table = run_once(benchmark, run)

    rows = [
        [
            name,
            grid[(None, 0.1)],
            grid[(None, 0.01)],
            grid[(4, 0.1)],
            grid[(4, 0.01)],
        ]
        for name, grid in table.items()
    ]
    print()
    print(format_table(
        ["Method", "FP 10%", "FP 1%", "4-bit 10%", "4-bit 1%"],
        rows,
        title=f"Table 6 ({encoder}, CIFAR-like, BYOL base): fine-tune acc (%)",
    ))

    byol, cqc = table["BYOL"], table["CQ-C (6-16)"]
    wins = sum(cqc[key] >= byol[key] for key in byol)
    assert wins >= 1, f"CQ-C(BYOL) lost every cell on {encoder}: {table}"
