"""Table 2 — linear evaluation on the ImageNet-like dataset.

Paper: SimCLR / CQ-C / CQ-A = 29.31 / 31.90 / 44.91 (ResNet-18)
                              34.96 / 36.14 / 47.88 (ResNet-34)

Shape under reproduction: CQ variants improve the frozen representation
over SimCLR on the diverse dataset.
"""

import pytest

from repro.experiments import MethodSpec, format_table, linear_eval_point

from .common import (
    cached_pretrain,
    imagenet_like,
    imagenet_protocol,
    imagenet_pretrain_config,
    run_once,
    scaled_set,
)

pytestmark = pytest.mark.slow

METHODS = [
    MethodSpec("SimCLR"),
    MethodSpec("CQ-C (8-16)", variant="C", precision_set=scaled_set("8-16")),
    MethodSpec("CQ-A (6-16)", variant="A", precision_set=scaled_set("6-16")),
]


@pytest.mark.parametrize("encoder", ["resnet18", "resnet34"])
def test_table2_linear_eval(benchmark, encoder):
    data = imagenet_like()
    protocol = imagenet_protocol()
    config = imagenet_pretrain_config(encoder)

    def run():
        return {
            method.name: linear_eval_point(
                cached_pretrain(method, "imagenet", config),
                data.train, data.test, protocol,
            )
            for method in METHODS
        }

    scores = run_once(benchmark, run)

    print()
    print(format_table(
        ["Method", "Linear eval acc (%)"],
        [[name, value] for name, value in scores.items()],
        title=f"Table 2 ({encoder}, ImageNet-like): linear evaluation",
    ))

    best_cq = max(scores["CQ-C (8-16)"], scores["CQ-A (6-16)"])
    assert best_cq > scores["SimCLR"], (
        f"expected a CQ variant to beat SimCLR under linear eval: {scores}"
    )
