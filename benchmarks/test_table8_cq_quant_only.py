"""Table 8 — CQ-Quant: quantization as the *only* augmentation.

Paper (ResNet-74/110, CIFAR-100): CQ-Quant with any precision set beats
the no-SSL baseline; the more diverse precision set (6-16) beats the less
diverse one (8-16); both lose badly to full CQ (data augmentation remains
necessary).

Shape under reproduction: CQ-Quant > no-SSL on fine-tuning and linear
evaluation; diversity ordering measured and reported.
"""

import pytest

from repro.experiments import (
    MethodSpec,
    finetune_grid,
    format_table,
    linear_eval_point,
    untrained_outcome,
)

from .common import (
    cached_pretrain,
    cifar_like,
    cifar_protocol,
    cifar_pretrain_config,
    run_once,
    scaled_set,
)

pytestmark = pytest.mark.slow

NETWORKS = ["resnet74", "resnet110"]


@pytest.mark.parametrize("encoder", NETWORKS)
def test_table8_quant_only(benchmark, encoder):
    data = cifar_like()
    protocol = cifar_protocol()
    config = cifar_pretrain_config(encoder)

    methods = [
        MethodSpec("CQ-Quant (6-16)", variant="QUANT",
                   precision_set=scaled_set("6-16")),
        MethodSpec("CQ-Quant (8-16)", variant="QUANT",
                   precision_set=scaled_set("8-16")),
    ]

    def run():
        results = {}
        for method in methods:
            outcome = cached_pretrain(method, "cifar", config)
            results[method.name] = {
                "grid": finetune_grid(outcome, data.train, data.test,
                                      protocol),
                "linear": linear_eval_point(outcome, data.train, data.test,
                                            protocol),
            }
        baseline = untrained_outcome("No SSL Training", config)
        results["No SSL Training"] = {
            "grid": finetune_grid(baseline, data.train, data.test, protocol),
            "linear": linear_eval_point(baseline, data.train, data.test,
                                        protocol),
        }
        return results

    results = run_once(benchmark, run)

    rows = [
        [
            name,
            r["grid"][(None, 0.01)],
            r["grid"][(None, 0.1)],
            r["linear"],
        ]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["Method", "FP 1%", "FP 10%", "Linear eval"],
        rows,
        title=f"Table 8 ({encoder}, CIFAR-like): quant-only augmentation (%)",
    ))

    no_ssl = results["No SSL Training"]["linear"]
    best_quant = max(
        results["CQ-Quant (6-16)"]["linear"],
        results["CQ-Quant (8-16)"]["linear"],
    )
    assert best_quant > no_ssl, (
        f"CQ-Quant should beat the no-SSL probe on {encoder}: {results}"
    )
