"""Ablation — random precision sampling vs a CPT-style cyclic schedule.

The paper samples (q1, q2) uniformly each iteration; its reference [3]
(CPT) argues for *scheduling* precision cyclically.  This bench trains
CQ-C under both strategies with identical budgets and compares the
resulting representations by linear evaluation.
"""

import numpy as np

from repro.contrastive import ContrastiveQuantTrainer, SimCLRModel
from repro.data import DataLoader, TwoViewTransform, simclr_augmentations
from repro.eval import linear_evaluation
from repro.experiments import format_table
from repro.models import resnet18
from repro.nn.optim import Adam
from repro.quant import CyclicPrecisionSchedule, PrecisionSet

from .common import cifar_like, run_once

import pytest

pytestmark = pytest.mark.slow


def _train(sampler_kind: str, data) -> float:
    rng = np.random.default_rng(0)
    encoder = resnet18(width_multiplier=0.0625, rng=np.random.default_rng(1))
    model = SimCLRModel(encoder, projection_dim=16,
                        rng=np.random.default_rng(2))
    sampler = None
    if sampler_kind == "cyclic":
        sampler = CyclicPrecisionSchedule(PrecisionSet.parse("2-8"),
                                          period=16)
    trainer = ContrastiveQuantTrainer(
        model, "C", "2-8", Adam(list(model.parameters()), lr=2e-3),
        rng=np.random.default_rng(3), precision_sampler=sampler,
    )
    loader = DataLoader(
        data.train, batch_size=32, shuffle=True, drop_last=True,
        transform=TwoViewTransform(simclr_augmentations(0.75)),
        rng=np.random.default_rng(4),
    )
    trainer.fit(loader, epochs=10)
    trainer.finalize()
    return 100.0 * linear_evaluation(
        encoder, data.train, data.test, epochs=20,
        rng=np.random.default_rng(5),
    )


def test_ablation_precision_schedule(benchmark):
    data = cifar_like()

    def run():
        return {kind: _train(kind, data) for kind in ("random", "cyclic")}

    scores = run_once(benchmark, run)

    print()
    print(format_table(
        ["Precision strategy", "Linear eval acc (%)"],
        [[kind, value] for kind, value in scores.items()],
        title="Ablation: random sampling (paper) vs cyclic schedule (CPT)",
    ))

    # Both strategies must produce usable representations; which one wins
    # at this scale is reported, not asserted.
    for value in scores.values():
        assert value > 100.0 / 8  # above chance on 8 classes
