"""Table 3 — transfer of pretrained encoders to detection (VOC stand-in).

Paper (AP / AP50 / AP75):

    ResNet-18  SimCLR 25.09 / 49.20 / 22.74
               CQ-C   32.94 / 63.96 / 29.28
               CQ-A   36.39 / 69.08 / 32.64

Shape under reproduction: CQ-pretrained backbones transfer at least as
well as SimCLR ones to the localization task.
"""

import numpy as np

from repro.data.detection import SyntheticDetection
from repro.eval import evaluate_detection, train_detector
from repro.experiments import MethodSpec, format_table

from .common import (cached_pretrain, imagenet_pretrain_config,
                     run_once, scaled_set)

import pytest

pytestmark = pytest.mark.slow

METHODS = [
    MethodSpec("SimCLR"),
    MethodSpec("CQ-C (8-16)", variant="C", precision_set=scaled_set("8-16")),
    MethodSpec("CQ-A (6-16)", variant="A", precision_set=scaled_set("6-16")),
]


def test_table3_detection_transfer(benchmark):
    config = imagenet_pretrain_config("resnet18")
    train_scenes = SyntheticDetection(
        num_scenes=72, num_classes=3, image_size=32, max_objects=2, seed=3,
    )
    test_scenes = SyntheticDetection(
        num_scenes=32, num_classes=3, image_size=32, max_objects=2, seed=4,
    )

    def run():
        results = {}
        for method in METHODS:
            outcome = cached_pretrain(method, "imagenet", config)
            backbone = outcome.make_encoder(quantized=False)
            model = train_detector(
                backbone, train_scenes, epochs=30, batch_size=8,
                rng=np.random.default_rng(0),
            )
            results[method.name] = evaluate_detection(model, test_scenes)
        return results

    results = run_once(benchmark, run)

    print()
    print(format_table(
        ["Method", "AP", "AP50", "AP75"],
        [
            [name, m["AP"], m["AP50"], m["AP75"]]
            for name, m in results.items()
        ],
        title="Table 3 (ResNet-18 backbone): detection transfer",
    ))

    best_cq = max(
        results["CQ-C (8-16)"]["AP50"], results["CQ-A (6-16)"]["AP50"]
    )
    # Detection transfer fully fine-tunes the backbone on 72 scenes, so
    # single-run AP is dominated by detector-training noise at this scale;
    # the assertion encodes "CQ transfer does not collapse", and the
    # measured ordering is recorded in EXPERIMENTS.md.
    assert best_cq >= results["SimCLR"]["AP50"] - 15.0, (
        f"CQ transfer collapsed relative to SimCLR: {results}"
    )
