"""Figure 1 — the three Contrastive Quant design pipelines.

The paper's Fig. 1 is a schematic; its checkable content is the loss-term
assembly of each pipeline (Eqs. 5-9).  This bench verifies the assembly
programmatically: per-variant forward-pass counts and loss-term
inventories, timed over one full loss construction per variant.
"""

import numpy as np

from repro.contrastive import ContrastiveQuantTrainer, CQVariant, SimCLRModel
from repro.experiments import format_table
from repro.models import resnet18
from repro.nn.optim import Adam

from .common import run_once

import pytest

pytestmark = pytest.mark.slow

EXPECTED_FORWARDS = {
    CQVariant.A: 2,
    CQVariant.B: 4,
    CQVariant.C: 4,
    CQVariant.QUANT: 2,
}


def _build_trainer(variant, seed=0):
    rng = np.random.default_rng(seed)
    encoder = resnet18(width_multiplier=0.0625, rng=rng)
    model = SimCLRModel(encoder, projection_dim=8, rng=rng)
    return ContrastiveQuantTrainer(
        model, variant, "2-8", Adam(list(model.parameters()), lr=1e-3),
        rng=np.random.default_rng(1),
    )


def test_figure1_pipeline_structure(benchmark):
    rng = np.random.default_rng(3)
    v1 = rng.normal(size=(8, 3, 12, 12)).astype(np.float32)
    v2 = v1 + 0.05 * rng.normal(size=v1.shape).astype(np.float32)

    def run():
        report = {}
        for variant in CQVariant:
            trainer = _build_trainer(variant)
            forwards = []
            original = trainer._project

            def spy(x, bits, _original=original, _forwards=forwards):
                _forwards.append(bits)
                return _original(x, bits)

            trainer._project = spy
            loss = trainer.compute_loss(v1, v2)
            report[variant] = {
                "terms": variant.loss_terms(),
                "forwards": list(forwards),
                "loss": float(loss.data),
            }
        return report

    report = run_once(benchmark, run)

    print()
    print(format_table(
        ["Pipeline", "Loss terms", "Encoder passes", "Example loss"],
        [
            [
                variant.value,
                " + ".join(info["terms"]),
                len(info["forwards"]),
                info["loss"],
            ]
            for variant, info in report.items()
        ],
        title="Figure 1: Contrastive Quant design pipelines",
    ))

    for variant, info in report.items():
        assert len(info["forwards"]) == EXPECTED_FORWARDS[variant]
        assert np.isfinite(info["loss"])
        # Precisions used in the forward passes come from the sampled pair.
        assert len(set(info["forwards"])) <= 2
