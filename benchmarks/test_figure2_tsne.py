"""Figure 2 — t-SNE of learned representations, SimCLR vs CQ-C.

The paper shows qualitative t-SNE plots with CQ giving "better linear
separability, especially under larger models".  This bench regenerates the
figure's substance: 2-D t-SNE embeddings of test-set features for both
methods, scored with a linear-separability probe, and the raw coordinates
dumped to ``figure2_tsne_<method>.csv`` for plotting.
"""

import os

import numpy as np

from repro.eval import extract_features, linear_separability, tsne
from repro.experiments import MethodSpec, format_table

from .common import (
    cached_pretrain,
    cifar_like,
    cifar_pretrain_config,
    run_once,
    scaled_set,
)

import pytest

pytestmark = pytest.mark.slow

METHODS = [
    MethodSpec("SimCLR"),
    MethodSpec("CQ-C (6-16)", variant="C", precision_set=scaled_set("6-16")),
]

OUTPUT_DIR = os.path.dirname(__file__)


def test_figure2_tsne(benchmark):
    data = cifar_like()
    config = cifar_pretrain_config("resnet34")

    def run():
        report = {}
        for method in METHODS:
            outcome = cached_pretrain(method, "cifar", config)
            encoder = outcome.make_encoder(quantized=False)
            features, labels = extract_features(encoder, data.test)
            embedding = tsne(
                features, perplexity=10.0, iterations=250,
                rng=np.random.default_rng(0),
            )
            report[method.name] = {
                "embedding": embedding,
                "labels": labels,
                "separability": 100.0 * linear_separability(embedding, labels),
                # Separability of the raw feature space — the stable
                # quantity behind the qualitative 2-D picture.
                "feature_separability": 100.0 * linear_separability(
                    features, labels
                ),
            }
        return report

    report = run_once(benchmark, run)

    for name, info in report.items():
        slug = name.split(" ")[0].lower().replace("-", "")
        path = os.path.join(OUTPUT_DIR, f"figure2_tsne_{slug}.csv")
        coords = np.column_stack([info["embedding"], info["labels"]])
        np.savetxt(path, coords, delimiter=",", header="x,y,label",
                   comments="")

    print()
    print(format_table(
        ["Method", "t-SNE separability (%)", "Feature separability (%)"],
        [
            [name, info["separability"], info["feature_separability"]]
            for name, info in report.items()
        ],
        title="Figure 2 (ResNet-34, CIFAR-like): embedding separability",
    ))

    for info in report.values():
        assert info["embedding"].shape == (len(data.test), 2)
        assert np.isfinite(info["embedding"]).all()
    # The paper's claim ("better linear separability") is asserted on the
    # raw feature space; the 2-D t-SNE score is reported but too noisy at
    # this sample count for a hard comparison.
    assert (
        report["CQ-C (6-16)"]["feature_separability"]
        >= report["SimCLR"]["feature_separability"] - 5.0
    )
