"""Parallel execution layer benchmark: prefetching loader + sweep executor.

Two measurements, written to ``BENCH_pipeline.json`` at the repo root:

- **prefetch** — steps/sec of one CQ-C trainer fed by the same seeded
  two-view loader inline (``num_workers=0``) and through the fork
  prefetch pool, in interleaved rounds.  The augmentation recipe is the
  full SimCLR stack, so batch materialisation is a real fraction of the
  step; prefetching overlaps it with the training compute.
- **sweep** — wall-clock of N independent pretrain jobs run serially
  versus through :class:`repro.parallel.SweepExecutor`'s process pool.

Both speedups are bounded by the machine's core count (recorded as
``cpu_count`` in the JSON): on a single-core box the overlap has nowhere
to run and the honest ratio is ~1.0x or below; the acceptance targets
(>=1.3x prefetch, >=2x sweep) need a multi-core host.

    PYTHONPATH=src python benchmarks/bench_pipeline.py           # full
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.contrastive import ContrastiveQuantTrainer, SimCLRModel
from repro.data import DataLoader, TwoViewTransform, simclr_augmentations
from repro.data.datasets import ArrayDataset
from repro.models import resnet18
from repro.nn.optim import Adam
from repro.parallel import SweepExecutor, SweepJob

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_pipeline.json"

PRECISION_SET = "2-8"
IMAGE_SIZE = 12
WIDTH = 0.0625
LOADER_SEED = 123


def make_dataset(n: int) -> ArrayDataset:
    rng = np.random.default_rng(7)
    images = rng.normal(size=(n, 3, IMAGE_SIZE, IMAGE_SIZE))
    labels = rng.integers(0, 4, size=n)
    return ArrayDataset(images.astype(np.float32), labels)


def make_trainer(seed: int = 0) -> ContrastiveQuantTrainer:
    encoder = resnet18(stem="cifar", width_multiplier=WIDTH,
                       rng=np.random.default_rng(seed), norm="group")
    model = SimCLRModel(encoder, projection_dim=16,
                        rng=np.random.default_rng(seed + 1),
                        head_norm="layer")
    return ContrastiveQuantTrainer(
        model, "C", PRECISION_SET,
        Adam(model.parameters(), lr=1e-3),
        rng=np.random.default_rng(seed + 2),
        fuse_views=True, weight_cache=True,
    )


def make_loader(dataset: ArrayDataset, batch: int,
                num_workers: int) -> DataLoader:
    return DataLoader(
        dataset,
        batch_size=batch,
        shuffle=True,
        drop_last=True,
        transform=TwoViewTransform(simclr_augmentations(1.0)),
        seed=LOADER_SEED,
        num_workers=num_workers,
    )


def _timed_epoch(trainer: ContrastiveQuantTrainer,
                 loader: DataLoader) -> float:
    start = time.perf_counter()
    for v1, v2, _ in loader:
        trainer.train_step(v1, v2)
    return time.perf_counter() - start


def bench_prefetch(n: int, batch: int, num_workers: int,
                   repeats: int) -> Dict[str, object]:
    """Inline vs prefetched epochs, interleaved round by round.

    Both loaders use the same seed, so every round consumes byte-identical
    batches — the comparison is pure pipeline overhead/overlap.
    Alternating rounds makes both paths sample the same machine-noise
    environment; the median per-round ratio filters residual jitter.
    """
    dataset = make_dataset(n)
    trainers = {"inline": make_trainer(0), "prefetch": make_trainer(0)}
    loaders = {
        "inline": make_loader(dataset, batch, num_workers=0),
        "prefetch": make_loader(dataset, batch, num_workers=num_workers),
    }
    steps = len(loaders["inline"])
    try:
        for loader in loaders.values():  # warmup: pools start, caches fill
            next(iter(loader))
        round_times: Dict[str, List[float]] = {"inline": [], "prefetch": []}
        for _ in range(repeats):
            for mode in ("inline", "prefetch"):
                round_times[mode].append(
                    _timed_epoch(trainers[mode], loaders[mode])
                )
    finally:
        for loader in loaders.values():
            loader.close()
    ratios = sorted(i / p for i, p in zip(round_times["inline"],
                                          round_times["prefetch"]))
    return {
        "num_workers": num_workers,
        "steps_per_epoch": steps,
        "repeats": repeats,
        "inline_steps_per_sec": steps / min(round_times["inline"]),
        "prefetch_steps_per_sec": steps / min(round_times["prefetch"]),
        "speedup": ratios[len(ratios) // 2],
    }


def _sweep_job(seed: int, n: int, batch: int, epochs: int,
               telemetry_dir: Optional[str] = None) -> float:
    """One independent pretrain job; returns its final loss."""
    trainer = make_trainer(seed)
    loader = make_loader(make_dataset(n), batch, num_workers=0)
    try:
        history = trainer.fit(loader, epochs=epochs)
    finally:
        loader.close()
    return history["loss"][-1]


def bench_sweep(jobs: int, n: int, batch: int,
                epochs: int) -> Dict[str, object]:
    """Serial vs process-parallel wall-clock over independent jobs."""
    specs = [
        SweepJob(f"job-{seed}", _sweep_job,
                 {"seed": seed, "n": n, "batch": batch, "epochs": epochs})
        for seed in range(jobs)
    ]
    serial = SweepExecutor(max_workers=1, backend="serial").run(specs)
    parallel = SweepExecutor(max_workers=jobs, backend="auto").run(specs)
    serial.raise_failures()
    parallel.raise_failures()
    if parallel.values() != serial.values():
        raise AssertionError("parallel sweep changed job results")
    return {
        "jobs": jobs,
        "backend": parallel.backend,
        "serial_seconds": serial.elapsed_seconds,
        "parallel_seconds": parallel.elapsed_seconds,
        "speedup": serial.elapsed_seconds / parallel.elapsed_seconds,
    }


def run(n: int, batch: int, num_workers: int, repeats: int,
        jobs: int, job_epochs: int) -> Dict[str, object]:
    prefetch = bench_prefetch(n, batch, num_workers, repeats)
    print(
        f"prefetch  inline {prefetch['inline_steps_per_sec']:6.2f} steps/s   "
        f"workers={num_workers} {prefetch['prefetch_steps_per_sec']:6.2f} "
        f"steps/s   speedup {prefetch['speedup']:.2f}x"
    )
    sweep = bench_sweep(jobs, n, batch, job_epochs)
    print(
        f"sweep     serial {sweep['serial_seconds']:6.2f} s   "
        f"{jobs} jobs/{sweep['backend']} {sweep['parallel_seconds']:6.2f} s   "
        f"speedup {sweep['speedup']:.2f}x"
    )
    return {
        "benchmark": "bench_pipeline",
        "cpu_count": os.cpu_count(),
        "note": "speedups are bounded by cpu_count; the >=1.3x prefetch "
                "and >=2x sweep targets need a multi-core host",
        "config": {
            "encoder": "resnet18(norm='group')",
            "width_multiplier": WIDTH,
            "image_size": IMAGE_SIZE,
            "dataset_size": n,
            "batch_size": batch,
            "precision_set": PRECISION_SET,
            "augmentation_strength": 1.0,
            "num_workers": num_workers,
            "repeats": repeats,
            "sweep_jobs": jobs,
            "sweep_job_epochs": job_epochs,
        },
        "prefetch": prefetch,
        "sweep": sweep,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny smoke configuration for CI")
    parser.add_argument("--num-workers", type=int, default=None,
                        help="prefetch worker count")
    parser.add_argument("--jobs", type=int, default=None,
                        help="sweep job / worker count")
    parser.add_argument("--batch", type=int, default=None,
                        help="per-view batch size")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    n = 64 if args.quick else 256
    batch = args.batch or (8 if args.quick else 16)
    num_workers = args.num_workers or (2 if args.quick else 4)
    repeats = 1 if args.quick else 5
    jobs = args.jobs or (2 if args.quick else 4)
    job_epochs = 1

    payload = run(n=n, batch=batch, num_workers=num_workers,
                  repeats=repeats, jobs=jobs, job_epochs=job_epochs)
    payload["quick"] = args.quick
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
