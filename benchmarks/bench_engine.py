"""Tracing-engine benchmark: plan replay vs the fused eager step path.

Times :class:`~repro.contrastive.ContrastiveQuantTrainer` steps with the
tracing executor on (``engine="trace"`` — record one eager step, compile
it into a fused, arena-planned :class:`~repro.engine.Plan`, replay it)
against the fused eager engine (``engine="eager"`` — the previous
default: view fusion + quant-weight cache, every step through Python
dispatch).  Both trainers share seeds, so they sample identical
precision pairs and their per-step losses must be byte-identical — the
benchmark asserts this, making it a correctness check as well as a
timing.

The encoder is a GroupNorm ResNet-18 with a LayerNorm head (no batch
statistics), i.e. fully traceable: replay covers every step after the
one-time trace per plan signature.

Writes ``BENCH_engine.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_engine.py           # full
    PYTHONPATH=src python benchmarks/bench_engine.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.contrastive import ContrastiveQuantTrainer, CQVariant, SimCLRModel
from repro.models import resnet18
from repro.nn.optim import Adam

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

PRECISION_SET = "2-8"
IMAGE_SIZE = 8
#: the repo's standard harness width (see benchmarks.common.pretrain_config).
WIDTH = 0.0625

ENGINES = ("trace", "eager")


def make_trainer(variant: CQVariant, engine: str) -> ContrastiveQuantTrainer:
    """Fresh fused trainer; only the execution engine differs."""
    rng = np.random.default_rng(0)
    encoder = resnet18(stem="cifar", width_multiplier=WIDTH,
                       rng=np.random.default_rng(0), norm="group")
    model = SimCLRModel(encoder, projection_dim=16,
                        rng=np.random.default_rng(1), head_norm="layer")
    optimizer = Adam(model.parameters(), lr=1e-3)
    return ContrastiveQuantTrainer(
        model,
        variant,
        PRECISION_SET,
        optimizer,
        rng=rng,
        fuse_views=True,
        weight_cache=True,
        engine=engine,
    )


def _make_views(batch: int, count: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    rng = np.random.default_rng(42)
    shape = (batch, 3, IMAGE_SIZE, IMAGE_SIZE)
    return [
        (rng.normal(size=shape).astype(np.float32),
         rng.normal(size=shape).astype(np.float32))
        for _ in range(count)
    ]


def _timed_round(trainer: ContrastiveQuantTrainer,
                 views: Sequence[Tuple[np.ndarray, np.ndarray]],
                 losses: List[float]) -> float:
    start = time.perf_counter()
    for v1, v2 in views:
        losses.append(trainer.train_step(v1, v2))
    return time.perf_counter() - start


def _stats(trainer: ContrastiveQuantTrainer, engine: str,
           round_times: List[float], steps: int,
           timed_steps: int) -> Dict[str, object]:
    stats = dict(trainer.engine.stats())
    return {
        "engine": engine,
        "steps": timed_steps,
        "repeats": len(round_times),
        "seconds_per_step": min(round_times) / steps,
        # Cumulative engine counters over warmup + timed steps: replay
        # coverage is plan_hits / (hits + misses + retraces + fallbacks).
        "plan_hits": stats["plan_hits"],
        "plan_misses": stats["plan_misses"],
        "retraces": stats["retraces"],
        "fallbacks": stats["fallbacks"],
    }


def bench_variant(variant: CQVariant, batch: int, steps: int,
                  warmup: int, repeats: int) -> Dict[str, object]:
    """Traced and eager trainers timed in interleaved rounds.

    Alternating rounds make both engines sample the same machine-noise
    environment; the per-round eager/traced ratio cancels slow phases and
    the median ratio over rounds is the robust speedup estimate.
    """
    trainers = {engine: make_trainer(variant, engine) for engine in ENGINES}
    views = _make_views(batch, warmup + repeats * steps)
    losses: Dict[str, List[float]] = {engine: [] for engine in ENGINES}
    for engine in ENGINES:
        for v1, v2 in views[:warmup]:
            losses[engine].append(trainers[engine].train_step(v1, v2))

    round_times: Dict[str, List[float]] = {engine: [] for engine in ENGINES}
    for r in range(repeats):
        chunk = views[warmup + r * steps:warmup + (r + 1) * steps]
        for engine in ENGINES:
            round_times[engine].append(
                _timed_round(trainers[engine], chunk, losses[engine])
            )

    if losses["trace"] != losses["eager"]:
        bad = next(i for i, (a, b) in
                   enumerate(zip(losses["trace"], losses["eager"])) if a != b)
        raise AssertionError(
            f"CQ-{variant.name}: traced loss diverged from eager at step "
            f"{bad}: {losses['trace'][bad]!r} != {losses['eager'][bad]!r}"
        )

    timed_steps = repeats * steps
    ratios = sorted(e / t for t, e in zip(round_times["trace"],
                                          round_times["eager"]))
    return {
        "traced": _stats(trainers["trace"], "trace", round_times["trace"],
                         steps, timed_steps),
        "eager": _stats(trainers["eager"], "eager", round_times["eager"],
                        steps, timed_steps),
        "speedup": ratios[len(ratios) // 2],
        "losses_bitwise_equal": True,
    }


def run(steps: int, warmup: int, batch: int,
        repeats: int = 1) -> Dict[str, object]:
    results: Dict[str, object] = {}
    for variant in CQVariant:
        entry = bench_variant(variant, batch=batch, steps=steps,
                              warmup=warmup, repeats=repeats)
        results[variant.name] = entry
        traced, eager = entry["traced"], entry["eager"]
        print(
            f"CQ-{variant.name:<6} traced {1e3 * traced['seconds_per_step']:7.1f} ms/step "
            f"({traced['plan_hits']} hits, {traced['retraces']} retraces, "
            f"{traced['fallbacks']} fallbacks)   "
            f"eager {1e3 * eager['seconds_per_step']:7.1f} ms/step   "
            f"speedup {entry['speedup']:.2f}x"
        )
    return {
        "benchmark": "bench_engine",
        "config": {
            "encoder": "resnet18(norm='group')",
            "head_norm": "layer",
            "width_multiplier": WIDTH,
            "image_size": IMAGE_SIZE,
            "batch_size": batch,
            "precision_set": PRECISION_SET,
            "steps": steps,
            "warmup": warmup,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
        },
        "variants": results,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny smoke configuration for CI")
    parser.add_argument("--steps", type=int, default=None,
                        help="timed steps per round")
    parser.add_argument("--batch", type=int, default=None,
                        help="per-view batch size")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    steps = args.steps or (2 if args.quick else 6)
    batch = args.batch or (4 if args.quick else 8)
    warmup = 2 if args.quick else 8
    repeats = 1 if args.quick else 5

    payload = run(steps=steps, warmup=warmup, batch=batch, repeats=repeats)
    payload["quick"] = args.quick
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
