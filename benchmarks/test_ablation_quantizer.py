"""Ablation — fixed linear quantizer vs learnable-step quantizer.

Sec. 3.4 states that learnable quantizers are unstable when the encoder is
switched between precisions every iteration, motivating the fixed linear
quantizer of Eq. 10.  This bench trains a small encoder with each
quantizer under per-iteration precision switching and compares loss
trajectories and gradient-norm stability.
"""

import numpy as np

from repro import nn
from repro.contrastive import nt_xent
from repro.engine import run_backward
from repro.experiments import format_table
from repro.models import resnet18
from repro.models.heads import ProjectionHead
from repro.nn.optim import Adam
from repro.quant import PrecisionSet, fake_quantize
from repro.quant.quantizer import LearnableQuantizer

from .common import run_once

import pytest

pytestmark = pytest.mark.slow


class _QuantizedEncoder(nn.Module):
    """Encoder whose pooled features are quantized by a pluggable quantizer.

    Isolates the quantizer comparison at the feature level so both schemes
    see identical architectures and data.
    """

    def __init__(self, quantizer_kind: str, rng):
        super().__init__()
        self.encoder = resnet18(width_multiplier=0.0625, rng=rng)
        self.projector = ProjectionHead(self.encoder.feature_dim,
                                        out_dim=8, rng=rng)
        self.quantizer_kind = quantizer_kind
        if quantizer_kind == "learnable":
            self.quantizer = LearnableQuantizer(init_step=0.05)

    def forward(self, x, bits):
        features = self.encoder(x)
        if self.quantizer_kind == "learnable":
            features = self.quantizer(features, bits)
        else:
            features = fake_quantize(features, bits)
        return self.projector(features)


def _train(kind: str, steps: int = 30) -> dict:
    rng = np.random.default_rng(0)
    model = _QuantizedEncoder(kind, np.random.default_rng(1))
    optimizer = Adam(list(model.parameters()), lr=2e-3)
    precision_rng = np.random.default_rng(2)
    precisions = PrecisionSet.parse("2-8")
    losses, grad_norms = [], []
    for _ in range(steps):
        v1 = rng.normal(size=(16, 3, 12, 12)).astype(np.float32)
        v2 = v1 + 0.05 * rng.normal(size=v1.shape).astype(np.float32)
        q1, q2 = precisions.sample_pair(precision_rng)
        optimizer.zero_grad()
        loss = nt_xent(model(nn.Tensor(v1), q1), model(nn.Tensor(v2), q2))
        run_backward(loss)
        total = sum(
            float(np.sum(p.grad.astype(np.float64) ** 2))
            for p in model.parameters() if p.grad is not None
        )
        grad_norms.append(float(np.sqrt(total)))
        optimizer.step()
        losses.append(float(loss.data))
    return {"losses": losses, "grad_norms": grad_norms}


def test_ablation_fixed_vs_learnable_quantizer(benchmark):
    def run():
        return {kind: _train(kind) for kind in ("linear", "learnable")}

    results = run_once(benchmark, run)

    rows = []
    for kind, r in results.items():
        rows.append([
            kind,
            float(np.mean(r["losses"][-5:])),
            float(np.max(r["grad_norms"])),
            float(np.std(r["grad_norms"])),
        ])
    print()
    print(format_table(
        ["Quantizer", "Final loss (mean of last 5)", "Max grad norm",
         "Grad-norm std"],
        rows,
        title="Ablation: fixed linear (Eq. 10) vs learnable-step quantizer "
              "under per-iteration precision switching",
    ))

    for r in results.values():
        assert all(np.isfinite(v) for v in r["losses"])
    # The fixed quantizer must train at least as stably as the learnable
    # one (the paper's stated reason for adopting it).
    assert (
        np.std(results["linear"]["grad_norms"])
        <= np.std(results["learnable"]["grad_norms"]) * 5.0
    )
