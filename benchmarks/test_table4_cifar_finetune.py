"""Table 4 — SimCLR vs CQ-C on six networks, CIFAR-like, fine-tuning.

Paper: CQ-C beats SimCLR on all six networks
(ResNet-18/34/74/110/152, MobileNetV2) at 10% and 1% labels, FP and 4-bit,
with larger gains for larger models and fewer labels.

Shape under reproduction: CQ-C wins the majority of grid cells on the
majority of networks.
"""

import pytest

from repro.experiments import MethodSpec, finetune_grid, format_table

from .common import (
    cached_pretrain,
    cifar_like,
    cifar_protocol,
    cifar_pretrain_config,
    run_once,
    scaled_set,
)

pytestmark = pytest.mark.slow

NETWORKS = [
    "resnet18", "resnet34", "resnet74", "resnet110", "resnet152",
    "mobilenetv2",
]

METHODS = [
    MethodSpec("SimCLR"),
    MethodSpec("CQ-C (6-16)", variant="C", precision_set=scaled_set("6-16")),
]


@pytest.mark.parametrize("encoder", NETWORKS)
def test_table4_cifar_finetune(benchmark, encoder):
    data = cifar_like()
    protocol = cifar_protocol()
    config = cifar_pretrain_config(encoder)

    def run():
        return {
            method.name: finetune_grid(
                cached_pretrain(method, "cifar", config),
                data.train, data.test, protocol,
            )
            for method in METHODS
        }

    table = run_once(benchmark, run)

    rows = [
        [
            name,
            grid[(None, 0.1)],
            grid[(None, 0.01)],
            grid[(4, 0.1)],
            grid[(4, 0.01)],
        ]
        for name, grid in table.items()
    ]
    print()
    print(format_table(
        ["Method", "FP 10%", "FP 1%", "4-bit 10%", "4-bit 1%"],
        rows,
        title=f"Table 4 ({encoder}, CIFAR-like): fine-tuning accuracy (%)",
    ))

    simclr, cqc = table["SimCLR"], table["CQ-C (6-16)"]
    wins = sum(cqc[key] >= simclr[key] for key in simclr)
    # Per-network tolerance; the cross-network aggregate is asserted by the
    # paper-shape summary in EXPERIMENTS.md.
    assert wins >= 1, f"CQ-C lost every cell on {encoder}: {table}"
