"""Extension — deployment-precision robustness curves.

If quantization augmentation teaches precision-invariant features, a
CQ-trained encoder should hold its accuracy across deployment bit-widths
better than a SimCLR one.  This sweeps linear-probe accuracy over
{2, 3, 4, 6, 8, 16} bits for both methods.
"""

import numpy as np

from repro.eval import area_under_precision_curve, precision_sweep
from repro.experiments import MethodSpec, format_table

from .common import (
    cached_pretrain,
    cifar_like,
    cifar_pretrain_config,
    run_once,
    scaled_set,
)

import pytest

pytestmark = pytest.mark.slow

METHODS = [
    MethodSpec("SimCLR"),
    MethodSpec("CQ-C (6-16)", variant="C", precision_set=scaled_set("6-16")),
]

BITS = (2, 3, 4, 6, 8, 16)


def test_ablation_precision_robustness(benchmark):
    data = cifar_like()
    config = cifar_pretrain_config("resnet18")

    def run():
        curves = {}
        for method in METHODS:
            outcome = cached_pretrain(method, "cifar", config)
            encoder = outcome.make_encoder(quantized=True)
            curves[method.name] = precision_sweep(
                encoder, data.train, data.test, bit_widths=BITS,
                epochs=15, rng=np.random.default_rng(0),
            )
        return curves

    curves = run_once(benchmark, run)

    rows = []
    for name, curve in curves.items():
        rows.append([name] + [curve[b] for b in BITS]
                    + [area_under_precision_curve(curve)])
    print()
    print(format_table(
        ["Method"] + [f"{b}-bit" for b in BITS] + ["mean"],
        rows,
        title="Extension: linear-probe accuracy vs deployment precision",
    ))

    simclr_auc = area_under_precision_curve(curves["SimCLR"])
    cq_auc = area_under_precision_curve(curves["CQ-C (6-16)"])
    assert cq_auc >= simclr_auc - 5.0, (
        f"CQ should be at least as precision-robust: "
        f"SimCLR {simclr_auc:.1f} vs CQ {cq_auc:.1f}"
    )
