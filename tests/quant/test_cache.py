"""QuantCache and the thread-local quant execution scope."""

import threading

import numpy as np
import pytest

from repro import nn
from repro.quant import QuantCache
from repro.quant.cache import active_cache, active_views, quant_execution_scope


def _param(seed=0, shape=(4, 3)):
    rng = np.random.default_rng(seed)
    return nn.Parameter(rng.normal(size=shape).astype(np.float32))


class TestQuantCache:
    def test_miss_then_hit_returns_same_object(self):
        cache = QuantCache()
        p = _param()
        calls = []

        def compute():
            calls.append(1)
            return "tensor"

        first = cache.fetch(p, 4, False, True, compute)
        second = cache.fetch(p, 4, False, True, compute)
        assert first is second
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_version_change_invalidates(self):
        cache = QuantCache()
        p = _param()
        cache.fetch(p, 4, False, True, lambda: "old")
        p.data = p.data + 1.0  # bumps version  # noqa: RPR002 - version bump under test
        result = cache.fetch(p, 4, False, True, lambda: "new")
        assert result == "new"
        assert cache.misses == 2 and cache.hits == 0
        # The stale entry is overwritten, not accumulated.
        assert len(cache) == 1

    def test_bits_per_channel_and_grad_mode_key_separately(self):
        cache = QuantCache()
        p = _param()
        cache.fetch(p, 4, False, True, lambda: "a")
        cache.fetch(p, 8, False, True, lambda: "b")
        cache.fetch(p, 4, True, True, lambda: "c")
        cache.fetch(p, 4, False, False, lambda: "d")
        assert cache.misses == 4 and cache.hits == 0
        assert len(cache) == 4
        assert cache.fetch(p, 4, False, True, lambda: "x") == "a"
        assert cache.fetch(p, 4, False, False, lambda: "x") == "d"
        assert cache.hits == 2

    def test_disabled_cache_counts_misses_without_storing(self):
        cache = QuantCache(enabled=False)
        p = _param()
        cache.fetch(p, 4, False, True, lambda: "a")
        cache.fetch(p, 4, False, True, lambda: "b")
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 0

    def test_clear_keeps_stats_reset_stats_keeps_entries(self):
        cache = QuantCache()
        p = _param()
        cache.fetch(p, 4, False, True, lambda: "a")
        cache.fetch(p, 4, False, True, lambda: "a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"hits": 1, "misses": 1}
        cache.fetch(p, 4, False, True, lambda: "a")
        cache.reset_stats()
        assert cache.stats() == {"hits": 0, "misses": 0}
        assert len(cache) == 1

    def test_hit_rate(self):
        cache = QuantCache()
        assert cache.hit_rate == 0.0
        p = _param()
        cache.fetch(p, 4, False, True, lambda: "a")
        cache.fetch(p, 4, False, True, lambda: "a")
        cache.fetch(p, 4, False, True, lambda: "a")
        assert cache.hit_rate == pytest.approx(2 / 3)


class TestExecutionScope:
    def test_defaults_outside_any_scope(self):
        assert active_cache() is None
        assert active_views() == 1

    def test_scope_sets_and_restores(self):
        cache = QuantCache()
        with quant_execution_scope(cache, views=2):
            assert active_cache() is cache
            assert active_views() == 2
        assert active_cache() is None
        assert active_views() == 1

    def test_scopes_nest_innermost_wins(self):
        outer, inner = QuantCache(), QuantCache()
        with quant_execution_scope(outer, views=2):
            with quant_execution_scope(inner, views=4):
                assert active_cache() is inner
                assert active_views() == 4
            assert active_cache() is outer
            assert active_views() == 2

    def test_scope_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with quant_execution_scope(QuantCache(), views=2):
                raise RuntimeError("boom")
        assert active_cache() is None and active_views() == 1

    def test_views_must_be_positive(self):
        with pytest.raises(ValueError, match="views"):
            with quant_execution_scope(None, views=0):
                pass

    def test_scope_is_thread_local(self):
        cache = QuantCache()
        seen = {}

        def worker():
            seen["cache"] = active_cache()
            seen["views"] = active_views()

        with quant_execution_scope(cache, views=2):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == {"cache": None, "views": 1}
