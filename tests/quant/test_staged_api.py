"""The staged prepare() / calibrate() / convert() public surface."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.autograd import no_grad
from repro.nn.tensor import Tensor
from repro.quant import (  # noqa: RPR003 - shim under test
    EmaMinMaxObserver,
    IntConv2d,
    IntLinear,
    MinMaxObserver,
    QConv2d,
    QLinear,
    QuantizedModule,
    calibrate,
    convert,
    prepare,
    quantize_model,
)

BITS = 8


def nested_model(rng):
    """Two Linears with the SAME leaf name at different depths."""
    return nn.Sequential(
        nn.Sequential(nn.Linear(6, 6, rng=rng)),
        nn.Linear(6, 4, rng=rng),
    )


class TestPrepare:
    def test_swaps_and_shares_parameters(self, rng):
        conv = nn.Conv2d(3, 4, 3, rng=rng)
        model = nn.Sequential(conv, nn.ReLU(), nn.Linear(4, 2, rng=rng))
        prepare(model)
        assert isinstance(model[0], QConv2d)
        assert isinstance(model[2], QLinear)
        assert model[0].weight is conv.weight  # optimizer views stay valid

    def test_attaches_minmax_observer_by_default(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        assert isinstance(model[0].activation_observer, MinMaxObserver)

    def test_observer_variants(self, rng):
        ema = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)),
                      observer="ema")
        assert isinstance(ema[0].activation_observer, EmaMinMaxObserver)
        none = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)),
                       observer=None)
        assert none[0].activation_observer is None
        custom = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)),
                         observer=lambda: MinMaxObserver())
        assert isinstance(custom[0].activation_observer, MinMaxObserver)

    def test_unknown_observer_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown observer"):
            prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)),
                    observer="histogram")

    def test_idempotent(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        q = model[0]
        prepare(model)
        assert model[0] is q


class TestSkipCallback:
    def test_skip_receives_full_dotted_path(self, rng):
        """Regression: skip used to see only the leaf name, so two layers
        named ``0`` at different depths were indistinguishable."""
        seen = []

        def skip(name, module):
            seen.append(name)
            return False

        prepare(nested_model(rng), skip=skip)
        assert "0.0" in seen and "1" in seen

    def test_skip_can_target_one_nested_layer(self, rng):
        model = prepare(nested_model(rng),
                        skip=lambda name, m: name == "0.0")
        assert isinstance(model[0][0], nn.Linear)       # skipped
        assert not isinstance(model[0][0], QuantizedModule)
        assert isinstance(model[1], QLinear)            # same leaf name: kept


class TestCalibrate:
    def test_fits_ranges_and_returns_mapping(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        ranges = calibrate(
            model, [rng.normal(size=(4, 6)).astype(np.float32)], bits=BITS
        )
        assert set(ranges) == {"0"}
        lo, hi = ranges["0"]
        assert lo < hi
        assert model[0].activation_range == (lo, hi)

    def test_accepts_labelled_batches_and_caps(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        batches = [(rng.normal(size=(4, 6)).astype(np.float32), None)
                   for _ in range(5)]
        calibrate(model, batches, bits=BITS, max_batches=2)

    def test_requires_prepare(self, rng):
        with pytest.raises(ValueError, match="run prepare"):
            calibrate(nn.Linear(6, 4, rng=rng), [np.zeros((2, 6))],
                      bits=BITS)

    def test_requires_precision(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        with pytest.raises(ValueError, match="without a precision"):
            calibrate(model, [np.zeros((2, 6), dtype=np.float32)])

    def test_requires_batches(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        with pytest.raises(ValueError, match="no batches"):
            calibrate(model, [], bits=BITS)

    def test_restores_training_mode(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        model.train()
        calibrate(model, [rng.normal(size=(4, 6)).astype(np.float32)],
                  bits=BITS)
        assert model.training

    def test_observation_switched_off_afterwards(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        calibrate(model, [rng.normal(size=(4, 6)).astype(np.float32)],
                  bits=BITS)
        assert model[0].observing is False


class TestFullPipeline:
    def test_three_stages_produce_integer_engine(self, rng):
        class TinyEncoder(nn.Module):
            def __init__(self, rng):
                super().__init__()
                self.conv = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
                self.bn = nn.BatchNorm2d(4)
                self.act = nn.ReLU()
                self.head = nn.Linear(4 * 8 * 8, 5, rng=rng)

            def forward(self, x):
                h = self.act(self.bn(self.conv(x)))
                return self.head(F.flatten(h))

        model = TinyEncoder(rng)
        prepare(model)
        calibrate(
            model,
            [rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
             for _ in range(2)],
            bits=BITS,
        )
        convert(model, input_shape=(2, 3, 8, 8))
        kinds = {type(m).__name__ for m in model.modules()}
        assert "IntConv2d" in kinds and "IntLinear" in kinds
        assert "BatchNorm2d" not in kinds  # folded away
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 3, 8, 8)),
                               dtype=np.float64))
        assert out.data.shape == (2, 5)

    def test_lowered_types_exported(self):
        from repro.quant import lowered

        assert lowered.IntConv2d is IntConv2d
        assert lowered.IntLinear is IntLinear


class TestQuantizeModelShim:
    def test_warns_and_delegates(self, rng):
        model = nn.Sequential(nn.Linear(6, 4, rng=rng))
        with pytest.warns(DeprecationWarning, match="prepare"):
            quantize_model(model)
        assert isinstance(model[0], QLinear)

    def test_shim_forwards_skip(self, rng):
        with pytest.warns(DeprecationWarning):
            model = quantize_model(nested_model(rng),
                                   skip=lambda name, m: name == "0.0")
        assert not isinstance(model[0][0], QuantizedModule)
