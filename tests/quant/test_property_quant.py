"""Hypothesis property tests for quantizer invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import linear_quantize
from repro.quant.quantizer import quantization_step

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=16),
    elements=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
)

bit_widths = st.integers(min_value=1, max_value=16)


@settings(max_examples=60, deadline=None)
@given(finite_arrays, bit_widths)
def test_error_bounded_by_half_step(x, bits):
    """|A - A_q| <= S/2 for every element (Eq. 10 rounds to nearest)."""
    q = linear_quantize(x, bits)
    step = quantization_step(x.min(), x.max(), bits)
    assert np.all(np.abs(x - q) <= step / 2 + 1e-9 * max(1.0, abs(step)))


@settings(max_examples=60, deadline=None)
@given(finite_arrays, bit_widths)
def test_output_in_input_hull(x, bits):
    """Quantized values never wildly escape the input range (pad by S/2)."""
    q = linear_quantize(x, bits)
    step = quantization_step(x.min(), x.max(), bits)
    pad = step / 2 + 1e-9
    assert q.min() >= x.min() - pad
    assert q.max() <= x.max() + pad


@settings(max_examples=60, deadline=None)
@given(finite_arrays, bit_widths)
def test_level_count_bounded(x, bits):
    """At most 2^q + 1 distinct levels appear (grid points within range)."""
    q = linear_quantize(x, min(bits, 8))
    assert len(np.unique(q)) <= 2 ** min(bits, 8) + 1


@settings(max_examples=60, deadline=None)
@given(finite_arrays)
def test_16_bits_is_nearly_lossless(x):
    q = linear_quantize(x, 16)
    scale = max(1.0, float(np.abs(x).max()))
    assert np.abs(x - q).max() <= 1e-4 * scale


@settings(max_examples=60, deadline=None)
@given(finite_arrays, bit_widths)
def test_shape_and_dtype_preserved(x, bits):
    q = linear_quantize(x, bits)
    assert q.shape == x.shape
    assert q.dtype == x.dtype


def _away_from_rounding_ties(x, bits, margin=1e-3):
    """True when no element of x/step sits within ``margin`` of a .5 tie.

    Exactly-on-tie values (e.g. x = [-1e4, 1e4] at 3 bits) round either
    way depending on float roundoff, so equivariance legitimately breaks
    there; the property is only claimed away from ties.
    """
    step = quantization_step(x.min(), x.max(), bits)
    if step == 0.0:
        return True
    frac = np.abs(np.mod(x / step, 1.0) - 0.5)
    return float(frac.min()) > margin


@settings(max_examples=40, deadline=None)
@given(finite_arrays, bit_widths, st.floats(0.1, 10.0))
def test_scale_equivariance(x, bits, scale):
    """Quantization commutes with positive scaling: Q(cx) == c Q(x)."""
    assume(_away_from_rounding_ties(x, bits))
    assume(_away_from_rounding_ties(scale * x, bits))
    q_scaled = linear_quantize(scale * x, bits)
    scaled_q = scale * linear_quantize(x, bits)
    tol = 1e-7 * max(1.0, float(np.abs(x).max())) * scale
    np.testing.assert_allclose(q_scaled, scaled_q, atol=tol, rtol=1e-6)


@settings(max_examples=40, deadline=None)
@given(finite_arrays, bit_widths, st.floats(-100.0, 100.0))
def test_shift_changes_step_not_structure(x, bits, shift):
    """Adding a constant leaves the dynamic range, hence the step, unchanged."""
    step_orig = quantization_step(x.min(), x.max(), bits)
    step_shifted = quantization_step(x.min() + shift, x.max() + shift, bits)
    # Equal up to float roundoff of the shifted endpoints.
    np.testing.assert_allclose(step_shifted, step_orig, rtol=1e-9,
                               atol=1e-12)
