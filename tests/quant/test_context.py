"""PrecisionContext / apply_precision — the scoped precision API."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.quant import (  # noqa: RPR003 - shim under test
    QuantCache,
    PrecisionContext,
    apply_precision,
    precision,
    prepare,
    set_precision,
)
from repro.quant.cache import active_cache, active_views
from repro.quant.qmodules import QuantizedModule


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return prepare(nn.Sequential(
        nn.Linear(6, 5, rng=rng),
        nn.ReLU(),
        nn.Linear(5, 3, rng=rng),
    ))


def qmodules(model):
    return [m for m in model.modules() if isinstance(m, QuantizedModule)]


class TestPrecisionContext:
    def test_applies_and_restores(self):
        model = small_model()
        assert all(m.precision is None for m in qmodules(model))
        with precision(model, 4):
            assert all(m.precision == 4 for m in qmodules(model))
        assert all(m.precision is None for m in qmodules(model))

    def test_restores_previous_nonstandard_precision(self):
        model = small_model()
        apply_precision(model, 8)
        with precision(model, 2):
            assert all(m.precision == 2 for m in qmodules(model))
        assert all(m.precision == 8 for m in qmodules(model))

    def test_nested_contexts_compose(self):
        model = small_model()
        with precision(model, 8):
            with precision(model, 2):
                assert all(m.precision == 2 for m in qmodules(model))
            assert all(m.precision == 8 for m in qmodules(model))
        assert all(m.precision is None for m in qmodules(model))

    def test_same_context_object_is_reentrant(self):
        model = small_model()
        ctx = PrecisionContext(model, 4)
        with ctx:
            with ctx:
                assert all(m.precision == 4 for m in qmodules(model))
            assert all(m.precision == 4 for m in qmodules(model))
        assert all(m.precision is None for m in qmodules(model))

    def test_restores_on_exception(self):
        model = small_model()
        with pytest.raises(RuntimeError):
            with precision(model, 4):
                raise RuntimeError("boom")
        assert all(m.precision is None for m in qmodules(model))

    def test_raises_on_unquantized_model(self):
        plain = nn.Linear(4, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="no quantized modules"):
            with precision(plain, 4):
                pass

    def test_none_bits_on_unquantized_model_is_noop(self):
        plain = nn.Linear(4, 2, rng=np.random.default_rng(0))
        with precision(plain, None):
            pass

    def test_carries_cache_and_views_into_scope(self):
        model = small_model()
        cache = QuantCache()
        with precision(model, 4, cache=cache, views=2):
            assert active_cache() is cache
            assert active_views() == 2
        assert active_cache() is None
        assert active_views() == 1

    def test_views_must_be_positive(self):
        with pytest.raises(ValueError, match="views"):
            precision(small_model(), 4, views=0)

    def test_matches_apply_precision_numerics(self):
        def run(model, scoped):
            x = Tensor(
                np.random.default_rng(3).normal(size=(4, 6)).astype(np.float32)
            )
            if scoped:
                with precision(model, 4):
                    out = model(x)
            else:
                apply_precision(model, 4)
                out = model(x)
            (out ** 2).sum().backward()
            grads = [np.asarray(p.grad).tobytes()
                     for p in model.parameters()]
            return out.data.tobytes(), grads

        scoped_out, scoped_grads = run(small_model(seed=7), scoped=True)
        open_out, open_grads = run(small_model(seed=7), scoped=False)
        assert scoped_out == open_out
        assert scoped_grads == open_grads


class TestApplyPrecision:
    def test_sets_and_counts(self):
        model = small_model()
        assert apply_precision(model, 4) == 2
        assert all(m.precision == 4 for m in qmodules(model))
        assert apply_precision(model, None) == 2
        assert all(m.precision is None for m in qmodules(model))

    def test_strict_raises_on_unquantized_model(self):
        plain = nn.Linear(4, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="no quantized modules"):
            apply_precision(plain, 4)
        assert apply_precision(plain, 4, strict=False) == 0


class TestSetPrecisionRemoved:
    def test_raises_type_error(self):
        model = small_model()
        with pytest.raises(TypeError, match="has been removed"):
            set_precision(model, 4)  # noqa: RPR003 - removal under test
        assert all(m.precision is None for m in qmodules(model))

    def test_raises_regardless_of_signature(self):
        with pytest.raises(TypeError, match="apply_precision"):
            set_precision()  # noqa: RPR003 - removal under test
