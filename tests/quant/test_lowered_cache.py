"""GEMM operand cache: keyed on (buffer id, version), never identity alone."""

import numpy as np

from repro.nn.tensor import Tensor
from repro.quant.lowered import IntLinear


def make_module(fill=0):
    m = IntLinear(4, 3, weight_bits=8, act_bits=8, act_range=(-1.0, 1.0),
                  bias=False)
    if fill:
        codes = m.weight_q.copy()
        codes[...] = fill
        m.set_buffer("weight_q", codes)
    return m


def batch(seed=0):
    return Tensor(
        np.random.default_rng(seed).uniform(-1.0, 1.0, size=(2, 4))
        .astype(np.float64)
    )


def test_repeated_forwards_reuse_the_cached_operand():
    m = make_module(fill=7)
    x = batch()
    m(x)
    _, first = m._weight_operand()
    m(x)
    _, second = m._weight_operand()
    assert first is second  # identical key -> no reconstruction


def test_in_place_rebind_with_recycled_id_invalidates_cache():
    # The regression: mutate the buffer array in place and re-register the
    # *same* ndarray object.  id(weight_q) is unchanged, so an identity-only
    # cache key would keep serving the stale GEMM matrix; the version half
    # of the key must force a rebuild.
    m = make_module(fill=0)
    x = batch()
    stale = np.asarray(m(x).data).copy()
    assert np.array_equal(stale, np.zeros_like(stale))

    codes = m.weight_q
    version_before = m.buffer_version("weight_q")
    codes[...] = 7               # in-place write: same id, new contents
    m.set_buffer("weight_q", codes)
    assert m.weight_q is codes   # numpy reused the storage address
    assert m.buffer_version("weight_q") == version_before + 1

    fresh = np.asarray(m(x).data)
    reference = np.asarray(make_module(fill=7)(x).data)
    assert fresh.tobytes() == reference.tobytes()
    assert not np.array_equal(fresh, stale)


def test_load_state_dict_invalidates_warm_cache():
    m = make_module(fill=7)
    x = batch()
    original = np.asarray(m(x).data).copy()
    snapshot = {k: v.copy() for k, v in m.state_dict().items()}

    altered = m.weight_q.copy()
    altered[...] = 3
    m.set_buffer("weight_q", altered)
    assert not np.array_equal(np.asarray(m(x).data), original)

    m.load_state_dict(snapshot)
    restored = np.asarray(m(x).data)
    assert restored.tobytes() == original.tobytes()


def test_act_range_rebind_also_invalidates():
    m = make_module(fill=7)
    x = batch()
    before = np.asarray(m(x).data).copy()
    m.set_buffer("act_range", np.array([-2.0, 2.0]))
    after = np.asarray(m(x).data)
    assert not np.array_equal(before, after)
