"""Eq. 10 linear quantizer: values, errors, STE gradients."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.quant import fake_quantize, linear_quantize
from repro.quant.quantizer import (
    LearnableQuantizer,
    LinearQuantizer,
    quantization_error,
    quantization_step,
)


class TestLinearQuantize:
    def test_step_formula(self):
        # S = range / (2^q - 1), Eq. 10.
        assert quantization_step(0.0, 1.0, 1) == pytest.approx(1.0)
        assert quantization_step(0.0, 1.0, 2) == pytest.approx(1.0 / 3.0)
        assert quantization_step(-1.0, 1.0, 4) == pytest.approx(2.0 / 15.0)

    def test_values_are_multiples_of_step(self, rng):
        x = rng.normal(size=1000).astype(np.float32)
        bits = 5
        step = quantization_step(x.min(), x.max(), bits)
        q = linear_quantize(x, bits)
        ratios = q / step
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-3)

    def test_error_bounded_by_half_step(self, rng):
        x = rng.normal(size=1000).astype(np.float64)
        for bits in (2, 4, 8):
            step = quantization_step(x.min(), x.max(), bits)
            q = linear_quantize(x, bits)
            assert np.abs(x - q).max() <= step / 2 + 1e-12

    def test_high_precision_nearly_identity(self, rng):
        x = rng.normal(size=100).astype(np.float32)
        q = linear_quantize(x, 16)
        np.testing.assert_allclose(q, x, atol=1e-3)

    def test_more_bits_less_error(self, rng):
        x = rng.normal(size=500).astype(np.float64)
        errors = [quantization_error(x, b)[1] for b in (2, 4, 6, 8, 12)]
        assert all(a > b for a, b in zip(errors, errors[1:]))

    def test_constant_array_unchanged(self):
        x = np.full(10, 3.14, dtype=np.float32)
        np.testing.assert_array_equal(linear_quantize(x, 4), x)

    def test_explicit_range(self):
        x = np.array([0.0, 0.5, 1.0], dtype=np.float32)
        q = linear_quantize(x, 1, a_min=0.0, a_max=1.0)
        # One bit: step = 1.0, values snap to {0, 1}.
        assert set(np.unique(q)) <= {0.0, 1.0}

    def test_preserves_dtype(self, rng):
        x = rng.normal(size=10).astype(np.float32)
        assert linear_quantize(x, 4).dtype == np.float32

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            linear_quantize(np.ones(3), 0)

    def test_idempotent(self, rng):
        # Quantizing an already-quantized tensor (same range) is identity.
        x = rng.normal(size=100).astype(np.float64)
        q1 = linear_quantize(x, 4)
        q2 = linear_quantize(q1, 4, a_min=x.min(), a_max=x.max())
        np.testing.assert_allclose(q1, q2, atol=1e-10)


class TestFakeQuantizeSTE:
    def test_forward_quantizes(self, rng):
        x = nn.Tensor(rng.normal(size=(4, 4)))
        out = fake_quantize(x, 3)
        np.testing.assert_array_equal(out.data, linear_quantize(x.data, 3))

    def test_none_bits_is_identity(self, rng):
        x = nn.Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        out = fake_quantize(x, None)
        assert out is x

    def test_straight_through_gradient(self, rng):
        x = nn.Tensor(rng.normal(size=(5, 5)), requires_grad=True)
        fake_quantize(x, 2).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((5, 5), dtype=np.float32))

    def test_gradient_flows_through_downstream_ops(self, rng):
        x = nn.Tensor(rng.normal(size=(3,)), requires_grad=True)
        w = nn.Tensor(rng.normal(size=(3,)), requires_grad=True)
        (fake_quantize(x, 4) * w).sum().backward()
        np.testing.assert_allclose(x.grad, w.data)
        # dL/dw sees the *quantized* x (noise injection).
        np.testing.assert_allclose(w.grad, linear_quantize(x.data, 4))

    def test_quantization_noise_decreases_with_bits(self, rng):
        x = nn.Tensor(rng.normal(size=(1000,)))
        noise = [
            float(np.abs(fake_quantize(x, b).data - x.data).mean())
            for b in (2, 4, 8, 16)
        ]
        assert all(a > b for a, b in zip(noise, noise[1:]))


class TestLinearQuantizerObject:
    def test_callable_matches_function(self, rng):
        x = nn.Tensor(rng.normal(size=(10,)))
        q = LinearQuantizer()
        np.testing.assert_array_equal(
            q(x, 4).data, fake_quantize(x, 4).data
        )

    def test_with_observer_uses_running_range(self, rng):
        from repro.quant import MinMaxObserver

        obs = MinMaxObserver()
        q = LinearQuantizer(observer=obs)
        q(nn.Tensor(np.array([-2.0, 2.0], dtype=np.float32)), 4)
        out = q(nn.Tensor(np.array([0.0, 1.0], dtype=np.float32)), 4)
        # The range (still [-2, 2]) comes from the observer, so the step is
        # 4/15 — outputs snap to that grid.
        step = 4.0 / 15.0
        ratios = out.data / step
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-4)


class TestLearnableQuantizer:
    def test_forward_snaps_to_step_grid(self, rng):
        lq = LearnableQuantizer(init_step=0.1)
        x = nn.Tensor(rng.uniform(-0.5, 0.5, size=(20,)).astype(np.float32))
        out = lq(x, 8)
        ratios = out.data / 0.1
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-4)

    def test_step_receives_gradient(self, rng):
        lq = LearnableQuantizer(init_step=0.1)
        x = nn.Tensor(rng.normal(size=(20,)), requires_grad=True)
        (lq(x, 4) ** 2.0).sum().backward()
        assert lq.step.grad is not None
        assert lq.step.grad.shape == (1,)

    def test_clipped_region_blocks_input_gradient(self):
        lq = LearnableQuantizer(init_step=0.01)
        x = nn.Tensor(np.array([100.0, 0.005], dtype=np.float32),
                      requires_grad=True)
        lq(x, 4).sum().backward()
        assert x.grad[0] == 0.0  # clipped at qmax
        assert x.grad[1] == 1.0  # in range

    def test_invalid_init_step(self):
        with pytest.raises(ValueError):
            LearnableQuantizer(init_step=0.0)

    def test_full_precision_passthrough(self, rng):
        lq = LearnableQuantizer()
        x = nn.Tensor(rng.normal(size=(5,)))
        assert lq(x, None) is x
