"""BatchNorm folding: pair discovery, numerics, and model-level closeness."""

import numpy as np
import pytest

from repro import nn
from repro.models import mobilenet_v2, resnet18
from repro.nn.autograd import no_grad
from repro.nn.layers.container import Identity
from repro.nn.tensor import Tensor
from repro.quant.fold import fold_batch_norm, foldable_pairs


def _forward(model, x):
    model.eval()
    with no_grad():
        return np.asarray(model(Tensor(x, dtype=np.float64)).data,
                          dtype=np.float64)


def _bn_with_stats(features, rng):
    bn = nn.BatchNorm2d(features)
    bn.set_buffer("running_mean",
                  rng.normal(size=features).astype(np.float32))
    bn.set_buffer("running_var",
                  rng.uniform(0.5, 2.0, size=features).astype(np.float32))
    bn.weight.data = rng.normal(1.0, 0.2,  # noqa: RPR002 - test fixture
                                size=features).astype(np.float32)
    bn.bias.data = rng.normal(size=features).astype(np.float32)  # noqa: RPR002 - test fixture
    return bn


class TestFoldablePairs:
    def test_finds_declaration_order_adjacency(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.Conv2d(4, 4, 3, rng=rng),
        )
        pairs = foldable_pairs(model)
        assert len(pairs) == 1
        affine_path, affine, norm_name, norm, parent = pairs[0]
        assert isinstance(affine, nn.Conv2d)
        assert isinstance(norm, nn.BatchNorm2d)

    def test_mismatched_features_not_paired(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, rng=rng),
            nn.BatchNorm2d(8),  # wrong width: must not fold
        )
        assert foldable_pairs(model) == []

    def test_groupnorm_not_paired(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, rng=rng),
            nn.GroupNorm(2, 4),
        )
        assert foldable_pairs(model) == []


class TestFoldNumerics:
    def test_conv_bn_matches_unfolded(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, rng=rng),
            _bn_with_stats(6, rng),
        )
        x = rng.normal(size=(2, 3, 8, 8))
        before = _forward(model, x)
        assert fold_batch_norm(model) == 1
        after = _forward(model, x)
        np.testing.assert_allclose(after, before, rtol=1e-5, atol=1e-6)

    def test_norm_replaced_with_identity(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 6, 3, rng=rng),
            _bn_with_stats(6, rng),
        )
        fold_batch_norm(model)
        kinds = [type(m).__name__ for _, m in model.named_modules()]
        assert "BatchNorm2d" not in kinds
        assert any(isinstance(m, Identity) for m in model.modules())

    def test_conv_without_bias_gains_one(self, rng):
        conv = nn.Conv2d(3, 6, 3, bias=False, rng=rng)
        model = nn.Sequential(conv, _bn_with_stats(6, rng))
        x = rng.normal(size=(2, 3, 6, 6))
        before = _forward(model, x)
        fold_batch_norm(model)
        assert conv.bias is not None
        np.testing.assert_allclose(_forward(model, x), before,
                                   rtol=1e-5, atol=1e-6)

    def test_fold_is_idempotent(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 6, 3, rng=rng),
            _bn_with_stats(6, rng),
        )
        assert fold_batch_norm(model) == 1
        assert fold_batch_norm(model) == 0

    def test_fold_bumps_parameter_versions(self, rng):
        conv = nn.Conv2d(3, 6, 3, rng=rng)
        model = nn.Sequential(conv, _bn_with_stats(6, rng))
        v = conv.weight.version
        fold_batch_norm(model)
        assert conv.weight.version > v


@pytest.mark.parametrize("builder,width,size", [
    (resnet18, 0.0625, 8),
    (mobilenet_v2, 0.125, 8),
])
def test_model_level_fold_closeness(builder, width, size, rng):
    """Folded and unfolded models agree on real encoder topologies."""
    model = builder(width_multiplier=width, rng=np.random.default_rng(0),
                    **({"stem": "cifar"} if builder is resnet18 else {}))
    # push nontrivial running stats through the BN layers first
    model.train()
    for _ in range(2):
        model(Tensor(rng.normal(size=(4, 3, size, size)).astype(np.float32)))
    x = rng.normal(size=(2, 3, size, size))
    before = _forward(model, x)
    assert fold_batch_norm(model) > 0
    after = _forward(model, x)
    np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-5)
