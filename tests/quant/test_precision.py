"""Precision sets and sampling."""

import numpy as np
import pytest

from repro.quant import PrecisionSet


class TestParse:
    def test_paper_sets(self):
        assert PrecisionSet.parse("4-16").bits == tuple(range(4, 17))
        assert PrecisionSet.parse("6-16").bits == tuple(range(6, 17))
        assert PrecisionSet.parse("8-16").bits == tuple(range(8, 17))

    def test_explicit_list(self):
        ps = PrecisionSet([16, 4, 8, 4])
        assert ps.bits == (4, 8, 16)  # sorted, deduplicated

    def test_pass_through(self):
        ps = PrecisionSet.parse("6-16")
        assert PrecisionSet.parse(ps) is ps

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            PrecisionSet.parse("banana")

    def test_inverted_range(self):
        with pytest.raises(ValueError):
            PrecisionSet.parse("16-6")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PrecisionSet([])

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            PrecisionSet([0, 4])
        with pytest.raises(ValueError):
            PrecisionSet([33])

    def test_repr_round_trips_contiguous(self):
        assert repr(PrecisionSet.parse("6-16")) == "PrecisionSet('6-16')"


class TestSampling:
    def test_sample_in_set(self, rng):
        ps = PrecisionSet.parse("6-16")
        for _ in range(50):
            assert ps.sample(rng) in ps

    def test_sample_pair_shape(self, rng):
        ps = PrecisionSet.parse("4-16")
        q1, q2 = ps.sample_pair(rng)
        assert q1 in ps and q2 in ps

    def test_distinct_pair(self, rng):
        ps = PrecisionSet.parse("6-16")
        for _ in range(50):
            q1, q2 = ps.sample_pair(rng, distinct=True)
            assert q1 != q2

    def test_distinct_requires_two(self, rng):
        with pytest.raises(ValueError):
            PrecisionSet([8]).sample_pair(rng, distinct=True)

    def test_sampling_covers_set(self, rng):
        ps = PrecisionSet.parse("6-16")
        seen = {ps.sample(rng) for _ in range(500)}
        assert seen == set(ps.bits)

    def test_deterministic_given_seed(self):
        ps = PrecisionSet.parse("4-16")
        a = [ps.sample(np.random.default_rng(5)) for _ in range(5)]
        b = [ps.sample(np.random.default_rng(5)) for _ in range(5)]
        assert a == b


class TestProperties:
    def test_diversity(self):
        assert PrecisionSet.parse("4-16").diversity() == 13
        assert PrecisionSet.parse("8-16").diversity() == 9

    def test_min_max(self):
        ps = PrecisionSet.parse("6-16")
        assert ps.min_bits == 6
        assert ps.max_bits == 16

    def test_equality_and_hash(self):
        assert PrecisionSet([4, 5]) == PrecisionSet.parse("4-5")
        assert hash(PrecisionSet([4, 5])) == hash(PrecisionSet.parse("4-5"))

    def test_len_and_contains(self):
        ps = PrecisionSet.parse("4-6")
        assert len(ps) == 3
        assert 5 in ps
        assert 7 not in ps
