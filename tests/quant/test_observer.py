"""Range-observer tests."""

import numpy as np
import pytest

from repro.quant import EmaMinMaxObserver, MinMaxObserver


class TestMinMaxObserver:
    def test_tracks_running_extremes(self):
        obs = MinMaxObserver()
        obs.update(np.array([0.0, 1.0]))
        lo, hi = obs.update(np.array([-2.0, 0.5]))
        assert (lo, hi) == (-2.0, 1.0)

    def test_range_never_shrinks(self, rng):
        obs = MinMaxObserver()
        ranges = []
        for _ in range(10):
            lo, hi = obs.update(rng.normal(size=50))
            ranges.append(hi - lo)
        assert all(a <= b + 1e-12 for a, b in zip(ranges, ranges[1:]))

    def test_reset(self):
        obs = MinMaxObserver()
        obs.update(np.array([5.0]))
        obs.reset()
        assert obs.min is None and obs.max is None


class TestEmaObserver:
    def test_first_update_initialises(self):
        obs = EmaMinMaxObserver(momentum=0.9)
        lo, hi = obs.update(np.array([-1.0, 2.0]))
        assert (lo, hi) == (-1.0, 2.0)

    def test_ema_smooths_towards_new_range(self):
        obs = EmaMinMaxObserver(momentum=0.5)
        obs.update(np.array([0.0, 1.0]))
        lo, hi = obs.update(np.array([0.0, 3.0]))
        assert hi == pytest.approx(2.0)  # halfway between 1 and 3

    def test_momentum_validated(self):
        with pytest.raises(ValueError):
            EmaMinMaxObserver(momentum=1.0)

    def test_reset(self):
        obs = EmaMinMaxObserver()
        obs.update(np.array([1.0]))
        obs.reset()
        assert obs.min is None
