"""Extension features: per-channel quantization and precision schedules."""

import numpy as np
import pytest

from repro import nn
from repro.quant import (
    CyclicPrecisionSchedule,
    PrecisionSet,
    QConv2d,
    RandomPrecisionSampler,
    fake_quantize_per_channel,
    linear_quantize,
    linear_quantize_per_channel,
)


class TestPerChannelQuantize:
    def test_each_channel_gets_own_range(self, rng):
        # Channel 0 has tiny range, channel 1 huge; per-tensor quantization
        # at low bits crushes channel 0, per-channel preserves it.
        w = np.stack([
            rng.uniform(-0.01, 0.01, size=(4, 3, 3)),
            rng.uniform(-10.0, 10.0, size=(4, 3, 3)),
        ]).astype(np.float32)
        per_tensor = linear_quantize(w, 3)
        per_channel = linear_quantize_per_channel(w, 3, axis=0)
        err_tensor = np.abs(per_tensor[0] - w[0]).mean()
        err_channel = np.abs(per_channel[0] - w[0]).mean()
        assert err_channel < err_tensor

    def test_matches_per_tensor_on_single_channel(self, rng):
        w = rng.normal(size=(1, 8)).astype(np.float64)
        np.testing.assert_allclose(
            linear_quantize_per_channel(w, 4, axis=0),
            linear_quantize(w, 4),
            rtol=1e-6,
        )

    def test_constant_channel_unchanged(self, rng):
        w = rng.normal(size=(3, 5)).astype(np.float32)
        w[1] = 2.5
        out = linear_quantize_per_channel(w, 4, axis=0)
        np.testing.assert_array_equal(out[1], w[1])

    def test_axis_validation(self, rng):
        with pytest.raises(ValueError):
            linear_quantize_per_channel(np.zeros((2, 2)), 4, axis=5)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            linear_quantize_per_channel(np.zeros((2, 2)), 0)

    def test_ste_gradient(self, rng):
        x = nn.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        fake_quantize_per_channel(x, 3).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((3, 4),
                                                      dtype=np.float32))

    def test_none_bits_identity(self, rng):
        x = nn.Tensor(rng.normal(size=(3, 4)))
        assert fake_quantize_per_channel(x, None) is x

    def test_qconv_per_channel_mode(self, rng):
        conv = QConv2d(3, 4, 3, padding=1, rng=rng)
        conv.set_precision(3)
        conv.quantize_activations = False
        x = nn.Tensor(rng.normal(size=(1, 3, 6, 6)))
        per_tensor_out = conv(x).data.copy()
        conv.per_channel_weights = True
        per_channel_out = conv(x).data.copy()
        assert not np.allclose(per_tensor_out, per_channel_out)


class TestSchedules:
    def test_random_sampler_in_set(self, rng):
        sampler = RandomPrecisionSampler(PrecisionSet.parse("4-8"), rng)
        for _ in range(20):
            q1, q2 = sampler.next_pair()
            assert q1 in sampler.precision_set
            assert q2 in sampler.precision_set

    def test_cyclic_covers_extremes(self):
        sched = CyclicPrecisionSchedule(PrecisionSet.parse("2-8"), period=8)
        seen = set()
        for _ in range(16):
            q1, q2 = sched.next_pair()
            seen.update((q1, q2))
        assert 2 in seen
        assert 8 in seen

    def test_cyclic_is_periodic(self):
        a = CyclicPrecisionSchedule(PrecisionSet.parse("2-8"), period=6)
        first_cycle = [a.next_pair() for _ in range(6)]
        second_cycle = [a.next_pair() for _ in range(6)]
        assert first_cycle == second_cycle

    def test_pair_members_differ_by_half_cycle(self):
        sched = CyclicPrecisionSchedule(PrecisionSet.parse("2-16"),
                                        period=10)
        q1, q2 = sched.next_pair()
        assert q1 != q2  # half a cycle apart on a wide set

    def test_period_validation(self):
        with pytest.raises(ValueError):
            CyclicPrecisionSchedule(PrecisionSet.parse("2-8"), period=1)

    def test_values_snap_to_set_members(self):
        sparse = PrecisionSet([2, 8, 16])
        sched = CyclicPrecisionSchedule(sparse, period=7)
        for _ in range(14):
            q1, q2 = sched.next_pair()
            assert q1 in sparse and q2 in sparse

    def test_trainer_accepts_schedule(self, rng):
        from repro.contrastive import ContrastiveQuantTrainer, SimCLRModel
        from repro.models import resnet18
        from repro.nn.optim import Adam

        encoder = resnet18(width_multiplier=0.0625, rng=rng)
        model = SimCLRModel(encoder, projection_dim=8, rng=rng)
        sched = CyclicPrecisionSchedule(PrecisionSet.parse("2-8"), period=4)
        trainer = ContrastiveQuantTrainer(
            model, "C", "2-8", Adam(list(model.parameters()), lr=1e-3),
            rng=rng, precision_sampler=sched,
        )
        v = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        loss = trainer.train_step(v, v + 0.01)
        assert np.isfinite(loss)
        assert sched.step_count == 1
