"""Quantized modules, model conversion, and precision switching."""

import numpy as np
import pytest

from repro import nn
from repro.quant import (
    QConv2d,
    QLinear,
    apply_precision,
    count_quantized_modules,
    linear_quantize,
    prepare,
)


def small_model(rng):
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 2, rng=rng),
    )


class TestQLinear:
    def test_full_precision_matches_float(self, rng):
        fp = nn.Linear(6, 3, rng=rng)
        q = QLinear.from_float(fp)  # noqa: RPR007 - twin constructor under test
        x = nn.Tensor(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(q(x).data, fp(x).data, rtol=1e-6)

    def test_quantized_forward_uses_quantized_weight(self, rng):
        fp = nn.Linear(6, 3, rng=rng)
        q = QLinear.from_float(fp)  # noqa: RPR007 - twin constructor under test
        q.set_precision(3)
        q.quantize_activations = False
        x = rng.normal(size=(4, 6)).astype(np.float32)
        expected = x @ linear_quantize(fp.weight.data, 3).T + fp.bias.data
        np.testing.assert_allclose(q(nn.Tensor(x)).data, expected, rtol=1e-5)

    def test_activation_quantization_applied(self, rng):
        fp = nn.Linear(4, 2, rng=rng)
        q = QLinear.from_float(fp)  # noqa: RPR007 - twin constructor under test
        q.set_precision(2)
        x = rng.normal(size=(3, 4)).astype(np.float32)
        expected = (
            linear_quantize(x, 2) @ linear_quantize(fp.weight.data, 2).T
            + fp.bias.data
        )
        np.testing.assert_allclose(q(nn.Tensor(x)).data, expected, rtol=1e-5)

    def test_shares_parameters_with_float(self, rng):
        fp = nn.Linear(4, 2, rng=rng)
        q = QLinear.from_float(fp)  # noqa: RPR007 - twin constructor under test
        assert q.weight is fp.weight
        fp.weight.data[...] = 1.0
        assert np.all(q.weight.data == 1.0)

    def test_gradients_reach_weight_through_quantization(self, rng):
        q = QLinear(4, 2, rng=rng)
        q.set_precision(4)
        q(nn.Tensor(rng.normal(size=(3, 4)))).sum().backward()
        assert q.weight.grad is not None
        assert q.bias.grad is not None

    def test_precision_validation(self, rng):
        q = QLinear(4, 2, rng=rng)
        with pytest.raises(ValueError):
            q.set_precision(0)
        with pytest.raises(ValueError):
            q.set_precision(64)


class TestQConv2d:
    def test_full_precision_matches_float(self, rng):
        fp = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        q = QConv2d.from_float(fp)  # noqa: RPR007 - twin constructor under test
        x = nn.Tensor(rng.normal(size=(2, 3, 5, 5)))
        np.testing.assert_allclose(q(x).data, fp(x).data, rtol=1e-6)

    def test_low_precision_changes_output(self, rng):
        fp = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        q = QConv2d.from_float(fp)  # noqa: RPR007 - twin constructor under test
        q.set_precision(2)
        x = nn.Tensor(rng.normal(size=(2, 3, 5, 5)))
        assert not np.allclose(q(x).data, fp(x).data)

    def test_higher_precision_closer_to_float(self, rng):
        fp = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        q = QConv2d.from_float(fp)  # noqa: RPR007 - twin constructor under test
        x = nn.Tensor(rng.normal(size=(2, 3, 5, 5)))
        ref = fp(x).data
        gaps = []
        for bits in (2, 4, 8, 12):
            q.set_precision(bits)
            gaps.append(float(np.abs(q(x).data - ref).mean()))
        assert all(a > b for a, b in zip(gaps, gaps[1:]))

    def test_grouped_conversion(self, rng):
        fp = nn.Conv2d(4, 4, 3, groups=4, padding=1, rng=rng)
        q = QConv2d.from_float(fp)  # noqa: RPR007 - twin constructor under test
        x = nn.Tensor(rng.normal(size=(1, 4, 5, 5)))
        np.testing.assert_allclose(q(x).data, fp(x).data, rtol=1e-6)


class TestConversion:
    def test_quantize_model_replaces_layers(self, rng):
        model = prepare(small_model(rng))
        assert count_quantized_modules(model) == 2
        assert isinstance(model[0], QConv2d)
        assert isinstance(model[4], QLinear)

    def test_conversion_preserves_output(self, rng):
        model = small_model(rng)
        x = nn.Tensor(rng.normal(size=(2, 3, 6, 6)))
        model.eval()
        before = model(x).data.copy()
        prepare(model)
        np.testing.assert_allclose(model(x).data, before, rtol=1e-5)

    def test_conversion_preserves_parameter_identity(self, rng):
        model = small_model(rng)
        params_before = {id(p) for p in model.parameters()}
        prepare(model)
        params_after = {id(p) for p in model.parameters()}
        assert params_before == params_after

    def test_skip_predicate(self, rng):
        model = small_model(rng)
        prepare(model, skip=lambda name, m: isinstance(m, nn.Linear))
        assert count_quantized_modules(model) == 1

    def test_idempotent(self, rng):
        model = prepare(small_model(rng))
        prepare(model)
        assert count_quantized_modules(model) == 2

    def test_apply_precision_all(self, rng):
        model = prepare(small_model(rng))
        assert apply_precision(model, 8) == 2
        assert model[0].precision == 8
        assert model[4].precision == 8

    def test_apply_precision_back_to_fp(self, rng):
        model = prepare(small_model(rng))
        apply_precision(model, 4)
        apply_precision(model, None)
        assert model[0].precision is None

    def test_apply_precision_unconverted_raises(self, rng):
        with pytest.raises(ValueError, match="no quantized modules"):
            apply_precision(small_model(rng), 8)

    def test_precision_switch_changes_features(self, rng):
        model = prepare(small_model(rng))
        model.eval()
        x = nn.Tensor(rng.normal(size=(2, 3, 6, 6)))
        apply_precision(model, 4)
        low = model(x).data.copy()
        apply_precision(model, 16)
        high = model(x).data.copy()
        assert not np.allclose(low, high)

    def test_state_dict_survives_conversion(self, rng):
        model = small_model(rng)
        state = model.state_dict()
        prepare(model)
        assert set(model.state_dict()) == set(state)
