"""convert() lowering: integer kernels vs the fake-quant reference."""

import copy

import numpy as np
import pytest

from repro import nn
from repro.analysis.graph import audit_quantization
from repro.models import mobilenet_v2, resnet18
from repro.nn.autograd import no_grad
from repro.nn.tensor import Tensor
from repro.quant import (
    ConvertError,
    IntConv2d,
    IntLinear,
    LoweredModule,
    QuantizedModule,
    calibrate,
    convert,
    freeze_reference,
    prepare,
    quantize_to_int,
)
from repro.quant.lowered import _choose_accumulator

BITS = 8


def _forward(model, x):
    model.eval()
    with no_grad():
        return np.asarray(model(Tensor(x, dtype=np.float64)).data,
                          dtype=np.float64)


def _calibrated(model, rng, shape, bits=BITS):
    prepare(model)
    batches = [rng.normal(size=shape).astype(np.float32) for _ in range(3)]
    calibrate(model, batches, bits=bits)
    return model


# -- per-layer equivalence ----------------------------------------------------

class TestPerLayerEquivalence:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_int_conv_matches_fake_quant(self, bits, rng):
        model = _calibrated(
            nn.Sequential(nn.Conv2d(3, 6, 3, padding=1, rng=rng)),
            rng, (4, 3, 8, 8), bits=bits,
        )
        fake = freeze_reference(copy.deepcopy(model))
        convert(model, input_shape=(2, 3, 8, 8), bits=bits)
        assert isinstance(model[0], IntConv2d)
        x = rng.normal(size=(4, 3, 8, 8))
        np.testing.assert_allclose(
            _forward(model, x), _forward(fake, x), rtol=1e-12, atol=1e-12
        )

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_int_linear_matches_fake_quant(self, bits, rng):
        model = _calibrated(
            nn.Sequential(nn.Linear(6, 4, rng=rng)), rng, (4, 6), bits=bits
        )
        fake = freeze_reference(copy.deepcopy(model))
        convert(model, input_shape=(2, 6), bits=bits)
        assert isinstance(model[0], IntLinear)
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            _forward(model, x), _forward(fake, x), rtol=1e-12, atol=1e-12
        )

    def test_out_of_range_inputs_clip_identically(self, rng):
        model = _calibrated(
            nn.Sequential(nn.Linear(6, 4, rng=rng)), rng, (4, 6)
        )
        fake = freeze_reference(copy.deepcopy(model))
        convert(model, input_shape=(2, 6))
        # 10x outside the calibrated range: both paths must clip to the
        # same frozen grid edges
        x = 10.0 * rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            _forward(model, x), _forward(fake, x), rtol=1e-12, atol=1e-12
        )


# -- full-model convert -------------------------------------------------------

def _build_encoder(kind):
    if kind == "resnet18":
        return resnet18(stem="cifar", width_multiplier=0.0625,
                        rng=np.random.default_rng(0), norm="batch")
    return mobilenet_v2(width_multiplier=0.125,
                        rng=np.random.default_rng(0))


@pytest.mark.parametrize("kind", ["resnet18", "mobilenet_v2"])
class TestConvertEncoders:
    def test_matches_fake_quant_reference(self, kind, rng):
        model = _calibrated(_build_encoder(kind), rng, (4, 3, 8, 8))
        fake = freeze_reference(copy.deepcopy(model))
        convert(model, input_shape=(2, 3, 8, 8))
        assert not any(isinstance(m, QuantizedModule)
                       for m in model.modules())
        assert sum(1 for m in model.modules()
                   if isinstance(m, LoweredModule)) > 0
        x = rng.normal(size=(2, 3, 8, 8))
        np.testing.assert_allclose(
            _forward(model, x), _forward(fake, x), rtol=1e-3, atol=1e-5
        )

    def test_aud001_full_coverage(self, kind, rng):
        model = _calibrated(_build_encoder(kind), rng, (4, 3, 8, 8))
        convert(model, input_shape=(2, 3, 8, 8))
        report = audit_quantization(model, kind)
        assert report.coverage == 1.0
        assert list(report.bypassing()) == []


class TestConvertContract:
    def test_idempotent(self, rng):
        model = _calibrated(
            nn.Sequential(nn.Linear(6, 4, rng=rng)), rng, (4, 6)
        )
        convert(model, input_shape=(2, 6))
        lowered = model[0]
        convert(model, input_shape=(2, 6))  # no-op on a converted model
        assert model[0] is lowered

    def test_requires_calibration(self, rng):
        model = prepare(nn.Sequential(nn.Linear(6, 4, rng=rng)))
        with pytest.raises(ConvertError, match="not ready"):
            convert(model, input_shape=(2, 6), bits=BITS)

    def test_requires_prepare(self, rng):
        model = nn.Sequential(nn.Linear(6, 4, rng=rng))
        with pytest.raises(ConvertError, match="no quantized modules"):
            convert(model, input_shape=(2, 6))

    def test_divergence_is_detected(self, rng):
        model = _calibrated(
            nn.Sequential(nn.Linear(6, 4, rng=rng)), rng, (4, 6)
        )
        real_allclose = np.allclose
        try:
            np.allclose = lambda *a, **k: False
            with pytest.raises(ConvertError, match="diverges"):
                convert(model, input_shape=(2, 6))
        finally:
            np.allclose = real_allclose

    def test_freeze_reference_requires_prepare(self, rng):
        with pytest.raises(ConvertError, match="no quantized modules"):
            freeze_reference(nn.Sequential(nn.Linear(6, 4, rng=rng)))


# -- state_dict round trip ----------------------------------------------------

class TestLoweredStateDict:
    def test_int_linear_round_trips(self, rng):
        model = _calibrated(
            nn.Sequential(nn.Linear(6, 4, rng=rng)), rng, (4, 6)
        )
        convert(model, input_shape=(2, 6))
        src = model[0]
        fresh = IntLinear(6, 4, weight_bits=BITS, act_bits=BITS,
                          act_range=(-1.0, 1.0))
        fresh.load_state_dict(src.state_dict())
        x = rng.normal(size=(4, 6))
        assert np.array_equal(_forward(fresh, x), _forward(src, x))
        assert (fresh.act_lo, fresh.act_hi) == (src.act_lo, src.act_hi)

    def test_int_conv_round_trips(self, rng):
        model = _calibrated(
            nn.Sequential(nn.Conv2d(3, 6, 3, padding=1, rng=rng)),
            rng, (4, 3, 8, 8),
        )
        convert(model, input_shape=(2, 3, 8, 8))
        src = model[0]
        fresh = IntConv2d(3, 6, 3, padding=1, weight_bits=BITS,
                          act_bits=BITS, act_range=(-1.0, 1.0))
        fresh.load_state_dict(src.state_dict())
        x = rng.normal(size=(2, 3, 8, 8))
        assert np.array_equal(_forward(fresh, x), _forward(src, x))

    def test_load_invalidates_weight_operand_cache(self, rng):
        model = _calibrated(
            nn.Sequential(nn.Linear(6, 4, rng=rng)), rng, (4, 6)
        )
        convert(model, input_shape=(2, 6))
        src = model[0]
        fresh = IntLinear(6, 4, weight_bits=BITS, act_bits=BITS,
                          act_range=(-1.0, 1.0))
        x = rng.normal(size=(4, 6))
        _forward(fresh, x)  # populate the cache with all-zero weights
        fresh.load_state_dict(src.state_dict())
        assert np.array_equal(_forward(fresh, x), _forward(src, x))


# -- accumulator selection ----------------------------------------------------

class TestAccumulator:
    def test_thresholds(self):
        assert _choose_accumulator(127, 127, 27) is np.float32
        assert _choose_accumulator(127, 255, 576) is np.float64
        assert _choose_accumulator(2 ** 30, 2 ** 30, 16) is np.int64

    def test_float32_gemm_bit_identical_to_int64(self, rng):
        model = _calibrated(
            nn.Sequential(nn.Linear(6, 4, rng=rng)), rng, (4, 6)
        )
        convert(model, input_shape=(2, 6))
        mod = model[0]
        assert mod._weight_operand()[0] is np.float32
        x = rng.normal(size=(4, 6))
        out = _forward(mod, x)
        codes = mod.weight_q.astype(np.int64) + mod.weight_zero[:, None]
        x_codes, step, _ = quantize_to_int(x, mod.act_bits, mod.act_lo,
                                           mod.act_hi)
        acc = x_codes.astype(np.int64) @ codes.T
        expected = acc * (mod.weight_scale * step).reshape(1, -1)
        expected = expected + mod.bias.reshape(1, -1)
        assert np.array_equal(out, expected)

    def test_int64_carrier_still_exact(self, rng):
        mod = IntLinear(4, 2, weight_bits=28, act_bits=28,
                        act_range=(-4.0, 4.0), bias=False)
        codes = rng.integers(-2 ** 26, 2 ** 26, size=(2, 4)).astype(np.int64)
        zero = codes.min(axis=1)
        scale = np.full(2, 1e-8)
        mod._store_weight(codes, zero, scale)
        assert mod._weight_operand()[0] is np.int64
        x = rng.normal(size=(3, 4))
        out = _forward(mod, x)
        x_codes, step, _ = quantize_to_int(x, mod.act_bits, mod.act_lo,
                                           mod.act_hi)
        expected = (x_codes.astype(np.int64) @ codes.T) * \
            (scale * step).reshape(1, -1)
        assert np.array_equal(out, expected)

    def test_uint8_storage_for_8bit_weights(self, rng):
        model = _calibrated(
            nn.Sequential(nn.Conv2d(3, 6, 3, rng=rng)), rng, (4, 3, 8, 8)
        )
        convert(model, input_shape=(2, 3, 8, 8))
        assert model[0].weight_q.dtype == np.uint8
